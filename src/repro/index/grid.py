"""The global grid index of the GR-index (Section 5.1).

Each grid cell is a partition key: a location ``(x, y)`` belongs to the cell
``<floor(x / lg), floor(y / lg)>`` where ``lg`` is the grid cell width.  In
the distributed runtime, locations with the same key are routed to the same
subtask, exactly as in the paper's Flink job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.geometry.rect import Rect

GridKey = tuple[int, int]


def cell_key(x: float, y: float, cell_width: float) -> GridKey:
    """Key of the grid cell containing ``(x, y)``: ``<x/lg, y/lg>`` floored."""
    if cell_width <= 0:
        raise ValueError(f"grid cell width must be positive, got {cell_width}")
    return (math.floor(x / cell_width), math.floor(y / cell_width))


def cells_overlapping(region: Rect, cell_width: float) -> Iterator[GridKey]:
    """All grid-cell keys whose cell intersects ``region``.

    Iterates row-major over the closed key ranges
    ``floor(min/lg) .. floor(max/lg)`` on both axes.
    """
    if cell_width <= 0:
        raise ValueError(f"grid cell width must be positive, got {cell_width}")
    x_lo = math.floor(region.min_x / cell_width)
    x_hi = math.floor(region.max_x / cell_width)
    y_lo = math.floor(region.min_y / cell_width)
    y_hi = math.floor(region.max_y / cell_width)
    for gx in range(x_lo, x_hi + 1):
        for gy in range(y_lo, y_hi + 1):
            yield (gx, gy)


def cell_bounds(key: GridKey, cell_width: float) -> Rect:
    """The spatial extent of a grid cell."""
    gx, gy = key
    return Rect(
        gx * cell_width,
        gy * cell_width,
        (gx + 1) * cell_width,
        (gy + 1) * cell_width,
    )


@dataclass(slots=True)
class GridIndex:
    """A sparse uniform grid mapping cell keys to payload buckets.

    Only cells that received at least one payload exist, so the grid covers
    an unbounded plane at cost proportional to occupied cells.
    """

    cell_width: float
    cells: dict[GridKey, list] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cell_width <= 0:
            raise ValueError(
                f"grid cell width must be positive, got {self.cell_width}"
            )

    def insert(self, x: float, y: float, payload) -> GridKey:
        """Insert a payload at ``(x, y)``; returns the cell key used."""
        key = cell_key(x, y, self.cell_width)
        self.cells.setdefault(key, []).append(payload)
        return key

    def bucket(self, key: GridKey) -> list:
        """Payloads of one cell (empty list when the cell is unoccupied)."""
        return self.cells.get(key, [])

    def payloads_in(self, region: Rect) -> Iterator:
        """All payloads in cells overlapping ``region`` (superset filter)."""
        for key in cells_overlapping(region, self.cell_width):
            yield from self.cells.get(key, ())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.cells.values())

    @property
    def occupied_cells(self) -> int:
        """Number of cells holding at least one payload."""
        return len(self.cells)
