"""The two-layer GR-index (Section 5.1, Fig. 4).

Global layer: a uniform grid partitioning space into cells (Flink partition
keys).  Local layer: an R-tree per occupied cell over the data objects routed
there.  The GR-index is a *primary* index built per snapshot and discarded
after the join, so only build and query paths exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.rect import Rect
from repro.index.grid import GridKey, cell_key
from repro.index.rtree import RTree


@dataclass(slots=True)
class GRIndex:
    """Grid of local R-trees over ``(oid, x, y)`` points.

    ``rtree_fanout`` controls the local trees' node capacity; the default
    matches :data:`repro.index.rtree.DEFAULT_MAX_ENTRIES`.
    """

    cell_width: float
    rtree_fanout: int = 16
    trees: dict[GridKey, RTree] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cell_width <= 0:
            raise ValueError(
                f"grid cell width must be positive, got {self.cell_width}"
            )

    def insert(self, oid: int, x: float, y: float) -> GridKey:
        """Insert a location into the local R-tree of its home cell."""
        key = cell_key(x, y, self.cell_width)
        tree = self.trees.get(key)
        if tree is None:
            tree = RTree(max_entries=self.rtree_fanout)
            self.trees[key] = tree
        tree.insert(x, y, (oid, x, y))
        return key

    def tree_of(self, key: GridKey) -> RTree | None:
        """The local R-tree of a cell, or ``None`` when unoccupied."""
        return self.trees.get(key)

    def search_cell(self, key: GridKey, region: Rect) -> list[tuple[int, float, float]]:
        """Range search limited to one cell's local tree."""
        tree = self.trees.get(key)
        if tree is None:
            return []
        return tree.search(region)

    def __len__(self) -> int:
        return sum(len(tree) for tree in self.trees.values())

    @property
    def occupied_cells(self) -> int:
        """Number of cells holding at least one point."""
        return len(self.trees)
