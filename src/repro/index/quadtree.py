"""A point-region quadtree: an alternative local index for the GR-index.

The paper uses R-trees inside grid cells; a PR quadtree is the classic
alternative with cheaper inserts (no split heuristics) at the cost of
unbalanced depth under skew.  It implements the same ``insert`` /
``search`` contract as :class:`repro.index.rtree.RTree`, so it plugs into
:class:`repro.join.query.CellJoiner` via ``local_index="quadtree"`` and
into the local-index ablation.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.geometry.rect import Rect

DEFAULT_NODE_CAPACITY = 16
MAX_DEPTH = 24


class _QuadNode:
    __slots__ = ("bounds", "points", "children", "depth")

    def __init__(self, bounds: Rect, depth: int):
        self.bounds = bounds
        self.points: list[tuple[float, float, Any]] | None = []
        self.children: list["_QuadNode"] | None = None
        self.depth = depth

    def subdivide(self) -> None:
        cx, cy = self.bounds.center
        b = self.bounds
        self.children = [
            _QuadNode(Rect(b.min_x, b.min_y, cx, cy), self.depth + 1),
            _QuadNode(Rect(cx, b.min_y, b.max_x, cy), self.depth + 1),
            _QuadNode(Rect(b.min_x, cy, cx, b.max_y), self.depth + 1),
            _QuadNode(Rect(cx, cy, b.max_x, b.max_y), self.depth + 1),
        ]
        points, self.points = self.points, None
        for x, y, payload in points:
            self._child_for(x, y).add(x, y, payload)

    def _child_for(self, x: float, y: float) -> "_QuadNode":
        cx, cy = self.bounds.center
        index = (1 if x > cx else 0) + (2 if y > cy else 0)
        return self.children[index]

    def add(self, x: float, y: float, payload: Any) -> None:
        if self.children is not None:
            self._child_for(x, y).add(x, y, payload)
            return
        self.points.append((x, y, payload))
        if (
            len(self.points) > DEFAULT_NODE_CAPACITY
            and self.depth < MAX_DEPTH
        ):
            self.subdivide()


class QuadTree:
    """PR quadtree over 2-D points with lazily expanding bounds.

    The world rectangle doubles outward whenever a point falls outside,
    so no a-priori extent is needed (grid cells are unbounded in theory).
    """

    def __init__(self, initial_extent: float = 1024.0):
        if initial_extent <= 0:
            raise ValueError(
                f"initial_extent must be positive, got {initial_extent}"
            )
        self._root: _QuadNode | None = None
        self._extent = initial_extent
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def bounds(self) -> Rect | None:
        """World rectangle currently covered (None when empty)."""
        return self._root.bounds if self._root else None

    def insert(self, x: float, y: float, payload: Any) -> None:
        """Insert a point entry."""
        if self._root is None:
            half = self._extent / 2
            self._root = _QuadNode(
                Rect(x - half, y - half, x + half, y + half), 0
            )
        while not self._root.bounds.contains_point(x, y):
            self._grow_towards(x, y)
        self._root.add(x, y, payload)
        self._size += 1

    def _grow_towards(self, x: float, y: float) -> None:
        """Double the world towards the outlier and rebuild.

        Growth happens O(log(span / initial_extent)) times overall, so the
        occasional O(n) rebuild amortises away; it also keeps node depths
        consistent, unlike grafting the old root in as a quadrant.
        """
        old = self._root
        b = old.bounds
        width, height = b.width, b.height
        west = x < b.min_x
        south = y < b.min_y
        new_bounds = Rect(
            b.min_x - (width if west else 0),
            b.min_y - (height if south else 0),
            b.max_x + (0 if west else width),
            b.max_y + (0 if south else height),
        )
        new_root = _QuadNode(new_bounds, 0)
        for x0, y0, payload in _iter_points(old):
            new_root.add(x0, y0, payload)
        self._root = new_root

    def search(self, region: Rect) -> list[Any]:
        """Payloads of all points inside ``region`` (closed boundaries)."""
        return list(self.iter_search(region))

    def iter_search(self, region: Rect) -> Iterator[Any]:
        """Lazily yield payloads of points inside ``region``."""
        if self._root is None or not self._root.bounds.intersects(region):
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.bounds.intersects(region):
                continue
            if node.children is not None:
                stack.extend(node.children)
                continue
            for x, y, payload in node.points:
                if region.contains_point(x, y):
                    yield payload

    def all_payloads(self) -> list[Any]:
        """Every stored payload."""
        if self._root is None:
            return []
        return [payload for _, _, payload in _iter_points(self._root)]


def _iter_points(node: _QuadNode):
    stack = [node]
    while stack:
        current = stack.pop()
        if current.children is not None:
            stack.extend(current.children)
        else:
            yield from current.points
