"""An in-memory R*-tree over point entries.

The paper's GR-index builds an R-tree (it cites the R*-tree [3]) per grid
cell as the local index.  This implementation follows Beckmann et al.:

* ChooseSubtree minimises overlap enlargement at leaf level and area
  enlargement above;
* node splits pick the axis by minimum margin sum and the distribution by
  minimum overlap (ties: minimum area);
* forced reinsertion of the 30% farthest-from-centre entries on first
  overflow per level per insertion.

Entries are ``(x, y, payload)`` points; queries take a :class:`Rect` and
return payloads.  Only insertion and range search are implemented — the
GR-index is rebuilt per snapshot (Section 5.2), so deletion is not needed.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.geometry.rect import Rect

DEFAULT_MAX_ENTRIES = 16
REINSERT_FRACTION = 0.3


class _Entry:
    """A point entry stored in a leaf."""

    __slots__ = ("x", "y", "payload")

    def __init__(self, x: float, y: float, payload: Any):
        self.x = x
        self.y = y
        self.payload = payload

    @property
    def mbr(self) -> Rect:
        return Rect.point(self.x, self.y)


class _Node:
    """An R-tree node; ``children`` holds nodes or entries depending on level."""

    __slots__ = ("leaf", "children", "mbr")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.children: list = []
        self.mbr: Rect | None = None

    def recompute_mbr(self) -> None:
        boxes = [child.mbr for child in self.children]
        if not boxes:
            self.mbr = None
            return
        mbr = boxes[0]
        for box in boxes[1:]:
            mbr = mbr.union(box)
        self.mbr = mbr


class RTree:
    """R*-tree over 2-D points supporting insert and rectangle search."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
        forced_reinsert: bool = True,
    ):
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = min_entries or max(2, max_entries * 2 // 5)
        if self.min_entries > max_entries // 2:
            raise ValueError(
                f"min_entries {self.min_entries} too large for max {max_entries}"
            )
        self.forced_reinsert = forced_reinsert
        self._root = _Node(leaf=True)
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height (1 for a leaf-only tree)."""
        return self._height

    @property
    def bounds(self) -> Rect | None:
        """MBR of the whole tree, or ``None`` when empty."""
        return self._root.mbr

    # ------------------------------------------------------------------ insert

    def insert(self, x: float, y: float, payload: Any) -> None:
        """Insert a point entry."""
        entry = _Entry(x, y, payload)
        # Levels that already reinserted during this insertion (R* does one
        # forced reinsert per level per insertion).
        self._insert_at_level(entry, level=0, reinserted_levels=set())
        self._size += 1

    def _insert_at_level(self, item, level: int, reinserted_levels: set[int]) -> None:
        path = self._choose_path(item.mbr, level)
        node = path[-1]
        node.children.append(item)
        node.mbr = item.mbr if node.mbr is None else node.mbr.union(item.mbr)
        self._propagate_mbr(path, item.mbr)
        if len(node.children) > self.max_entries:
            self._handle_overflow(path, level, reinserted_levels)

    def _choose_path(self, mbr: Rect, target_level: int) -> list[_Node]:
        """Walk from the root to the node at ``target_level`` best for ``mbr``.

        Level 0 is the leaf level; reinserts of orphaned subtrees target
        higher levels.
        """
        path = [self._root]
        node = self._root
        current_level = self._height - 1
        while current_level > target_level:
            node = self._choose_subtree(node, mbr, at_leaf_parent=current_level == 1)
            path.append(node)
            current_level -= 1
        return path

    def _choose_subtree(self, node: _Node, mbr: Rect, at_leaf_parent: bool) -> _Node:
        children: list[_Node] = node.children
        if at_leaf_parent:
            # Minimise overlap enlargement (R* heuristic for leaf parents).
            best = None
            best_key = None
            for child in children:
                enlarged = child.mbr.union(mbr)
                overlap_before = sum(
                    child.mbr.intersection_area(other.mbr)
                    for other in children
                    if other is not child
                )
                overlap_after = sum(
                    enlarged.intersection_area(other.mbr)
                    for other in children
                    if other is not child
                )
                key = (
                    overlap_after - overlap_before,
                    child.mbr.enlargement(mbr),
                    child.mbr.area,
                )
                if best_key is None or key < best_key:
                    best, best_key = child, key
            return best
        best = None
        best_key = None
        for child in children:
            key = (child.mbr.enlargement(mbr), child.mbr.area)
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    def _propagate_mbr(self, path: list[_Node], mbr: Rect) -> None:
        for node in path:
            node.mbr = mbr if node.mbr is None else node.mbr.union(mbr)

    def _handle_overflow(
        self, path: list[_Node], level: int, reinserted_levels: set[int]
    ) -> None:
        node = path[-1]
        is_root = node is self._root
        if self.forced_reinsert and not is_root and level not in reinserted_levels:
            reinserted_levels.add(level)
            self._reinsert(path, level, reinserted_levels)
            return
        self._split(path, level, reinserted_levels)

    def _reinsert(
        self, path: list[_Node], level: int, reinserted_levels: set[int]
    ) -> None:
        node = path[-1]
        center_x, center_y = node.mbr.center
        def distance(item) -> float:
            cx, cy = item.mbr.center
            return (cx - center_x) ** 2 + (cy - center_y) ** 2

        node.children.sort(key=distance)
        count = max(1, int(len(node.children) * REINSERT_FRACTION))
        orphans = node.children[-count:]
        del node.children[-count:]
        node.recompute_mbr()
        for ancestor in reversed(path[:-1]):
            ancestor.recompute_mbr()
        for orphan in orphans:
            self._insert_at_level(orphan, level, reinserted_levels)

    def _split(
        self, path: list[_Node], level: int, reinserted_levels: set[int]
    ) -> None:
        node = path[-1]
        first_group, second_group = self._rstar_split(node.children)
        node.children = first_group
        node.recompute_mbr()
        sibling = _Node(leaf=node.leaf)
        sibling.children = second_group
        sibling.recompute_mbr()
        if node is self._root:
            new_root = _Node(leaf=False)
            new_root.children = [node, sibling]
            new_root.recompute_mbr()
            self._root = new_root
            self._height += 1
            return
        parent = path[-2]
        parent.children.append(sibling)
        for ancestor in reversed(path[:-1]):
            ancestor.recompute_mbr()
        if len(parent.children) > self.max_entries:
            self._handle_overflow(path[:-1], level + 1, reinserted_levels)

    def _rstar_split(self, children: list) -> tuple[list, list]:
        """R* split: choose axis by margin sum, distribution by overlap."""
        m = self.min_entries
        best_groups = None
        best_key = None
        for axis in ("x", "y"):
            if axis == "x":
                sort_keys = [
                    lambda item: (item.mbr.min_x, item.mbr.max_x),
                    lambda item: (item.mbr.max_x, item.mbr.min_x),
                ]
            else:
                sort_keys = [
                    lambda item: (item.mbr.min_y, item.mbr.max_y),
                    lambda item: (item.mbr.max_y, item.mbr.min_y),
                ]
            margin_sum = 0.0
            axis_candidates = []
            for sort_key in sort_keys:
                ordered = sorted(children, key=sort_key)
                for split_at in range(m, len(ordered) - m + 1):
                    left = ordered[:split_at]
                    right = ordered[split_at:]
                    left_mbr = _mbr_of(left)
                    right_mbr = _mbr_of(right)
                    margin_sum += left_mbr.margin + right_mbr.margin
                    axis_candidates.append((left, right, left_mbr, right_mbr))
            for left, right, left_mbr, right_mbr in axis_candidates:
                key = (
                    margin_sum,
                    left_mbr.intersection_area(right_mbr),
                    left_mbr.area + right_mbr.area,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_groups = (list(left), list(right))
        assert best_groups is not None
        return best_groups

    # --------------------------------------------------------------- bulk load

    @classmethod
    def bulk_load(
        cls,
        points: list[tuple[float, float, Any]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive (STR) bulk loading.

        STR packs points into fully utilised leaves by sorting on x, slicing
        into vertical tiles, and sorting each tile on y; upper levels pack
        recursively.  For a known snapshot (the build-then-query path of the
        Lemma 2 ablation) this produces better-clustered nodes than repeated
        insertion at a fraction of the cost.
        """
        tree = cls(max_entries=max_entries, forced_reinsert=False)
        if not points:
            return tree
        entries = [_Entry(x, y, payload) for x, y, payload in points]
        leaves = _str_pack(entries, max_entries, leaf=True)
        level_nodes = leaves
        height = 1
        while len(level_nodes) > 1:
            level_nodes = _str_pack(level_nodes, max_entries, leaf=False)
            height += 1
        tree._root = level_nodes[0]
        tree._size = len(entries)
        tree._height = height
        return tree

    # ------------------------------------------------------------------ search

    def search(self, region: Rect) -> list[Any]:
        """Payloads of all points inside ``region`` (closed boundaries)."""
        return list(self.iter_search(region))

    def iter_search(self, region: Rect) -> Iterator[Any]:
        """Lazily yield payloads of points inside ``region``."""
        if self._root.mbr is None or not self._root.mbr.intersects(region):
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry in node.children:
                    if region.contains_point(entry.x, entry.y):
                        yield entry.payload
            else:
                for child in node.children:
                    if child.mbr is not None and child.mbr.intersects(region):
                        stack.append(child)

    def all_payloads(self) -> list[Any]:
        """Every stored payload (diagnostics and tests)."""
        out = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.extend(entry.payload for entry in node.children)
            else:
                stack.extend(node.children)
        return out

    # ------------------------------------------------------------- diagnostics

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on breach.

        Used by tests: every node's MBR covers its children, leaf depth is
        uniform, and fanout bounds hold for non-root nodes.
        """
        depths = set()

        def walk(node: _Node, depth: int) -> None:
            if node is not self._root and not node.children:
                raise AssertionError("empty non-root node")
            if node.leaf:
                depths.add(depth)
                for entry in node.children:
                    if not node.mbr.contains_point(entry.x, entry.y):
                        raise AssertionError("leaf MBR does not cover entry")
                return
            for child in node.children:
                if not node.mbr.contains(child.mbr):
                    raise AssertionError("inner MBR does not cover child")
                walk(child, depth + 1)
            if node is not self._root and not (
                self.min_entries <= len(node.children) <= self.max_entries
            ):
                raise AssertionError("fanout bounds violated")

        walk(self._root, 1)
        if len(depths) > 1:
            raise AssertionError(f"leaves at multiple depths: {depths}")


def _mbr_of(items: list) -> Rect:
    mbr = items[0].mbr
    for item in items[1:]:
        mbr = mbr.union(item.mbr)
    return mbr


def _str_pack(items: list, max_entries: int, leaf: bool) -> list[_Node]:
    """One STR packing pass: group ``items`` into nodes of ``max_entries``."""
    import math

    count = len(items)
    node_count = math.ceil(count / max_entries)
    slice_count = max(1, math.ceil(math.sqrt(node_count)))
    per_slice = slice_count * max_entries

    def center_x(item) -> float:
        return item.mbr.center[0]

    def center_y(item) -> float:
        return item.mbr.center[1]

    ordered = sorted(items, key=center_x)
    nodes: list[_Node] = []
    for start in range(0, count, per_slice):
        tile = sorted(ordered[start : start + per_slice], key=center_y)
        for offset in range(0, len(tile), max_entries):
            node = _Node(leaf=leaf)
            node.children = tile[offset : offset + max_entries]
            node.recompute_mbr()
            nodes.append(node)
    return nodes
