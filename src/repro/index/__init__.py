"""Spatial indexing substrate: grid, R*-tree, and the two-layer GR-index.

Section 5.1 of the paper: the GR-index uses a uniform grid as the *global*
index (each cell is a Flink partition keyed by ``<floor(x/lg), floor(y/lg)>``)
and an R-tree as the *local* index inside each cell.  The index is a primary
index rebuilt per snapshot, so no delete/maintenance path is required.
"""

from repro.index.grid import GridIndex, GridKey, cell_key, cells_overlapping
from repro.index.gridobject import GridObject
from repro.index.gr_index import GRIndex
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree

__all__ = [
    "GRIndex",
    "GridIndex",
    "GridKey",
    "GridObject",
    "QuadTree",
    "RTree",
    "cell_key",
    "cells_overlapping",
]
