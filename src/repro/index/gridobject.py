"""GridObject (Definition 12): the replication unit of the range join.

A ``GridObject`` is a triple ``(key, flag, location)``: ``key`` names the
grid cell the object is routed to; ``flag`` distinguishes *data* objects
(``False`` — to be inserted into the cell's local R-tree) from *query*
objects (``True`` — the cell might contain range-query results for them).
We additionally carry the trajectory id, which the paper keeps implicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.grid import GridKey


@dataclass(frozen=True, slots=True)
class GridObject:
    """A routed copy of one location, per Definition 12.

    Attributes:
        key: grid cell this copy is routed to.
        is_query: the paper's ``flag`` — ``False`` for a data object,
            ``True`` for a query object.
        oid: trajectory id of the location's owner.
        x, y: the actual position.
    """

    key: GridKey
    is_query: bool
    oid: int
    x: float
    y: float

    @property
    def is_data(self) -> bool:
        """True for a data object (``flag`` false in the paper)."""
        return not self.is_query
