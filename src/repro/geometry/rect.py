"""Axis-aligned rectangles and range regions.

``Rect`` doubles as the minimum bounding rectangle (MBR) of R-tree nodes and
as the square *range region* of a range query: for a query location ``u`` and
threshold ``epsilon`` the region is ``[u.x - eps, u.x + eps] x [u.y - eps,
u.y + eps]`` (the red square of Fig. 2 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Rect:
    """Closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate rectangle: {self}")

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        """Rectangle degenerated to a single point."""
        return cls(x, y, x, y)

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Rectangle area (0 for degenerate rectangles)."""
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter; the R*-tree split heuristic minimises it."""
        return self.width + self.height

    @property
    def center(self) -> tuple[float, float]:
        """Centre point ``(x, y)``."""
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, x: float, y: float) -> bool:
        """Whether the point lies inside (closed boundaries)."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains(self, other: "Rect") -> bool:
        """Whether ``other`` lies fully inside (closed)."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the rectangles share any point (closed)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def extend_point(self, x: float, y: float) -> "Rect":
        """Smallest rectangle covering ``self`` and the point ``(x, y)``."""
        return Rect(
            min(self.min_x, x),
            min(self.min_y, y),
            max(self.max_x, x),
            max(self.max_y, y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (R-tree ChooseSubtree)."""
        return self.union(other).area - self.area

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap region (0 when disjoint)."""
        if not self.intersects(other):
            return 0.0
        w = min(self.max_x, other.max_x) - max(self.min_x, other.min_x)
        h = min(self.max_y, other.max_y) - max(self.min_y, other.min_y)
        return w * h

    def center_distance(self, other: "Rect") -> float:
        """L1 distance between the two centres."""
        cx1, cy1 = self.center
        cx2, cy2 = other.center
        return abs(cx1 - cx2) + abs(cy1 - cy2)


#: Relative margin applied to epsilon wherever it *prunes candidates*
#: (grid cells, probe rectangles).  The pair filter itself runs the exact
#: metric in float64, so a pair's true axis gap can exceed epsilon by a
#: few ulps and still verify; pruning with the raw epsilon can then drop
#: such a pair (coordinate a hair past a rect edge or cell boundary).
#: 1e-9 dwarfs any accumulated rounding (~1e-16 relative) while enlarging
#: candidate sets immeasurably.
CANDIDATE_PRUNING_MARGIN = 1e-9


def pruning_epsilon(epsilon: float) -> float:
    """Epsilon widened by the candidate-pruning margin.

    Use for building candidate-superset regions and grid widths — never
    for the exact metric verification itself.
    """
    return epsilon * (1.0 + CANDIDATE_PRUNING_MARGIN)


def range_region(x: float, y: float, epsilon: float) -> Rect:
    """Square range region of ``RQ((x, y), epsilon)`` (Definition 10).

    With the L1 metric every location within distance ``epsilon`` lies inside
    this square, so the square is a correct superset filter; candidates are
    then verified with the exact metric.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    return Rect(x - epsilon, y - epsilon, x + epsilon, y + epsilon)


def upper_range_region(x: float, y: float, epsilon: float) -> Rect:
    """Upper half of the range region used by Lemma 1.

    Lemma 1 proves the range join loses no result pair when each location
    only probes the cells intersecting ``[x - eps, x + eps] x [y, y + eps]``
    (Fig. 6 of the paper): a pair whose second point lies in the lower half
    is discovered symmetrically from that second point's upper half.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    return Rect(x - epsilon, y, x + epsilon, y + epsilon)
