"""Distance metrics between planar locations.

The paper uses the L1 norm (Section 3.3); DBSCAN and the range join are
metric-agnostic, so the metric is injected wherever a distance is needed.
A metric here is any callable ``(x1, y1, x2, y2) -> float``.
"""

from __future__ import annotations

import math
from typing import Callable

Metric = Callable[[float, float, float, float], float]


def l1_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Manhattan (L1) distance, the paper's default metric."""
    return abs(x1 - x2) + abs(y1 - y2)


def euclidean_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Euclidean (L2) distance.

    Computed as ``sqrt(dx*dx + dy*dy)`` from elementary IEEE operations,
    which vectorized kernels reproduce bit-for-bit on arrays —
    ``math.hypot`` and ``numpy.hypot`` use different algorithms and can
    disagree by one ulp exactly at an epsilon threshold.  The overflow
    protection ``hypot`` adds only matters beyond ~1e154, far outside any
    coordinate domain here.
    """
    dx = x1 - x2
    dy = y1 - y2
    return math.sqrt(dx * dx + dy * dy)


def chebyshev_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Chebyshev (L-infinity) distance."""
    return max(abs(x1 - x2), abs(y1 - y2))


_METRICS: dict[str, Metric] = {
    "l1": l1_distance,
    "manhattan": l1_distance,
    "l2": euclidean_distance,
    "euclidean": euclidean_distance,
    "linf": chebyshev_distance,
    "chebyshev": chebyshev_distance,
}


_CANONICAL_NAMES: dict[Metric, str] = {
    l1_distance: "l1",
    euclidean_distance: "l2",
    chebyshev_distance: "linf",
}


def get_metric(name: str) -> Metric:
    """Resolve a metric by name (``l1``, ``l2``, ``linf`` and aliases).

    Raises:
        KeyError: if the name is not a known metric.
    """
    key = name.strip().lower()
    if key not in _METRICS:
        known = ", ".join(sorted(_METRICS))
        raise KeyError(f"unknown metric {name!r}; expected one of: {known}")
    return _METRICS[key]


def canonical_metric_name(name: str) -> str:
    """Resolve a metric name or alias to its canonical name.

    Vectorized kernels dispatch on the canonical name (``l1``, ``l2``,
    ``linf``) rather than the callable; routing aliases through this
    helper keeps this module the single owner of the alias table.

    Raises:
        KeyError: if the name is not a known metric.
    """
    return _CANONICAL_NAMES[get_metric(name)]
