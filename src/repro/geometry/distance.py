"""Distance metrics between planar locations.

The paper uses the L1 norm (Section 3.3); DBSCAN and the range join are
metric-agnostic, so the metric is injected wherever a distance is needed.
A metric here is any callable ``(x1, y1, x2, y2) -> float``.
"""

from __future__ import annotations

import math
from typing import Callable

Metric = Callable[[float, float, float, float], float]


def l1_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Manhattan (L1) distance, the paper's default metric."""
    return abs(x1 - x2) + abs(y1 - y2)


def euclidean_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Euclidean (L2) distance."""
    return math.hypot(x1 - x2, y1 - y2)


def chebyshev_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Chebyshev (L-infinity) distance."""
    return max(abs(x1 - x2), abs(y1 - y2))


_METRICS: dict[str, Metric] = {
    "l1": l1_distance,
    "manhattan": l1_distance,
    "l2": euclidean_distance,
    "euclidean": euclidean_distance,
    "linf": chebyshev_distance,
    "chebyshev": chebyshev_distance,
}


def get_metric(name: str) -> Metric:
    """Resolve a metric by name (``l1``, ``l2``, ``linf`` and aliases).

    Raises:
        KeyError: if the name is not a known metric.
    """
    key = name.strip().lower()
    if key not in _METRICS:
        known = ", ".join(sorted(_METRICS))
        raise KeyError(f"unknown metric {name!r}; expected one of: {known}")
    return _METRICS[key]
