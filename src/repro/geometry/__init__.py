"""Geometric primitives shared by the spatial indexes and range joins.

The paper (Section 3.3) measures inter-object distance with the L1 norm,
"although it is easy to also support other distance functions".  This package
provides the L1 / L2 / Chebyshev metrics, axis-aligned rectangles, and the
range-region construction used by range queries.
"""

from repro.geometry.distance import (
    Metric,
    chebyshev_distance,
    euclidean_distance,
    get_metric,
    l1_distance,
)
from repro.geometry.rect import Rect, range_region, upper_range_region

__all__ = [
    "Metric",
    "Rect",
    "chebyshev_distance",
    "euclidean_distance",
    "get_metric",
    "l1_distance",
    "range_region",
    "upper_range_region",
]
