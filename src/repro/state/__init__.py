"""Serializable operator state: payload codec and checkpoint container.

This package has no dependencies on the rest of ``repro`` so that both
the master process and spawned process-backend workers can import it
without pulling in the full pipeline.
"""

from repro.state.checkpoint import CHECKPOINT_VERSION, Checkpoint, CheckpointError
from repro.state.codec import decode_payload, digest_of, encode_payload
from repro.state.gc import checkpoint_path, list_checkpoints, sweep_checkpoints

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "checkpoint_path",
    "decode_payload",
    "digest_of",
    "encode_payload",
    "list_checkpoints",
    "sweep_checkpoints",
]
