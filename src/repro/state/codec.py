"""Payload serialisation for operator state snapshots.

Every stateful operator exposes its state as a plain-data *payload*
(dicts, tuples, ints — see ``Operator.snapshot_state``).  The codec
turns payloads into bytes plus a content digest: the digest is what
makes incremental capture cheap — a checkpoint only re-ships an
operator whose digest changed since the previous capture, and the
worker side of the process backend answers a ``state`` command with
``None`` instead of the bytes when the master already holds them.

Pickle is the serialisation format: payloads are plain data plus a few
frozen model dataclasses (patterns, cluster snapshots), all of which
pickle deterministically within a run, and checkpoints are consumed by
the same codebase that wrote them.  The digest is BLAKE2b over the
pickled bytes — collision-resistant far beyond what state comparison
needs, and fast enough to run per operator per checkpoint.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any

#: Digest length in bytes (hex-encoded to twice this many characters).
_DIGEST_SIZE = 16


def digest_of(data: bytes) -> str:
    """Content digest of already-encoded payload bytes."""
    return hashlib.blake2b(data, digest_size=_DIGEST_SIZE).hexdigest()


def encode_payload(payload: Any) -> tuple[str, bytes]:
    """Serialise one state payload; returns ``(digest, bytes)``."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return digest_of(data), data


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(data)
