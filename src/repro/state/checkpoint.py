"""Checkpoint container: a consistent, restorable snapshot of a session.

A :class:`Checkpoint` is what ``Session.checkpoint()`` returns and what
``open_session(restore=...)`` consumes.  It bundles

* the session's :class:`~repro.core.config.ICPEConfig` (so a restore
  can be opened without repeating the configuration),
* one encoded payload per stateful pipeline operator, keyed by
  ``(stage_name, subtask_index)``,
* encoded payloads for the master-side components that live outside the
  dataflow graph (time-sync operator, pattern collector, latency meter,
  optional convoy tracker, session counters), and
* capture statistics — how many operator payloads were freshly
  serialised versus reused unchanged from the previous capture.

Checkpoints are plain pickles of this dataclass; ``save``/``load``
round-trip them through files for the CLI's ``--checkpoint-dir`` /
``--restore-from`` flags and the crash-recovery tests.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Format version embedded in every checkpoint; bumped on layout changes.
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """Raised when a checkpoint cannot be decoded or is incompatible."""


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """Immutable snapshot of a session's complete mutable state."""

    #: Configuration the checkpointed session was running with.
    config: Any
    #: Time of the last emitted snapshot (``None`` before the first one).
    watermark: int | None
    #: Records fed to the session so far; a resumed source should skip
    #: exactly this many records from the start of its stream.
    records_ingested: int
    #: Encoded operator payloads keyed by ``(stage_name, subtask_index)``.
    operator_states: dict[tuple[str, int], bytes]
    #: Encoded payloads for master-side components, keyed by component
    #: name (``"sync"``, ``"collector"``, ``"meter"``, ``"tracker"``,
    #: ``"session"``).
    master_states: dict[str, bytes]
    #: Operator payloads freshly serialised during this capture.
    captured: int = 0
    #: Operator payloads reused unchanged (digest match) from the
    #: previous capture.
    reused: int = 0
    #: Checkpoint format version; see :data:`CHECKPOINT_VERSION`.
    version: int = CHECKPOINT_VERSION

    def to_bytes(self) -> bytes:
        """Serialise the checkpoint to a byte string."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        """Decode a checkpoint produced by :meth:`to_bytes`."""
        try:
            checkpoint = pickle.loads(data)
        except Exception as error:  # noqa: BLE001 - surface as one type
            raise CheckpointError(f"cannot decode checkpoint: {error}") from error
        if not isinstance(checkpoint, cls):
            raise CheckpointError(
                f"decoded object is {type(checkpoint).__name__}, not Checkpoint"
            )
        if checkpoint.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {checkpoint.version} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return checkpoint

    def save(self, path: str | Path) -> Path:
        """Write the checkpoint to ``path``; returns the resolved path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(self.to_bytes())
        return target

    @classmethod
    def load(cls, path: str | Path) -> "Checkpoint":
        """Read a checkpoint previously written with :meth:`save`."""
        return cls.from_bytes(Path(path).read_bytes())

    def summary(self) -> dict[str, Any]:
        """Small plain-data description for logs and CLI output."""
        return {
            "version": self.version,
            "watermark": self.watermark,
            "records_ingested": self.records_ingested,
            "operators": len(self.operator_states),
            "captured": self.captured,
            "reused": self.reused,
            "bytes": sum(len(data) for data in self.operator_states.values())
            + sum(len(data) for data in self.master_states.values()),
        }
