"""Checkpoint garbage collection: bounded retention for checkpoint dirs.

A session (or the CLI loop) saving periodic checkpoints into one
directory accumulates one ``checkpoint-<watermark>.ckpt`` file per save.
:func:`sweep_checkpoints` prunes that directory down to the newest
``keep_last`` *valid* checkpoints.

Safety rules, in order of precedence:

* the newest valid checkpoint is never deleted — whatever ``keep_last``
  says, a sweep always leaves at least the file a restart would load;
* validity is judged by actually loading the file
  (:meth:`~repro.state.checkpoint.Checkpoint.load`); a corrupt or
  truncated file neither counts against the retention budget nor gets
  deleted — it is left in place for a human to inspect;
* only files matching the ``checkpoint-<watermark>.ckpt`` naming scheme
  are considered at all, so foreign files sharing the directory are
  never touched.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.state.checkpoint import Checkpoint, CheckpointError

#: The auto-checkpoint naming scheme: ``checkpoint-<watermark>.ckpt``.
CHECKPOINT_FILE_RE = re.compile(r"^checkpoint-(-?\d+)\.ckpt$")


def checkpoint_path(directory: str | Path, watermark: int) -> Path:
    """The canonical file path of a checkpoint at one watermark."""
    return Path(directory) / f"checkpoint-{watermark}.ckpt"


def list_checkpoints(directory: str | Path) -> list[Path]:
    """Checkpoint files in a directory, newest watermark first.

    Only names matching :data:`CHECKPOINT_FILE_RE` are listed; ordering
    is by the watermark embedded in the name (numeric, descending), not
    by filesystem timestamps.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found: list[tuple[int, Path]] = []
    for path in directory.iterdir():
        match = CHECKPOINT_FILE_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    found.sort(key=lambda pair: pair[0], reverse=True)
    return [path for _watermark, path in found]


def sweep_checkpoints(directory: str | Path, keep_last: int) -> list[Path]:
    """Delete superseded checkpoints, keeping the ``keep_last`` newest.

    Walks the directory's checkpoint files newest-first, verifies each
    by loading it, keeps the first ``keep_last`` valid ones, and deletes
    every *older valid* checkpoint.  Invalid files are skipped entirely
    (not counted, not deleted).  Returns the deleted paths, newest
    first.

    Raises:
        ValueError: for ``keep_last`` below 1 — a sweep that could
            delete every checkpoint is never what retention means.
    """
    if keep_last < 1:
        raise ValueError(f"keep_last must be >= 1: {keep_last}")
    kept = 0
    deleted: list[Path] = []
    for path in list_checkpoints(directory):
        try:
            Checkpoint.load(path)
        except (CheckpointError, OSError):
            continue
        if kept < keep_last:
            kept += 1
            continue
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent external removal
            continue
        deleted.append(path)
    return deleted
