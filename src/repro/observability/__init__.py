"""Unified observability: instruments, registry, spans and exporters.

The telemetry subsystem of the reproduction (PR 9).  Three layers:

* :mod:`repro.observability.instruments` — typed :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` primitives sharing the codebase's
  single percentile definition;
* :mod:`repro.observability.registry` — :class:`MetricsRegistry`,
  named + labeled families of instruments with deterministic iteration
  and checkpoint snapshot/restore;
* :mod:`repro.observability.exporters` / :mod:`repro.observability.hub`
  — Prometheus text snapshots, JSONL time series keyed by watermark, a
  console summary, and :class:`SessionTelemetry`, the hub the session
  feeds from every surface (spans, latency, events, watermarks).

Tracing spans themselves (:class:`~repro.streaming.dataflow.SpanRecord`)
live in the dataflow layer so all three execution backends record them
at the operator invocation site; the process backend ships them to the
master through its reply protocol and they end up here, in the hub.
"""

from repro.observability.exporters import (
    JsonlMetricsExporter,
    console_summary,
    registry_row,
    render_prometheus,
    sample_name,
)
from repro.observability.hub import (
    ObservabilityOptions,
    SessionTelemetry,
    resolve_options,
)
from repro.observability.instruments import (
    DEFAULT_BUCKETS,
    DEFAULT_HISTOGRAM_WINDOW,
    Counter,
    Gauge,
    Histogram,
)
from repro.observability.registry import MetricsRegistry

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_HISTOGRAM_WINDOW",
    "Gauge",
    "Histogram",
    "JsonlMetricsExporter",
    "MetricsRegistry",
    "ObservabilityOptions",
    "SessionTelemetry",
    "console_summary",
    "registry_row",
    "render_prometheus",
    "resolve_options",
    "sample_name",
]
