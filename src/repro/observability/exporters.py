"""Exporters: Prometheus text snapshots, JSONL time series, console table.

Three read-side views over one :class:`~repro.observability.registry.
MetricsRegistry`:

* :func:`render_prometheus` — the full registry as a Prometheus
  text-format (0.0.4) snapshot, suitable for a scrape endpoint or a
  textfile collector;
* :class:`JsonlMetricsExporter` — periodic time-series rows keyed by
  watermark, one JSON object per line (the ``detect --metrics-out``
  format; every row is the full instrument state at that watermark);
* :func:`console_summary` — a fixed-width table via the shared
  benchmark-report renderer, for end-of-run terminal summaries.

All three walk :meth:`MetricsRegistry.collect`, which iterates in
sorted (name, labels) order — so two runs with identical telemetry
render identical text, the property the serial ≡ process parity suite
pins.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.observability.instruments import Histogram
from repro.observability.registry import MetricsRegistry


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _format_labels(labels: dict[str, str], extra: str = "") -> str:
    """Render a ``{k="v",...}`` label block (empty string when bare)."""
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def sample_name(name: str, labels: dict[str, str]) -> str:
    """The canonical flat key of one instrument (``name{k="v"}``)."""
    return name + _format_labels(labels)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as a Prometheus text-format snapshot."""
    lines: list[str] = []
    last_family: str | None = None
    for name, kind, labels, instrument in registry.collect():
        if name != last_family:
            help_text = registry.family_help(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            last_family = name
        if isinstance(instrument, Histogram):
            for bound, count in instrument.bucket_counts():
                le = _format_labels(labels, f'le="{_format_value(bound)}"')
                lines.append(f"{name}_bucket{le} {count}")
            inf = _format_labels(labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{inf} {instrument.count}")
            block = _format_labels(labels)
            lines.append(
                f"{name}_sum{block} {_format_value(instrument.sum)}"
            )
            lines.append(f"{name}_count{block} {instrument.count}")
        else:
            lines.append(
                f"{name}{_format_labels(labels)} "
                f"{_format_value(instrument.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def registry_row(registry: MetricsRegistry, watermark: int | None) -> dict:
    """One JSONL time-series row: full instrument state at a watermark."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for name, kind, labels, instrument in registry.collect():
        key = sample_name(name, labels)
        if kind == "counter":
            counters[key] = instrument.value
        elif kind == "gauge":
            gauges[key] = instrument.value
        else:
            histograms[key] = {
                "count": instrument.count,
                "sum": instrument.sum,
                "p50": instrument.percentile(50.0),
                "p95": instrument.percentile(95.0),
                "p99": instrument.percentile(99.0),
            }
    return {
        "watermark": watermark,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


class JsonlMetricsExporter:
    """Periodic registry dumps as JSON lines keyed by watermark.

    ``every`` sets the cadence in watermarks: :meth:`export` writes one
    row per ``every``-th call (plus any forced final row), so a long run
    with a fine watermark granularity does not drown the series.  The
    exporter owns its file handle; :meth:`close` flushes and releases
    it.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str | Path,
        *,
        every: int = 1,
    ) -> None:
        """``path`` is created/truncated immediately; ``every`` >= 1."""
        if every < 1:
            raise ValueError(f"metrics_every must be >= 1: {every}")
        self.registry = registry
        self.path = Path(path)
        self.every = every
        self._handle: IO[str] | None = self.path.open("w")
        self._ticks = 0
        self.rows_written = 0

    def export(self, watermark: int | None, *, force: bool = False) -> bool:
        """Write one row if the cadence (or ``force``) says so.

        Returns whether a row was written.  Ticks count even when the
        cadence skips them, so ``every=3`` writes rows at watermark
        ticks 3, 6, 9, ...
        """
        if self._handle is None:
            return False
        if not force:
            self._ticks += 1
            if self._ticks % self.every:
                return False
        row = registry_row(self.registry, watermark)
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        self._handle.flush()
        self.rows_written += 1
        return True

    def close(self) -> None:
        """Flush and release the output file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def console_summary(registry: MetricsRegistry, title: str = "Telemetry") -> str:
    """The registry as a fixed-width console table (end-of-run summary)."""
    from repro.bench.report import format_table

    rows = []
    for name, kind, labels, instrument in registry.collect():
        if isinstance(instrument, Histogram):
            value = (
                f"count={instrument.count} sum={instrument.sum:.3f} "
                f"p50={instrument.percentile(50.0):.3f} "
                f"p99={instrument.percentile(99.0):.3f}"
            )
        else:
            value = _format_value(instrument.value)
        rows.append(
            {
                "metric": sample_name(name, labels),
                "kind": kind,
                "value": value,
            }
        )
    return format_table(rows, title=title)
