"""The metrics registry: named, labeled families of typed instruments.

A :class:`MetricsRegistry` is a flat namespace of instrument *families*.
A family has a name (``repro_records_ingested_total``), a kind
(counter / gauge / histogram), optional help text, and one instrument
per distinct label set (``{"stage": "allocate"}``) — the Prometheus
data model, which keeps the text exporter a direct rendering and the
JSONL exporter a flat dict walk.

Accessors are get-or-create and idempotent: the session telemetry hub,
the SLO controller wiring and ad-hoc user code can all ask for the same
family without coordinating creation order.  Kind mismatches on an
existing family raise immediately — a counter cannot silently become a
gauge.

The registry snapshots and restores as one plain payload, so a
checkpointed session's counters continue their series after a restart
(:class:`~repro.observability.hub.SessionTelemetry` carries it inside
the session checkpoint).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.observability.instruments import (
    DEFAULT_BUCKETS,
    DEFAULT_HISTOGRAM_WINDOW,
    Counter,
    Gauge,
    Histogram,
)

#: Prometheus-compatible metric / label name shape.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: A label set in canonical form: sorted ``(key, value)`` pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str] | None) -> LabelKey:
    """Canonicalise a label dict (validates names, sorts keys)."""
    if not labels:
        return ()
    for key in labels:
        if not _NAME_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Family:
    """One named family: kind, help, options, instruments by label set."""

    __slots__ = ("name", "kind", "help", "options", "instruments")

    def __init__(self, name: str, kind: str, help: str, options: dict):
        self.name = name
        self.kind = kind
        self.help = help
        self.options = options
        self.instruments: dict[LabelKey, object] = {}

    def make(self):
        """Instantiate one instrument of this family's kind."""
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(
            buckets=tuple(self.options["buckets"]),
            window=self.options["window"],
        )


class MetricsRegistry:
    """Get-or-create registry of labeled instrument families."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------- accessors

    def counter(
        self, name: str, labels: dict[str, str] | None = None, *, help: str = ""
    ) -> Counter:
        """The counter ``name{labels}``, created on first access."""
        return self._instrument(name, "counter", labels, help, {})

    def gauge(
        self, name: str, labels: dict[str, str] | None = None, *, help: str = ""
    ) -> Gauge:
        """The gauge ``name{labels}``, created on first access."""
        return self._instrument(name, "gauge", labels, help, {})

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        *,
        buckets: tuple[float, ...] | None = None,
        window: int | None = None,
        help: str = "",
    ) -> Histogram:
        """The histogram ``name{labels}``, created on first access.

        ``buckets`` / ``window`` apply on family creation only; every
        instrument of a family shares them (later calls may omit them).
        """
        options = {
            "buckets": list(buckets if buckets is not None else DEFAULT_BUCKETS),
            "window": (
                window if window is not None else DEFAULT_HISTOGRAM_WINDOW
            ),
        }
        return self._instrument(name, "histogram", labels, help, options)

    def get(self, name: str, labels: dict[str, str] | None = None):
        """The existing instrument ``name{labels}``, or ``None``."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.instruments.get(_label_key(labels))

    # ------------------------------------------------------------ iteration

    def collect(self) -> Iterator[tuple[str, str, dict[str, str], object]]:
        """Yield ``(name, kind, labels, instrument)`` in sorted order.

        Families sort by name, instruments by their canonical label
        key — a deterministic walk every exporter shares, so serial and
        process runs render byte-comparable snapshots.
        """
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.instruments):
                yield name, family.kind, dict(key), family.instruments[key]

    def family_help(self, name: str) -> str:
        """The help text registered for a family (empty when unset)."""
        family = self._families.get(name)
        return family.help if family is not None else ""

    def __len__(self) -> int:
        """Total number of instruments across every family."""
        return sum(len(f.instruments) for f in self._families.values())

    # ------------------------------------------------------------ checkpoint

    def snapshot_state(self) -> dict:
        """Serialisable state: every family, option set and instrument."""
        families = []
        for name in sorted(self._families):
            family = self._families[name]
            families.append(
                {
                    "name": name,
                    "kind": family.kind,
                    "help": family.help,
                    "options": dict(family.options),
                    "instruments": [
                        {
                            "labels": [list(pair) for pair in key],
                            "state": instrument.snapshot_state(),
                        }
                        for key, instrument in sorted(
                            family.instruments.items()
                        )
                    ],
                }
            )
        return {"families": families}

    def restore_state(self, payload: dict) -> None:
        """Rebuild every family and instrument from a snapshot payload.

        Families that already exist (the telemetry hub pre-creates its
        catalogue before a restore) are reused; their instruments adopt
        the checkpointed values so counters continue their series.
        """
        for entry in payload["families"]:
            name = entry["name"]
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    name, entry["kind"], entry["help"], dict(entry["options"])
                )
                self._families[name] = family
            elif family.kind != entry["kind"]:
                raise ValueError(
                    f"family {name!r} is a {family.kind}, checkpoint "
                    f"carries a {entry['kind']}"
                )
            for item in entry["instruments"]:
                key = tuple(tuple(pair) for pair in item["labels"])
                instrument = family.instruments.get(key)
                if instrument is None:
                    instrument = family.make()
                    family.instruments[key] = instrument
                instrument.restore_state(item["state"])

    # ------------------------------------------------------------- internals

    def _instrument(
        self,
        name: str,
        kind: str,
        labels: dict[str, str] | None,
        help: str,
        options: dict,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, options)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{family.kind}, not a {kind}"
            )
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = family.make()
            family.instruments[key] = instrument
        return instrument
