"""Typed telemetry instruments: Counter, Gauge and windowed Histogram.

The three instrument kinds every observability stack distinguishes,
shaped after the Prometheus data model so the text exporter is a direct
rendering:

* :class:`Counter` — a monotonically increasing total (records ingested,
  spans recorded, per-stage busy seconds);
* :class:`Gauge` — a value that goes up and down (watermark lag, shed
  rate, retained-state entry counts);
* :class:`Histogram` — cumulative count / sum plus fixed ``le`` buckets,
  *and* a bounded sliding window of recent samples so tail percentiles
  (the quantity the SLO controller steers on) come from the shared
  :func:`repro.streaming.metrics.percentile` helper — one percentile
  definition across the meter, the controller and the registry.

Instruments are deliberately free of registry machinery: the
:class:`~repro.shedding.controller.SLOController` consumes a bare
:class:`Histogram` directly, and :class:`~repro.observability.registry.
MetricsRegistry` hands out the same classes keyed by name and labels.
All instruments snapshot/restore as plain payloads so checkpointed
sessions continue their series after a restart.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque

from repro.streaming.metrics import percentile

#: Default sliding-window size for histogram percentiles.
DEFAULT_HISTOGRAM_WINDOW = 512

#: Default ``le`` bucket upper bounds, tuned for millisecond latencies.
DEFAULT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)


class Counter:
    """A monotonically increasing total.

    Values are floats so the same class carries record counts and busy
    seconds; decreasing the value is a programming error and raises.
    """

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self._value += amount

    def set_total(self, total: float) -> None:
        """Advance the counter to an absolute total (mirrored counters).

        Sessions keep some counts as plain attributes (records ingested,
        shed, protected) and mirror them into the registry; the mirror
        must never move backwards.
        """
        if total < self._value:
            raise ValueError(
                f"counter cannot decrease: {self._value} -> {total}"
            )
        self._value = float(total)

    def snapshot_state(self) -> dict:
        """Serialisable state for checkpoints."""
        return {"value": self._value}

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._value = float(payload["value"])


class Gauge:
    """A value that can go up and down (last-write-wins)."""

    kind = "gauge"

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        """The most recently set value."""
        return self._value

    def set(self, value: float) -> None:
        """Overwrite the gauge's value."""
        self._value = float(value)

    def snapshot_state(self) -> dict:
        """Serialisable state for checkpoints."""
        return {"value": self._value}

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._value = float(payload["value"])


class Histogram:
    """Cumulative bucket counts plus a sliding window for percentiles.

    The cumulative side (``count`` / ``sum`` / ``le`` buckets) is the
    Prometheus histogram contract and never resets; the window side is a
    bounded deque of the most recent samples over which
    :meth:`percentile` interpolates — the exact computation the SLO
    controller adapts on, so controller-observed and registry-reported
    tails agree by construction.
    """

    kind = "histogram"

    __slots__ = ("_bounds", "_bins", "_count", "_sum", "_window")

    def __init__(
        self,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        window: int = DEFAULT_HISTOGRAM_WINDOW,
    ) -> None:
        """``buckets`` are strictly increasing ``le`` upper bounds;
        ``window`` (>= 1) caps the percentile sample deque."""
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self._bounds = bounds
        self._bins = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0
        self._window: deque[float] = deque(maxlen=window)

    @property
    def count(self) -> int:
        """Total observations (cumulative, never resets)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value (cumulative)."""
        return self._sum

    @property
    def bounds(self) -> tuple[float, ...]:
        """The configured ``le`` bucket upper bounds."""
        return self._bounds

    @property
    def window_size(self) -> int:
        """Capacity of the percentile sample window."""
        return self._window.maxlen or 0

    @property
    def window_full(self) -> bool:
        """Whether the sample window has reached capacity."""
        return len(self._window) == self._window.maxlen

    def observe(self, value: float) -> None:
        """Record one sample into the buckets and the window."""
        value = float(value)
        index = bisect_left(self._bounds, value)
        if index < len(self._bins):
            self._bins[index] += 1
        self._count += 1
        self._sum += value
        self._window.append(value)

    def samples(self) -> list[float]:
        """The current window contents, oldest first."""
        return list(self._window)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile over the sample window (0.0 empty).

        Linear interpolation via the shared
        :func:`repro.streaming.metrics.percentile` helper — the single
        percentile definition of the codebase.
        """
        return percentile(self._window, q)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le_bound, count)`` pairs, Prometheus-style.

        The implicit ``+Inf`` bucket is :attr:`count` and is appended by
        the exporter, not here.
        """
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bin_count in zip(self._bounds, self._bins):
            running += bin_count
            pairs.append((bound, running))
        return pairs

    def replace_window(self, values: list[float]) -> None:
        """Overwrite the percentile window (checkpoint restore path).

        Only the window is touched; the cumulative side is restored
        separately by :meth:`restore_state` when the whole instrument —
        rather than a controller's view of it — is being rebuilt.
        """
        self._window.clear()
        self._window.extend(float(v) for v in values)

    def snapshot_state(self) -> dict:
        """Serialisable state for checkpoints (cumulative + window)."""
        return {
            "count": self._count,
            "sum": self._sum,
            "bins": list(self._bins),
            "window": list(self._window),
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._count = int(payload["count"])
        self._sum = float(payload["sum"])
        bins = list(payload["bins"])
        if len(bins) != len(self._bins):
            raise ValueError(
                f"histogram payload carries {len(bins)} bins, "
                f"instrument has {len(self._bins)}"
            )
        self._bins = bins
        self.replace_window(payload["window"])
