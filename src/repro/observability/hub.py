"""The session telemetry hub: one registry fed by every surface.

:class:`SessionTelemetry` is the glue between the session lifecycle and
the instrument layer.  The session calls a small set of hooks —
:meth:`observe_spans` after each processed unit, :meth:`observe_latency`
per snapshot, :meth:`observe_events` per emitted event batch,
:meth:`on_watermark` per watermark advance — and the hub maintains the
full instrument catalogue in one :class:`~repro.observability.registry.
MetricsRegistry`:

========================================  =========  ======================
family                                    kind       labels
========================================  =========  ======================
``repro_records_ingested_total``          counter    —
``repro_records_shed_total``              counter    —
``repro_records_protected_total``         counter    —
``repro_snapshots_total``                 counter    —
``repro_patterns_total``                  counter    —
``repro_events_total``                    counter    ``kind``
``repro_stage_spans_total``               counter    ``stage``
``repro_stage_elements_in_total``         counter    ``stage``
``repro_stage_elements_out_total``        counter    ``stage``
``repro_stage_busy_seconds_total``        counter    ``stage``
``repro_snapshot_latency_ms``             histogram  —
``repro_slo_latency_ms``                  histogram  —  (shedding active)
``repro_watermark``                       gauge      —
``repro_watermark_lag``                   gauge      —
``repro_shed_rate``                       gauge      —
``repro_state_entries``                   gauge      ``component, metric``
========================================  =========  ======================

Exporters hang off the same hub: a JSONL time series keyed by watermark
(``metrics_out`` / ``metrics_every``), a span trace (``trace_out``), a
Prometheus snapshot on demand, and an optional console summary at
finish.  State gauges (``repro_state_entries``) are refreshed lazily —
only when an export row is actually due — because reading them round-
trips the worker protocol under the process backend.

The hub snapshots/restores with the session checkpoint, so a restored
session's counters continue their series instead of restarting at zero.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Callable, Iterable

from repro.observability.exporters import (
    JsonlMetricsExporter,
    console_summary,
    render_prometheus,
)
from repro.observability.instruments import Histogram
from repro.observability.registry import MetricsRegistry


@dataclass(frozen=True, slots=True)
class ObservabilityOptions:
    """How a session's telemetry is collected and exported.

    Attributes:
        metrics_out: path of the JSONL metrics time series (``None``
            disables the file exporter; the in-memory registry always
            collects).
        metrics_every: watermark cadence of the JSONL rows — one row per
            ``metrics_every``-th watermark advance, plus a final row at
            finish.
        trace_out: path of the span trace (JSON lines, one operator
            invocation per row); ``None`` disables span persistence
            (spans still feed the per-stage counters).
        console: print the console summary table at finish.
    """

    metrics_out: str | Path | None = None
    metrics_every: int = 1
    trace_out: str | Path | None = None
    console: bool = False

    def __post_init__(self) -> None:
        if self.metrics_every < 1:
            raise ValueError(
                f"metrics_every must be >= 1: {self.metrics_every}"
            )


def resolve_options(
    value: "ObservabilityOptions | dict | bool | None",
) -> ObservabilityOptions | None:
    """Coerce the session-facing ``observability=`` argument.

    ``None`` / ``False`` mean disabled (no hub at all); ``True`` enables
    the in-memory registry with no file exporters; a dict is keyword
    arguments for :class:`ObservabilityOptions`; an options instance
    passes through.
    """
    if value is None or value is False:
        return None
    if value is True:
        return ObservabilityOptions()
    if isinstance(value, ObservabilityOptions):
        return value
    if isinstance(value, dict):
        return ObservabilityOptions(**value)
    raise TypeError(
        f"observability must be None, bool, dict or ObservabilityOptions; "
        f"got {type(value).__name__}"
    )


class SessionTelemetry:
    """Per-session telemetry: the registry, its feeders and exporters."""

    def __init__(self, options: ObservabilityOptions | None = None) -> None:
        """Build the hub (and open any configured output files)."""
        self.options = options or ObservabilityOptions()
        self.registry = MetricsRegistry()
        reg = self.registry
        self._latency = reg.histogram(
            "repro_snapshot_latency_ms",
            help="End-to-end cost-model latency per processed snapshot.",
        )
        self._ingested = reg.counter(
            "repro_records_ingested_total",
            help="Records accepted by the session.",
        )
        self._shed = reg.counter(
            "repro_records_shed_total",
            help="Snapshot rows dropped by the load-shedding policy.",
        )
        self._protected = reg.counter(
            "repro_records_protected_total",
            help="Rows spared by pattern-aware shed protection.",
        )
        self._snapshots = reg.counter(
            "repro_snapshots_total", help="Snapshots fully processed."
        )
        self._patterns = reg.counter(
            "repro_patterns_total", help="Distinct confirmed patterns."
        )
        self._watermark = reg.gauge(
            "repro_watermark", help="Latest processed snapshot time."
        )
        self._watermark_lag = reg.gauge(
            "repro_watermark_lag",
            help="Sync-operator lag: max event time seen minus emitted.",
        )
        self._shed_rate = reg.gauge(
            "repro_shed_rate", help="Current controller shed rate."
        )
        self.spans_recorded = 0
        self._exporter: JsonlMetricsExporter | None = None
        if self.options.metrics_out is not None:
            self._exporter = JsonlMetricsExporter(
                reg, self.options.metrics_out, every=1
            )
        self._trace: IO[str] | None = None
        if self.options.trace_out is not None:
            self._trace = Path(self.options.trace_out).open("w")
        self._ticks = 0
        self._finalized = False

    # ---------------------------------------------------------------- feeders

    def slo_latency_histogram(self, window: int) -> Histogram:
        """The shared SLO latency histogram (controller + registry view).

        The SLO controller adopts this instrument as its observation
        window, so controller-steered and registry-exported percentiles
        are computed over the *same* samples by the *same* shared
        helper — they cannot disagree.
        """
        return self.registry.histogram(
            "repro_slo_latency_ms",
            window=window,
            help="Controller-observed snapshot latency (SLO window).",
        )

    def observe_spans(self, spans: Iterable) -> None:
        """Fold one unit's span records into the per-stage counters.

        Also appends each span to the trace file when one is configured.
        Spans arrive already ordered (stage, then subtask) — the
        pipeline sorts drained buffers — so the trace is byte-
        deterministic across backends, busy timings aside.
        """
        reg = self.registry
        trace = self._trace
        for span in spans:
            labels = {"stage": span.stage}
            reg.counter(
                "repro_stage_spans_total",
                labels,
                help="Operator invocations (spans) per stage.",
            ).inc()
            reg.counter(
                "repro_stage_elements_in_total",
                labels,
                help="Elements routed into each stage.",
            ).inc(span.elements_in)
            reg.counter(
                "repro_stage_elements_out_total",
                labels,
                help="Elements emitted by each stage.",
            ).inc(span.elements_out)
            reg.counter(
                "repro_stage_busy_seconds_total",
                labels,
                help="Cumulative subtask busy time per stage.",
            ).inc(span.busy_seconds)
            self.spans_recorded += 1
            if trace is not None:
                trace.write(
                    json.dumps(
                        {
                            "stage": span.stage,
                            "subtask": span.subtask,
                            "time": span.time,
                            "kind": span.kind,
                            "elements_in": span.elements_in,
                            "elements_out": span.elements_out,
                            "busy_ms": span.busy_seconds * 1000.0,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )

    def observe_latency(self, latency_ms: float) -> None:
        """Record one processed snapshot's end-to-end latency."""
        self._latency.observe(latency_ms)

    def observe_events(self, events: Iterable) -> None:
        """Count emitted session events by kind."""
        for event in events:
            self.registry.counter(
                "repro_events_total",
                {"kind": event.kind},
                help="Emitted session events by kind.",
            ).inc()

    def mirror_session(
        self,
        watermark: int,
        *,
        records_ingested: int,
        records_shed: int,
        records_protected: int,
        snapshots: int,
        patterns_total: int,
        shed_rate: float,
        watermark_lag: int,
    ) -> None:
        """Mirror the session's authoritative counts into the registry.

        The quantities are monotone session counters (hence
        :meth:`Counter.set_total`) plus the current gauges.
        """
        self._ingested.set_total(records_ingested)
        self._shed.set_total(records_shed)
        self._protected.set_total(records_protected)
        self._snapshots.set_total(snapshots)
        self._patterns.set_total(patterns_total)
        self._watermark.set(watermark)
        self._watermark_lag.set(watermark_lag)
        self._shed_rate.set(shed_rate)

    def mirror_pattern_family(self, metrics: dict[str, int]) -> None:
        """Mirror a pattern family's monotone counters into the registry.

        The family names its own metric families (e.g.
        ``repro_patterns_forming_total``,
        ``repro_patterns_predicted_total``); values are authoritative
        session-side totals, hence :meth:`Counter.set_total`.
        """
        for name, value in metrics.items():
            self.registry.counter(
                name,
                help="Pattern-family counter (see repro.patterns).",
            ).set_total(int(value))

    def on_watermark(
        self,
        watermark: int,
        *,
        refresh: Callable[[], dict] | None = None,
        **session_counts,
    ) -> None:
        """Mirror the session counters and maybe write an export row.

        Keyword arguments are those of :meth:`mirror_session`;
        ``refresh`` produces the per-component state-memory map and is
        only invoked when the JSONL cadence makes a row due — it can
        round-trip the worker protocol under the process backend.
        """
        self.mirror_session(watermark, **session_counts)
        if self._exporter is None:
            return
        self._ticks += 1
        if self._ticks % self.options.metrics_every:
            return
        if refresh is not None:
            self.refresh_state_gauges(refresh())
        self._exporter.export(watermark, force=True)

    def refresh_state_gauges(
        self, state_memory: dict[str, dict[str, int]]
    ) -> None:
        """Set ``repro_state_entries{component,metric}`` from accounting."""
        for component, metrics in state_memory.items():
            for metric, value in metrics.items():
                self.registry.gauge(
                    "repro_state_entries",
                    {"component": component, "metric": str(metric)},
                    help="Retained-object counts per live component.",
                ).set(value)

    # -------------------------------------------------------------- exporters

    def prometheus(self) -> str:
        """The registry as a Prometheus text-format snapshot."""
        return render_prometheus(self.registry)

    def summary(self, title: str = "Telemetry") -> str:
        """The registry as a console table."""
        return console_summary(self.registry, title=title)

    def finalize(
        self,
        watermark: int | None,
        refresh: Callable[[], dict] | None = None,
    ) -> None:
        """End of stream: force the final export row, print the summary.

        Idempotent.  Output files stay open until :meth:`close` so late
        readers (tests, the CLI epilogue) can still flush through the
        hub; the final JSONL row and the console table are written here.
        """
        if self._finalized:
            return
        self._finalized = True
        if refresh is not None and (
            self._exporter is not None or self.options.console
        ):
            self.refresh_state_gauges(refresh())
        if self._exporter is not None:
            self._exporter.export(watermark, force=True)
        if self.options.console:
            print(self.summary())

    def close(self) -> None:
        """Flush and close every configured output file (idempotent)."""
        if self._exporter is not None:
            self._exporter.close()
        if self._trace is not None:
            self._trace.close()
            self._trace = None

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Serialisable hub state (the registry plus export cadence)."""
        return {
            "registry": self.registry.snapshot_state(),
            "ticks": self._ticks,
            "spans_recorded": self.spans_recorded,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self.registry.restore_state(payload["registry"])
        self._ticks = int(payload["ticks"])
        self.spans_recorded = int(payload["spans_recorded"])
