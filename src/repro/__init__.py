"""ICPE: real-time co-movement pattern detection on streaming trajectories.

A from-scratch Python reproduction of Chen et al., "Real-time Distributed
Co-Movement Pattern Detection on Streaming Trajectories", PVLDB 12(10),
2019 (DOI 10.14778/3339490.3339502).

Quickstart::

    from repro import CoMovementDetector, ICPEConfig, PatternConstraints

    config = ICPEConfig(
        epsilon=10.0, cell_width=30.0, min_pts=3,
        constraints=PatternConstraints(m=3, k=4, l=2, g=2),
    )
    detector = CoMovementDetector(config)
    for record in stream:          # StreamRecord items
        for pattern in detector.feed(record):
            print(pattern)
    for pattern in detector.finish():
        print(pattern)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced tables and figures.
"""

from repro.model import (
    ClusterSnapshot,
    CoMovementPattern,
    GPSRecord,
    Location,
    PatternConstraints,
    Snapshot,
    StreamRecord,
    TimeDiscretizer,
    TimeSequence,
    Trajectory,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterSnapshot",
    "CoMovementDetector",
    "CoMovementPattern",
    "GPSRecord",
    "ICPEConfig",
    "ICPEPipeline",
    "Location",
    "PatternConstraints",
    "Snapshot",
    "StreamRecord",
    "TimeDiscretizer",
    "TimeSequence",
    "Trajectory",
    "__version__",
]


def __getattr__(name: str):
    """Lazily import the heavyweight core API to keep import costs low."""
    if name in ("CoMovementDetector", "ICPEConfig", "ICPEPipeline"):
        from repro.core.config import ICPEConfig
        from repro.core.detector import CoMovementDetector
        from repro.core.icpe import ICPEPipeline

        value = {
            "CoMovementDetector": CoMovementDetector,
            "ICPEConfig": ICPEConfig,
            "ICPEPipeline": ICPEPipeline,
        }[name]
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
