"""ICPE: real-time co-movement pattern detection on streaming trajectories.

A from-scratch Python reproduction of Chen et al., "Real-time Distributed
Co-Movement Pattern Detection on Streaming Trajectories", PVLDB 12(10),
2019 (DOI 10.14778/3339490.3339502).

Quickstart (the streaming Session API)::

    from repro import PatternConstraints, open_session

    with open_session(
        epsilon=10.0, cell_width=30.0, min_pts=3,
        constraints=PatternConstraints(m=3, k=4, l=2, g=2),
    ) as session:
        for record in stream:          # StreamRecord items
            for event in session.feed(record):
                print(event)
    print(session.result().summary())

Throughput-oriented ingestion goes through the columnar data plane —
pack records into a :class:`~repro.model.batch.RecordBatch` (or let
``feed_many`` auto-pack) and feed whole batches::

    with open_session(config, batch_size=1024) as session:
        for batch in RecordBatch.pack(stream, 1024):
            for event in session.feed_batch(batch):
                print(event)

Every strategy axis — execution backend, clustering kernel, enumeration
kernel, enumerator, shed policy, pattern family — is a plugin on
:func:`repro.registry.
default_registry`; third-party packages register via the
``repro.plugins`` entry-point group.  The pre-2.0
``CoMovementDetector`` remains available as a deprecation shim.

See ``docs/API.md`` for the session lifecycle and the plugin contract,
``docs/ARCHITECTURE.md`` for the system inventory and
``docs/PAPER_MAP.md`` for the paper-to-code map.
"""

from repro.model import (
    ClusterSnapshot,
    CoMovementPattern,
    GPSRecord,
    Location,
    PatternConstraints,
    RecordBatch,
    Snapshot,
    SnapshotBatch,
    StreamRecord,
    TimeDiscretizer,
    TimeSequence,
    Trajectory,
)

__version__ = "2.6.0"

#: Names resolved lazily by ``__getattr__`` (heavyweight core / session /
#: registry machinery), mapped to their home modules.
_LAZY_EXPORTS = {
    "CoMovementDetector": "repro.core.detector",
    "ICPEConfig": "repro.core.config",
    "ICPEPipeline": "repro.core.icpe",
    "Checkpoint": "repro.state",
    "CheckpointError": "repro.state",
    "CallbackSink": "repro.session",
    "ConvoyDelta": "repro.session",
    "GroupEvolved": "repro.session",
    "JsonlSink": "repro.session",
    "ListSink": "repro.session",
    "PatternConfirmed": "repro.session",
    "PatternEvent": "repro.session",
    "PatternForming": "repro.session",
    "PatternSink": "repro.session",
    "Session": "repro.session",
    "SessionBuilder": "repro.session",
    "SessionResult": "repro.session",
    "WatermarkAdvanced": "repro.session",
    "open_session": "repro.session",
    "PluginCapabilities": "repro.registry",
    "PluginRegistry": "repro.registry",
    "PluginSpec": "repro.registry",
    "default_registry": "repro.registry",
    "NoShedPolicy": "repro.shedding",
    "PatternAwareShedPolicy": "repro.shedding",
    "RandomShedPolicy": "repro.shedding",
    "SLOController": "repro.shedding",
    "ShedPolicy": "repro.shedding",
    "MetricsRegistry": "repro.observability",
    "ObservabilityOptions": "repro.observability",
    "SessionTelemetry": "repro.observability",
    "EvolvingGroupTracker": "repro.patterns",
    "PatternFamily": "repro.patterns",
    "PersistenceModel": "repro.patterns",
    "PredictiveFamily": "repro.patterns",
}

__all__ = sorted(
    [
        "ClusterSnapshot",
        "CoMovementPattern",
        "GPSRecord",
        "Location",
        "PatternConstraints",
        "RecordBatch",
        "Snapshot",
        "SnapshotBatch",
        "StreamRecord",
        "TimeDiscretizer",
        "TimeSequence",
        "Trajectory",
        "__version__",
        *_LAZY_EXPORTS,
    ]
)


def __getattr__(name: str):
    """Lazily import the heavyweight public API to keep import costs low."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    """Expose the lazy names to ``dir(repro)`` / tab-completion."""
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
