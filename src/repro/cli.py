"""Command-line interface: generate workloads, inspect them, run detection.

Usage::

    python -m repro.cli generate --kind brinkhoff --objects 200 --horizon 60 \
        --seed 11 --out /tmp/brinkhoff.csv
    python -m repro.cli stats --input /tmp/brinkhoff.csv
    python -m repro.cli detect --input /tmp/brinkhoff.csv \
        --epsilon-pct 0.06 --grid-pct 1.6 --min-pts 5 \
        --m 5 --k 10 --l 2 --g 2 --enumerator fba --maximal-only
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.report import format_table
from repro.core.config import ICPEConfig
from repro.core.detector import CoMovementDetector
from repro.core.store import PatternStore
from repro.data.brinkhoff import BrinkhoffConfig, generate_brinkhoff
from repro.data.dataset import TrajectoryDataset
from repro.data.geolife import GeoLifeConfig, generate_geolife
from repro.data.taxi import TaxiConfig, generate_taxi
from repro.kernels import numpy_available
from repro.model.constraints import PatternConstraints

GENERATORS = {
    "brinkhoff": (generate_brinkhoff, BrinkhoffConfig),
    "geolife": (generate_geolife, GeoLifeConfig),
    "taxi": (generate_taxi, TaxiConfig),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with the three subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ICPE: co-movement pattern detection on streaming trajectories",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="generate a synthetic workload")
    gen.add_argument("--kind", choices=sorted(GENERATORS), required=True)
    gen.add_argument("--objects", type=int, default=200)
    gen.add_argument("--horizon", type=int, default=60)
    gen.add_argument("--seed", type=int, default=11)
    gen.add_argument("--group-fraction", type=float, default=None)
    gen.add_argument("--out", required=True, help="output CSV path")

    stats = commands.add_parser("stats", help="print Table-2 style statistics")
    stats.add_argument("--input", required=True, help="CSV from `generate`")

    detect = commands.add_parser("detect", help="run pattern detection")
    detect.add_argument("--input", required=True, help="CSV from `generate`")
    detect.add_argument("--epsilon-pct", type=float, default=0.06,
                        help="epsilon as %% of dataset max distance")
    detect.add_argument("--grid-pct", type=float, default=1.6,
                        help="grid cell width as %% of dataset max distance")
    detect.add_argument("--min-pts", type=int, default=5)
    detect.add_argument("--m", type=int, default=5)
    detect.add_argument("--k", type=int, default=10)
    detect.add_argument("--l", type=int, default=2)
    detect.add_argument("--g", type=int, default=2)
    detect.add_argument(
        "--enumerator", choices=("baseline", "fba", "vba"), default="fba"
    )
    detect.add_argument(
        "--backend", choices=("serial", "parallel"), default="serial",
        help="execution backend running the job graph",
    )
    detect.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for --backend parallel",
    )
    detect.add_argument(
        "--kernel", choices=("python", "numpy"), default="python",
        help="snapshot-clustering kernel: reference object path or "
             "vectorized NumPy arrays (identical results)",
    )
    detect.add_argument(
        "--enum-kernel", choices=("python", "numpy"), default="python",
        help="pattern-enumeration kernel: reference per-anchor state "
             "machines or batched NumPy membership bitmaps (identical "
             "results; requires --enumerator fba or vba)",
    )
    detect.add_argument("--max-delay", type=int, default=0)
    detect.add_argument(
        "--maximal-only", action="store_true",
        help="report only maximal object sets",
    )
    detect.add_argument(
        "--limit", type=int, default=20, help="max patterns to print"
    )
    detect.add_argument(
        "--json-out", default=None,
        help="also write the patterns as JSON to this path",
    )
    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    """``generate``: synthesize a workload and write it as CSV."""
    generate, config_cls = GENERATORS[args.kind]
    kwargs = dict(n_objects=args.objects, horizon=args.horizon, seed=args.seed)
    if args.group_fraction is not None:
        kwargs["group_fraction"] = args.group_fraction
    dataset = generate(config_cls(**kwargs))
    dataset.save_csv(args.out)
    stats = dataset.statistics()
    print(
        f"wrote {args.out}: {stats.trajectories} trajectories, "
        f"{stats.locations} locations, {stats.snapshots} snapshots"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: print Table-2 style statistics for a CSV workload."""
    dataset = TrajectoryDataset.load_csv(args.input)
    print(format_table([dataset.statistics().as_row()], title="Dataset"))
    print(f"\nmax L1 extent: {dataset.max_distance():.1f}")
    for pct in (0.02, 0.06, 0.12):
        print(f"  epsilon at {pct}% -> {dataset.resolve_percentage(pct):.2f}")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    """``detect``: run ICPE over a CSV workload and print patterns."""
    if args.kernel == "numpy" and not numpy_available():
        print(
            "error: --kernel numpy requires NumPy, which is not installed; "
            "use --kernel python",
            file=sys.stderr,
        )
        return 2
    if args.enum_kernel == "numpy" and not numpy_available():
        print(
            "error: --enum-kernel numpy requires NumPy, which is not "
            "installed; use --enum-kernel python",
            file=sys.stderr,
        )
        return 2
    if args.enum_kernel != "python" and args.enumerator == "baseline":
        print(
            "error: --enum-kernel numpy batches membership bit strings and "
            "supports --enumerator fba or vba; the baseline enumerator has "
            "no bitmap form",
            file=sys.stderr,
        )
        return 2
    dataset = TrajectoryDataset.load_csv(args.input)
    config = ICPEConfig(
        epsilon=dataset.resolve_percentage(args.epsilon_pct),
        cell_width=dataset.resolve_percentage(args.grid_pct),
        min_pts=args.min_pts,
        constraints=PatternConstraints(m=args.m, k=args.k, l=args.l, g=args.g),
        enumerator=args.enumerator,
        max_delay=args.max_delay,
        backend=args.backend,
        parallel_workers=args.workers,
        clustering_kernel=args.kernel,
        enumeration_kernel=args.enum_kernel,
    )
    detector = CoMovementDetector(config)
    detector.feed_many(dataset.records)
    detector.finish()
    print(f"backend: {detector.backend_name}")
    print(f"kernel: {detector.kernel_name}")
    print(f"enumeration kernel: {detector.enumeration_kernel_name}")

    store = PatternStore()
    store.add_all(detector.pipeline.collector.detections)
    patterns = store.maximal() if args.maximal_only else list(store)
    patterns.sort(key=lambda p: (-p.size, p.objects))
    label = "maximal patterns" if args.maximal_only else "patterns"
    print(f"{len(patterns)} {label} (showing up to {args.limit}):")
    for stored in patterns[: args.limit]:
        first, last = stored.span
        ids = ", ".join(f"o{oid}" for oid in stored.objects)
        print(f"  {{{ids}}}  witnessed over [{first}, {last}]")
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(
                store.to_json(maximal_only=args.maximal_only, indent=2)
            )
        print(f"wrote JSON to {args.json_out}")
    meter = detector.meter
    print(
        f"\n{meter.snapshots} snapshots; avg latency "
        f"{meter.average_latency_ms():.2f} ms; throughput "
        f"{meter.throughput_tps():.0f} snapshots/s"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "stats": cmd_stats,
        "detect": cmd_detect,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
