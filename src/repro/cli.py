"""Command-line interface: generate workloads, inspect them, run detection.

Usage::

    python -m repro.cli generate --kind brinkhoff --objects 200 --horizon 60 \
        --seed 11 --out /tmp/brinkhoff.csv
    python -m repro.cli stats --input /tmp/brinkhoff.csv
    python -m repro.cli detect --input /tmp/brinkhoff.csv \
        --epsilon-pct 0.06 --grid-pct 1.6 --min-pts 5 \
        --m 5 --k 10 --l 2 --g 2 --enumerator fba --maximal-only
    python -m repro.cli plugins

Strategy flags (``--enumerator`` / ``--backend`` / ``--kernel`` /
``--enum-kernel`` / ``--shed-policy`` / ``--pattern-family``) take
their choice lists from the
plugin registry, so
third-party plugins registered via the ``repro.plugins`` entry-point
group appear automatically; ``plugins`` lists every registered strategy
with its capabilities.  ``detect --output json`` streams the session's
typed pattern events as JSON lines (the :class:`~repro.session.sinks.
JsonlSink` format) instead of the human listing.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Sequence

from repro.bench.report import format_table
from repro.core.config import ICPEConfig
from repro.data.brinkhoff import BrinkhoffConfig, generate_brinkhoff
from repro.data.dataset import TrajectoryDataset
from repro.data.geolife import GeoLifeConfig, generate_geolife
from repro.data.taxi import TaxiConfig, generate_taxi
from repro.kernels import numpy_available
from repro.model.constraints import PatternConstraints
from repro.observability import ObservabilityOptions
from repro.registry import PLUGIN_KINDS, PluginError, default_registry
from repro.session import JsonlSink, Session
from repro.state import Checkpoint, CheckpointError

GENERATORS = {
    "brinkhoff": (generate_brinkhoff, BrinkhoffConfig),
    "geolife": (generate_geolife, GeoLifeConfig),
    "taxi": (generate_taxi, TaxiConfig),
}

#: Strategy axis -> the CLI flag selecting it (error messages, listings).
AXIS_FLAGS = {
    "enumerator": "--enumerator",
    "backend": "--backend",
    "clustering_kernel": "--kernel",
    "enumeration_kernel": "--enum-kernel",
    "shed_policy": "--shed-policy",
    "pattern_family": "--pattern-family",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with the four subcommands.

    The strategy flags' ``choices`` are generated from the plugin
    registry rather than hardcoded, so every registered plugin —
    built-in or entry-point discovered — is selectable.
    """
    registry = default_registry()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ICPE: co-movement pattern detection on streaming trajectories",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="generate a synthetic workload")
    gen.add_argument("--kind", choices=sorted(GENERATORS), required=True)
    gen.add_argument("--objects", type=int, default=200)
    gen.add_argument("--horizon", type=int, default=60)
    gen.add_argument("--seed", type=int, default=11)
    gen.add_argument("--group-fraction", type=float, default=None)
    gen.add_argument("--out", required=True, help="output CSV path")

    stats = commands.add_parser("stats", help="print Table-2 style statistics")
    stats.add_argument("--input", required=True, help="CSV from `generate`")

    plugins = commands.add_parser(
        "plugins", help="list registered strategy plugins and capabilities"
    )
    plugins.add_argument(
        "--kind", choices=PLUGIN_KINDS, default=None,
        help="restrict the listing to one strategy axis",
    )

    detect = commands.add_parser("detect", help="run pattern detection")
    detect.add_argument("--input", required=True, help="CSV from `generate`")
    detect.add_argument("--epsilon-pct", type=float, default=0.06,
                        help="epsilon as %% of dataset max distance")
    detect.add_argument("--grid-pct", type=float, default=1.6,
                        help="grid cell width as %% of dataset max distance")
    detect.add_argument("--min-pts", type=int, default=5)
    detect.add_argument("--m", type=int, default=5)
    detect.add_argument("--k", type=int, default=10)
    detect.add_argument("--l", type=int, default=2)
    detect.add_argument("--g", type=int, default=2)
    detect.add_argument(
        "--enumerator", choices=registry.names("enumerator"), default="fba"
    )
    detect.add_argument(
        "--backend", choices=registry.names("backend"), default="serial",
        help="execution backend running the job graph",
    )
    detect.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for --backend parallel/process",
    )
    detect.add_argument(
        "--kernel", choices=registry.names("clustering_kernel"),
        default="python",
        help="snapshot-clustering kernel: reference object path or "
             "vectorized NumPy arrays (identical results)",
    )
    detect.add_argument(
        "--enum-kernel", choices=registry.names("enumeration_kernel"),
        default="python",
        help="pattern-enumeration kernel: reference per-anchor state "
             "machines or batched NumPy membership bitmaps (identical "
             "results; requires --enumerator fba or vba)",
    )
    detect.add_argument(
        "--shed-policy", choices=registry.names("shed_policy"),
        default="none",
        help="load-shedding policy under overload: none (default), "
             "random Bernoulli drops, or pattern_aware (protects "
             "records inside live partial matches)",
    )
    detect.add_argument(
        "--shed-rate", type=float, default=0.0,
        help="fraction of ingested records to shed in [0, 1); the "
             "starting rate when --target-p99-ms engages the controller",
    )
    detect.add_argument(
        "--target-p99-ms", type=float, default=None,
        help="latency SLO: adapt the shed rate toward this p99 "
             "per-snapshot latency (requires --shed-policy != none)",
    )
    detect.add_argument(
        "--pattern-family", choices=registry.names("pattern_family"),
        default="strict",
        help="pattern family: strict (the paper's exact semantics), "
             "evolving (θ-continuous groups, GroupEvolved events) or "
             "predictive (online confirmation-probability scoring, "
             "PatternForming events; requires --enumerator fba or vba)",
    )
    detect.add_argument(
        "--evolving-theta", type=float, default=0.5,
        help="Jaccard-continuity threshold of --pattern-family evolving, "
             "in (0, 1]",
    )
    detect.add_argument(
        "--prediction-min-probability", type=float, default=0.0,
        help="emission threshold of --pattern-family predictive, in "
             "[0, 1]; forming candidates scoring below it are dropped",
    )
    detect.add_argument("--max-delay", type=int, default=0)
    detect.add_argument(
        "--batch-size", type=int, default=1024,
        help="records per columnar ingest batch (the RecordBatch data "
             "plane); 0 feeds record-at-a-time through the per-point "
             "compatibility path — identical results either way",
    )
    detect.add_argument(
        "--output", choices=("text", "json"), default="text",
        help="text: human pattern listing; json: one JSON line per "
             "session pattern event plus a final summary line",
    )
    detect.add_argument(
        "--maximal-only", action="store_true",
        help="report only maximal object sets",
    )
    detect.add_argument(
        "--limit", type=int, default=20, help="max patterns to print"
    )
    detect.add_argument(
        "--json-out", default=None,
        help="also write the patterns as JSON to this path",
    )
    detect.add_argument(
        "--checkpoint-dir", default=None,
        help="save periodic checkpoints into this directory "
             "(checkpoint-<watermark>.ckpt, loadable via --restore-from)",
    )
    detect.add_argument(
        "--checkpoint-every-records", type=int, default=None,
        help="ingested records between automatic checkpoints "
             "(requires --checkpoint-dir; default: every watermark)",
    )
    detect.add_argument(
        "--checkpoint-every-seconds", type=float, default=None,
        help="wall-clock seconds between automatic checkpoints "
             "(requires --checkpoint-dir; combines with "
             "--checkpoint-every-records, whichever fires first)",
    )
    detect.add_argument(
        "--checkpoint-keep-last", type=int, default=None,
        help="retain only the newest N checkpoints in --checkpoint-dir "
             "(the newest valid checkpoint always survives)",
    )
    detect.add_argument(
        "--restore-from", default=None,
        help="resume from a checkpoint file; detection parameters come "
             "from the checkpoint (only --backend/--workers may differ) "
             "and already-ingested records are skipped",
    )
    detect.add_argument(
        "--metrics-out", default=None,
        help="write the telemetry registry as a JSONL time series "
             "(one row per --metrics-every watermarks plus a final row)",
    )
    detect.add_argument(
        "--metrics-every", type=int, default=1,
        help="watermarks between --metrics-out rows",
    )
    detect.add_argument(
        "--trace-out", default=None,
        help="write per-stage operator spans as JSON lines",
    )
    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    """``generate``: synthesize a workload and write it as CSV."""
    generate, config_cls = GENERATORS[args.kind]
    kwargs = dict(n_objects=args.objects, horizon=args.horizon, seed=args.seed)
    if args.group_fraction is not None:
        kwargs["group_fraction"] = args.group_fraction
    dataset = generate(config_cls(**kwargs))
    dataset.save_csv(args.out)
    stats = dataset.statistics()
    print(
        f"wrote {args.out}: {stats.trajectories} trajectories, "
        f"{stats.locations} locations, {stats.snapshots} snapshots"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: print Table-2 style statistics for a CSV workload."""
    dataset = TrajectoryDataset.load_csv(args.input)
    print(format_table([dataset.statistics().as_row()], title="Dataset"))
    print(f"\nmax L1 extent: {dataset.max_distance():.1f}")
    for pct in (0.02, 0.06, 0.12):
        print(f"  epsilon at {pct}% -> {dataset.resolve_percentage(pct):.2f}")
    return 0


def cmd_plugins(args: argparse.Namespace) -> int:
    """``plugins``: list every registered strategy with capabilities."""
    registry = default_registry()
    kinds = (args.kind,) if args.kind else registry.kinds()
    rows = []
    for kind in kinds:
        for spec in registry.specs(kind):
            missing = spec.missing_requirement()
            rows.append(
                {
                    "kind": spec.kind,
                    "name": spec.name,
                    "source": spec.source,
                    "available": "yes" if missing is None else f"no ({missing})",
                    "capabilities": spec.capabilities.summary_markers(),
                    "summary": spec.summary,
                }
            )
    print(format_table(rows, title="Registered plugins"))
    return 0


def _selection_error(args: argparse.Namespace) -> str | None:
    """One-line reason the requested plugin selection cannot run, if any.

    Unknown names are already rejected by argparse ``choices``; this
    covers the capability layer — invalid cross-axis combinations
    (declarative registry check) and unmet runtime requirements, each
    phrased in terms of the CLI flag that selects the offending plugin.
    """
    registry = default_registry()
    try:
        selection = registry.validate_selection(
            enumerator=args.enumerator,
            backend=args.backend,
            clustering_kernel=args.kernel,
            enumeration_kernel=args.enum_kernel,
            shed_policy=args.shed_policy,
            pattern_family=args.pattern_family,
        )
    except PluginError as error:
        return str(error)
    for kind, spec in selection.items():
        # The module-level numpy_available reference keeps the check
        # monkeypatchable per the established CLI test seam.
        if spec.capabilities.requires_numpy and not numpy_available():
            flag = AXIS_FLAGS[kind]
            message = (
                f"{flag} {spec.name} requires NumPy, which is not installed"
            )
            alternatives = [
                name
                for name in registry.available_names(kind)
                if name != spec.name
            ]
            if alternatives:
                message += f"; use {flag} {alternatives[0]}"
            return message
    return None


def cmd_detect(args: argparse.Namespace) -> int:
    """``detect``: run ICPE over a CSV workload and print patterns."""
    reason = _selection_error(args)
    if reason is not None:
        print(f"error: {reason}", file=sys.stderr)
        return 2
    if args.metrics_every < 1:
        print("error: --metrics-every must be >= 1", file=sys.stderr)
        return 2
    dataset = TrajectoryDataset.load_csv(args.input)
    restore = None
    skip = 0
    if args.restore_from is not None:
        try:
            restore = Checkpoint.load(args.restore_from)
        except (OSError, CheckpointError) as error:
            print(f"error: --restore-from: {error}", file=sys.stderr)
            return 2
        skip = restore.records_ingested
        # Detection parameters must match the checkpointed run exactly;
        # only the execution surface may change, so the config is the
        # checkpoint's with the backend flags applied on top.
        config = replace(
            restore.config,
            backend=args.backend,
            parallel_workers=args.workers,
            checkpoint_every_records=args.checkpoint_every_records,
            checkpoint_every_seconds=args.checkpoint_every_seconds,
        )
    else:
        config = ICPEConfig(
            epsilon=dataset.resolve_percentage(args.epsilon_pct),
            cell_width=dataset.resolve_percentage(args.grid_pct),
            min_pts=args.min_pts,
            constraints=PatternConstraints(
                m=args.m, k=args.k, l=args.l, g=args.g
            ),
            enumerator=args.enumerator,
            max_delay=args.max_delay,
            backend=args.backend,
            parallel_workers=args.workers,
            clustering_kernel=args.kernel,
            enumeration_kernel=args.enum_kernel,
            shed_policy=args.shed_policy,
            shed_rate=args.shed_rate,
            target_p99_ms=args.target_p99_ms,
            checkpoint_every_records=args.checkpoint_every_records,
            checkpoint_every_seconds=args.checkpoint_every_seconds,
            pattern_family=args.pattern_family,
            evolving_theta=args.evolving_theta,
            prediction_min_probability=args.prediction_min_probability,
        )
    observability = None
    if args.metrics_out or args.trace_out:
        observability = ObservabilityOptions(
            metrics_out=args.metrics_out,
            metrics_every=args.metrics_every,
            trace_out=args.trace_out,
        )
    # Context-managed so the backend's worker pool is released even if a
    # sink or the pipeline raises mid-run.
    with Session(
        config,
        restore=restore,
        observability=observability,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_keep_last=args.checkpoint_keep_last,
    ) as session:
        if args.output == "json":
            session.subscribe(JsonlSink(sys.stdout))
        if skip:
            print(
                f"restored from {args.restore_from}: skipping {skip} "
                "already-ingested records",
                file=sys.stderr,
            )
        if args.batch_size > 0 and not skip:
            # Columnar ingestion: the CSV workload streams through the
            # session in RecordBatch chunks of the configured size.
            for batch in dataset.batches(args.batch_size):
                session.feed_batch(batch)
        else:
            for record in dataset.records[skip:]:
                session.feed(record)
        session.finish()
        for path in session.auto_checkpoints:
            print(f"checkpoint saved: {path}", file=sys.stderr)
        if args.metrics_out:
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
        if args.trace_out:
            print(f"trace written to {args.trace_out}", file=sys.stderr)

    store = session.store()
    result = session.result()
    if args.output == "json":
        print(
            json.dumps(
                {
                    "kind": "summary",
                    "patterns": len(result.patterns),
                    "maximal_patterns": len(store.maximal()),
                    "snapshots": result.snapshots,
                    "avg_latency_ms": result.avg_latency_ms,
                    "throughput_tps": result.throughput_tps,
                    "backend": result.backend,
                    "clustering_kernel": result.clustering_kernel,
                    "enumeration_kernel": result.enumeration_kernel,
                    "enumerator": result.enumerator,
                    "shedding": result.shedding,
                }
            )
        )
    else:
        print(f"backend: {result.backend}")
        print(f"kernel: {result.clustering_kernel}")
        print(f"enumeration kernel: {result.enumeration_kernel}")
        if config.pattern_family != "strict":
            counts = result.events
            print(
                f"pattern family: {config.pattern_family} "
                f"(evolved {counts.get('evolved', 0)}, "
                f"forming {counts.get('forming', 0)})"
            )
        patterns = store.maximal() if args.maximal_only else list(store)
        patterns.sort(key=lambda p: (-p.size, p.objects))
        label = "maximal patterns" if args.maximal_only else "patterns"
        print(f"{len(patterns)} {label} (showing up to {args.limit}):")
        for stored in patterns[: args.limit]:
            first, last = stored.span
            ids = ", ".join(f"o{oid}" for oid in stored.objects)
            print(f"  {{{ids}}}  witnessed over [{first}, {last}]")
        meter = session.meter
        print(
            f"\n{meter.snapshots} snapshots; avg latency "
            f"{meter.average_latency_ms():.2f} ms; throughput "
            f"{meter.throughput_tps():.0f} snapshots/s"
        )
        shed = result.shedding
        if shed.get("policy", "none") != "none":
            print(
                f"shedding ({shed['policy']}): "
                f"{shed['records_shed']}/{shed['records_offered']} records "
                f"dropped; final rate {shed['shed_rate']:.2f}; "
                f"{shed['records_protected']} protected"
            )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(
                store.to_json(maximal_only=args.maximal_only, indent=2)
            )
        if args.output != "json":
            print(f"wrote JSON to {args.json_out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "stats": cmd_stats,
        "plugins": cmd_plugins,
        "detect": cmd_detect,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
