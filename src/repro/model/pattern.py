"""Detected co-movement patterns.

A result of the enumeration phase: the object set O, its time sequence T,
and the subtask (anchor trajectory) that reported it.  Patterns compare by
value so result sets can be deduplicated and compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.constraints import PatternConstraints
from repro.model.timeseq import TimeSequence


@dataclass(frozen=True, slots=True)
class CoMovementPattern:
    """A concrete CP(M, K, L, G) instance: objects plus time sequence.

    Attributes:
        objects: the trajectory ids travelling together, sorted.
        times: the time sequence T witnessing the pattern.
    """

    objects: tuple[int, ...]
    times: TimeSequence

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.objects)))
        if ordered != self.objects:
            object.__setattr__(self, "objects", ordered)

    @classmethod
    def of(cls, objects, times) -> "CoMovementPattern":
        """Build from any iterables (ids and times)."""
        if not isinstance(times, TimeSequence):
            times = TimeSequence(times)
        return cls(tuple(sorted(set(objects))), times)

    @property
    def size(self) -> int:
        """Number of objects in the pattern."""
        return len(self.objects)

    @property
    def duration(self) -> int:
        """Number of times in the witness sequence."""
        return len(self.times)

    def satisfies(self, constraints: PatternConstraints) -> bool:
        """Full (M, K, L, G) check — closeness is the producer's burden."""
        return constraints.size_valid(self.size) and constraints.sequence_valid(
            self.times
        )

    def key(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Hashable identity used for cross-algorithm result comparison."""
        return (self.objects, self.times.times)

    def __str__(self) -> str:
        ids = ", ".join(f"o{oid}" for oid in self.objects)
        return f"{{{ids}}} @ T={list(self.times)}"
