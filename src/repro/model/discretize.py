"""Timestamp discretization (Section 3.1).

Real clock times are mapped onto indices of fixed-duration intervals:
with interval 5 s and start 13:00:20, the clock times (13:00:21, 13:00:24,
13:00:28, 13:00:32, 13:00:42) discretize to (0, 0, 1, 2, 4).  The paper
warns that the duration must match the sampling rate (1 s or 5 s in its
experiments) to avoid duplicate indices and misleading gaps; the
``collisions`` counter makes that observable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.records import GPSRecord, StreamRecord, Trajectory


@dataclass(slots=True)
class TimeDiscretizer:
    """Maps wall-clock seconds to discretized interval indices.

    Attributes:
        interval: interval duration in seconds (1 or 5 in the paper).
        origin: wall-clock time mapped to index 0.
    """

    interval: float
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")

    def index_of(self, clock_time: float) -> int:
        """Discretized index of a wall-clock time (floor semantics)."""
        return int((clock_time - self.origin) // self.interval)

    def discretize_trajectory(self, trajectory: Trajectory) -> list[StreamRecord]:
        """Convert a materialised trajectory into stream records.

        When several records of the same trajectory collide in one interval,
        the last one wins (most recent fix), mirroring snapshot overwrite
        semantics.  Each emitted record carries ``last_time`` of the previous
        *kept* record, as required by the synchronisation operator.
        """
        kept: dict[int, GPSRecord] = {}
        for record in trajectory:
            kept[self.index_of(record.time)] = record
        out: list[StreamRecord] = []
        last_time: int | None = None
        for index in sorted(kept):
            record = kept[index]
            out.append(
                StreamRecord(
                    oid=trajectory.oid,
                    x=record.location.x,
                    y=record.location.y,
                    time=index,
                    last_time=last_time,
                )
            )
            last_time = index
        return out

    def collisions(self, trajectory: Trajectory) -> int:
        """Number of records dropped because they share an interval."""
        indices = [self.index_of(r.time) for r in trajectory]
        return len(indices) - len(set(indices))
