"""GPS records, locations and trajectories (Section 3.1 of the paper).

A GPS record is a pair ``r = (l, t)`` with location ``l = (x, y)`` and time
``t``.  A trajectory is a time-ordered sequence of records; a *streaming*
trajectory is unbounded, so the stream-facing type is the single
``StreamRecord`` carrying its trajectory id and the "last time" field used by
the time-synchronisation operator (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Location:
    """A planar position ``(x, y)``."""

    x: float
    y: float

    def as_tuple(self) -> tuple[float, float]:
        """The location as an ``(x, y)`` tuple."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class GPSRecord:
    """A raw GPS fix ``(location, wall-clock time)``.

    ``time`` is a real (undiscretized) clock time in seconds.
    """

    location: Location
    time: float

    @classmethod
    def at(cls, x: float, y: float, time: float) -> "GPSRecord":
        """Build a record from coordinates and a clock time."""
        return cls(Location(x, y), time)


@dataclass(frozen=True, slots=True)
class StreamRecord:
    """One element of the trajectory stream after discretization.

    Attributes:
        oid: trajectory (object) identifier.
        x, y: position at the discretized time.
        time: discretized time index (Definition 1).
        last_time: the discretized time of this trajectory's *previous*
            report, or ``None`` when this is the first report.  Section 4 of
            the paper attaches this field to restore per-trajectory time
            order under out-of-order delivery.
    """

    oid: int
    x: float
    y: float
    time: int
    last_time: int | None = None

    @property
    def location(self) -> Location:
        """The position as a :class:`Location`."""
        return Location(self.x, self.y)


@dataclass(slots=True)
class Trajectory:
    """A bounded, materialised trajectory: ordered GPS records of one object.

    Streaming processing never materialises these (the stream is unbounded);
    they exist for dataset generation, statistics and offline reference
    computations in tests.
    """

    oid: int
    records: list[GPSRecord] = field(default_factory=list)

    def append(self, record: GPSRecord) -> None:
        """Append a record, enforcing non-decreasing time."""
        if self.records and record.time < self.records[-1].time:
            raise ValueError(
                f"trajectory {self.oid}: record at t={record.time} arrives "
                f"after t={self.records[-1].time}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[GPSRecord]:
        return iter(self.records)

    @property
    def start_time(self) -> float:
        """Time of the first record."""
        if not self.records:
            raise ValueError(f"trajectory {self.oid} is empty")
        return self.records[0].time

    @property
    def end_time(self) -> float:
        """Time of the last record."""
        if not self.records:
            raise ValueError(f"trajectory {self.oid} is empty")
        return self.records[-1].time

    def locations(self) -> list[Location]:
        """The positions of every record, in order."""
        return [r.location for r in self.records]

    @classmethod
    def from_points(
        cls, oid: int, points: Iterable[tuple[float, float, float]]
    ) -> "Trajectory":
        """Build from ``(x, y, time)`` triples (convenience for tests)."""
        trajectory = cls(oid)
        for x, y, t in points:
            trajectory.append(GPSRecord.at(x, y, t))
        return trajectory
