"""Snapshots and cluster snapshots (Definition 6 and Fig. 3).

A snapshot ``S_t`` holds the location of every trajectory that reported at
discretized time ``t``.  A cluster snapshot is the output of the indexed
clustering phase: the density-based clusters of ``S_t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.model.records import Location, StreamRecord


@dataclass(slots=True)
class Snapshot:
    """All object locations at one discretized time (Definition 6)."""

    time: int
    locations: dict[int, Location] = field(default_factory=dict)

    def add(self, oid: int, location: Location) -> None:
        """Register ``oid`` at ``location``; re-reports overwrite."""
        self.locations[oid] = location

    def add_record(self, record: StreamRecord) -> None:
        """Register a stream record (must match the snapshot time)."""
        if record.time != self.time:
            raise ValueError(
                f"record at t={record.time} added to snapshot t={self.time}"
            )
        self.locations[record.oid] = record.location

    def __len__(self) -> int:
        return len(self.locations)

    def __contains__(self, oid: int) -> bool:
        return oid in self.locations

    def __iter__(self) -> Iterator[tuple[int, Location]]:
        return iter(self.locations.items())

    def oids(self) -> list[int]:
        """The ids present in this snapshot."""
        return list(self.locations)

    def points(self) -> list[tuple[int, float, float]]:
        """``(oid, x, y)`` triples, the input shape of the range join."""
        return [(oid, loc.x, loc.y) for oid, loc in self.locations.items()]

    @classmethod
    def from_points(
        cls, time: int, points: Iterable[tuple[int, float, float]]
    ) -> "Snapshot":
        """Build from ``(oid, x, y)`` triples."""
        snapshot = cls(time)
        for oid, x, y in points:
            snapshot.add(oid, Location(x, y))
        return snapshot


@dataclass(slots=True)
class ClusterSnapshot:
    """Density-based clusters of one snapshot (the clustering phase output).

    ``clusters`` maps a cluster id to the sorted tuple of member trajectory
    ids.  Noise objects (non-core, not density reachable) appear in no
    cluster, matching DBSCAN semantics.
    """

    time: int
    clusters: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @classmethod
    def from_groups(
        cls, time: int, groups: Iterable[Iterable[int]]
    ) -> "ClusterSnapshot":
        """Build from member groups, assigning dense cluster ids 0, 1, ..."""
        snapshot = cls(time)
        for cluster_id, members in enumerate(groups):
            ordered = tuple(sorted(members))
            if ordered:
                snapshot.clusters[cluster_id] = ordered
        return snapshot

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        return iter(self.clusters.items())

    def membership(self) -> Mapping[int, int]:
        """Map each clustered oid to its cluster id."""
        member_of: dict[int, int] = {}
        for cluster_id, members in self.clusters.items():
            for oid in members:
                member_of[oid] = cluster_id
        return member_of

    def groups(self) -> list[tuple[int, ...]]:
        """The clusters as a list of member tuples (ids discarded)."""
        return list(self.clusters.values())

    def average_cluster_size(self) -> float:
        """Mean cluster cardinality; 0.0 when there are no clusters.

        Figures 12-13 of the paper plot this alongside latency.
        """
        if not self.clusters:
            return 0.0
        return sum(len(members) for members in self.clusters.values()) / len(
            self.clusters
        )
