"""Discretized time sequences (Definitions 1-3) and their algebra.

This module is the semantic core of the pattern definition: segments,
L-consecutiveness, G-connectedness, the eta verification window (Lemma 4),
and the decomposition of an arbitrary co-clustering time set into its
*maximal valid* subsequences (Definition 15), which every enumeration
algorithm and the test oracle share.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class TimeSequence:
    """A strictly increasing sequence of discretized times.

    Thin immutable wrapper around a tuple of ints with the paper's predicates
    attached.  ``TimeSequence`` compares and hashes by value so pattern
    results can be deduplicated with sets.
    """

    __slots__ = ("_times",)

    def __init__(self, times: Iterable[int]):
        times = tuple(int(t) for t in times)
        for earlier, later in zip(times, times[1:]):
            if later <= earlier:
                raise ValueError(f"times must be strictly increasing: {times}")
        self._times = times

    @property
    def times(self) -> tuple[int, ...]:
        """The underlying tuple of times."""
        return self._times

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self):
        return iter(self._times)

    def __getitem__(self, index: int) -> int:
        return self._times[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TimeSequence):
            return self._times == other._times
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._times)

    def __repr__(self) -> str:
        return f"TimeSequence{self._times}"

    @property
    def last(self) -> int:
        """``max(T)``: the last (largest) time in the sequence."""
        if not self._times:
            raise ValueError("empty time sequence has no last element")
        return self._times[-1]

    def segments(self) -> list[tuple[int, int]]:
        """Maximal consecutive runs as ``(start, end)`` inclusive pairs."""
        return segments_of(self._times)

    def last_segment_length(self) -> int:
        """Length of the trailing consecutive run (``Tl`` in Lemmas 5-6)."""
        if not self._times:
            return 0
        start, end = self.segments()[-1]
        return end - start + 1

    def is_consecutive(self) -> bool:
        """True when the whole sequence is one segment."""
        return len(self.segments()) <= 1

    def is_l_consecutive(self, l_min: int) -> bool:
        """Definition 2: every segment has length at least ``l_min``."""
        return is_l_consecutive(self._times, l_min)

    def is_g_connected(self, gap: int) -> bool:
        """Definition 3: neighbouring times differ by at most ``gap``."""
        return is_g_connected(self._times, gap)

    def is_valid(self, duration: int, l_min: int, gap: int) -> bool:
        """The (K, L, G) conjunction used by Definition 4 (iii)-(v)."""
        return (
            len(self._times) >= duration
            and self.is_l_consecutive(l_min)
            and self.is_g_connected(gap)
        )

    def extended(self, time: int) -> "TimeSequence":
        """New sequence with ``time`` appended (must exceed the last time)."""
        return TimeSequence(self._times + (time,))


def segments_of(times: Sequence[int]) -> list[tuple[int, int]]:
    """Split a strictly increasing time sequence into maximal segments.

    Returns ``(start, end)`` inclusive pairs; e.g. ``(1, 2, 4, 5, 6)`` gives
    ``[(1, 2), (4, 6)]``.
    """
    if not times:
        return []
    runs: list[tuple[int, int]] = []
    run_start = prev = times[0]
    for t in times[1:]:
        if t == prev + 1:
            prev = t
            continue
        runs.append((run_start, prev))
        run_start = prev = t
    runs.append((run_start, prev))
    return runs


def is_l_consecutive(times: Sequence[int], l_min: int) -> bool:
    """Definition 2: every maximal segment has length >= ``l_min``."""
    if l_min < 1:
        raise ValueError(f"L must be >= 1, got {l_min}")
    return all(end - start + 1 >= l_min for start, end in segments_of(times))


def is_g_connected(times: Sequence[int], gap: int) -> bool:
    """Definition 3: ``T[i+1] - T[i] <= gap`` for all neighbours."""
    if gap < 1:
        raise ValueError(f"G must be >= 1, got {gap}")
    return all(later - earlier <= gap for earlier, later in zip(times, times[1:]))


def eta_window(duration: int, l_min: int, gap: int) -> int:
    """Lemma 4's verification window length.

    ``eta = (ceil(K / L) - 1) * (G - 1) + K + L - 1`` guarantees that any
    valid pattern contains a valid subsequence spanning at most ``eta``
    consecutive discretized times, so enumerating per-time windows of length
    ``eta`` misses no pattern.
    """
    if duration < 1 or l_min < 1 or gap < 1:
        raise ValueError(
            f"constraints must be positive: K={duration}, L={l_min}, G={gap}"
        )
    ceil_k_over_l = -(-duration // l_min)
    return (ceil_k_over_l - 1) * (gap - 1) + duration + l_min - 1


def maximal_valid_sequences(
    times: Sequence[int], duration: int, l_min: int, gap: int
) -> list[TimeSequence]:
    """Decompose co-clustering times into maximal (K, L, G)-valid sequences.

    Given the full set of times at which a candidate group co-clusters, a
    valid time sequence may only use whole maximal segments of length at
    least L (a shorter segment can never satisfy L-consecutiveness, and a
    partial segment is never preferable to the whole one), chained while the
    inter-segment gap is at most G.  Each chain with at least K total times
    is a *maximal pattern time sequence* in the sense of Definition 15; the
    decomposition is unique.

    Returns the (possibly empty) list of maximal valid sequences in
    chronological order.
    """
    long_segments = [
        (start, end)
        for start, end in segments_of(times)
        if end - start + 1 >= l_min
    ]
    results: list[TimeSequence] = []
    chain: list[tuple[int, int]] = []
    for segment in long_segments:
        if chain and segment[0] - chain[-1][1] > gap:
            _flush_chain(chain, duration, results)
            chain = []
        chain.append(segment)
    _flush_chain(chain, duration, results)
    return results


def _flush_chain(
    chain: list[tuple[int, int]], duration: int, results: list[TimeSequence]
) -> None:
    """Emit a chained segment group if it meets the duration constraint."""
    if not chain:
        return
    total = sum(end - start + 1 for start, end in chain)
    if total >= duration:
        flat: list[int] = []
        for start, end in chain:
            flat.extend(range(start, end + 1))
        results.append(TimeSequence(flat))
