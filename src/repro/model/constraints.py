"""The CP(M, K, L, G) constraint bundle (Definition 4).

A co-movement pattern is a set ``O`` of trajectories with a time sequence
``T`` satisfying: closeness (same density cluster at every time of ``T``),
significance ``|O| >= M``, duration ``|T| >= K``, L-consecutiveness, and
G-connectedness.  ``PatternConstraints`` carries the four integers and the
derived quantities used throughout the enumeration phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.timeseq import TimeSequence, eta_window


@dataclass(frozen=True, slots=True)
class PatternConstraints:
    """The four constraints of the unified co-movement pattern definition.

    Attributes:
        m: significance — minimum number of objects travelling together.
        k: duration — minimum total number of co-clustered times.
        l: consecutiveness — minimum length of each consecutive segment.
        g: connection — maximum gap between neighbouring times.
    """

    m: int
    k: int
    l: int
    g: int

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ValueError(f"M must be >= 2 (a pattern needs company): {self.m}")
        if self.l < 1:
            raise ValueError(f"L must be >= 1: {self.l}")
        if self.g < 1:
            raise ValueError(f"G must be >= 1: {self.g}")
        if self.k < self.l:
            raise ValueError(
                f"K must be >= L (a K-long sequence needs an L-long segment): "
                f"K={self.k}, L={self.l}"
            )

    @property
    def eta(self) -> int:
        """Lemma 4's verification window length."""
        return eta_window(self.k, self.l, self.g)

    def sequence_valid(self, sequence: TimeSequence) -> bool:
        """Check the (K, L, G) temporal constraints for a candidate T."""
        return sequence.is_valid(self.k, self.l, self.g)

    def size_valid(self, group_size: int) -> bool:
        """Check the significance constraint for a candidate object set."""
        return group_size >= self.m


# Named presets for the classic pattern variants the paper unifies
# (Section 1/2: flock, convoy, group, swarm, platoon).  Each is a function of
# the variant's own parameters returning the equivalent CP(M, K, L, G).

def convoy(m: int, k: int) -> PatternConstraints:
    """Convoy [17]: density clusters, strictly consecutive lifetime.

    Strict consecutiveness means one segment of length K: L = K and G = 1.
    """
    return PatternConstraints(m=m, k=k, l=k, g=1)


def flock(m: int, k: int) -> PatternConstraints:
    """Flock [13] has the same temporal shape as convoy.

    The flock/convoy difference is the clustering (disc-based vs density);
    under the unified definition with a pluggable clusterer the temporal
    constraints coincide.
    """
    return convoy(m, k)


def swarm(m: int, k: int, horizon: int) -> PatternConstraints:
    """Swarm [20]: K total times, arbitrarily relaxed consecutiveness.

    The unified definition bounds gaps by G; a swarm over a stream prefix of
    length ``horizon`` is recovered with L = 1 and G = horizon.
    """
    return PatternConstraints(m=m, k=k, l=1, g=max(1, horizon))


def platoon(m: int, k: int, l: int) -> PatternConstraints:
    """Platoon [19]: segments of length >= L with (here bounded) gaps."""
    return PatternConstraints(m=m, k=k, l=l, g=k)


def group_pattern(m: int, k: int, l: int, g: int) -> PatternConstraints:
    """Fully general CP(M, K, L, G) (alias with keyword-style clarity)."""
    return PatternConstraints(m=m, k=k, l=l, g=g)
