"""Columnar record batches: the batch-ingestion data plane.

The streaming surface of PRs 1-4 moved GPS fixes one
:class:`~repro.model.records.StreamRecord` at a time — every record a
boxed dataclass walked through ``Session.feed()``, the synchronisation
operator and the keyed exchanges, so Python object churn dominated
end-to-end ingest cost once the clustering and enumeration kernels were
vectorized.  This module holds the columnar types that replace that
record-at-a-time plane:

* :class:`RecordBatch` — a batch of ``(oid, x, y, time, last_time)``
  *columns* (NumPy arrays when the optional dependency is available,
  plain lists otherwise) with zero-copy slicing on the array backing,
  ``from_records`` / ``to_records`` converters, CSV-row and dataset
  constructors, and ``pack()`` chunking for auto-batching iterables.
* :class:`SnapshotBatch` — one complete snapshot in columnar form
  (``(oid, x, y)`` at a single time), the envelope the synchronisation
  operator emits on the batch path and the keyed exchanges route whole
  (one envelope per destination partition per batch).  It quacks like
  :class:`~repro.model.snapshot.Snapshot` where the pipeline needs it
  (``time``, ``len``, ``points()``) and hands its columns directly to
  the vectorized clustering kernel, so the hot path never materialises
  per-point objects.

NumPy stays optional: both types degrade to list-backed columns with
identical semantics, and every consumer treats the backing as an
implementation detail.

Both types also carry a flat *shared-memory codec* (``shm_nbytes`` /
``to_shm`` / ``from_shm``): the columns of an array-backed batch are
written contiguously into any writable buffer — a
``multiprocessing.shared_memory`` segment in production, a plain
``bytearray`` in tests — and reconstructed on the reader side as
zero-copy NumPy views over that buffer.  This is the transport the
``process`` execution backend uses to ship keyed-exchange envelopes
between worker processes without pickling the column data; list-backed
batches have no flat layout and take the pickle fallback instead.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.model.records import Location, StreamRecord
from repro.model.snapshot import Snapshot

try:  # pragma: no cover - exercised only on numpy-less hosts
    import numpy as _np
except ModuleNotFoundError:  # pragma: no cover
    _np = None

#: Sentinel encoding ``last_time is None`` in the int64 array backing.
#: int64-min cannot collide with any discretized time a stream produces.
NO_LAST_TIME = -(2**63)


def _batch_numpy_available() -> bool:
    """Whether batches use the NumPy array backing in this process."""
    return _np is not None


def _require_numpy_backing(batch, operation: str) -> None:
    """Shared-memory codec precondition: flat array columns.

    List-backed batches have no contiguous layout to copy; callers route
    them through the pickle fallback instead (the process backend does
    exactly that in its keyed exchange).
    """
    if _np is None or batch.backing != "numpy":
        raise ValueError(
            f"{operation} requires the NumPy array backing; this batch is "
            f"list-backed — use pickle for list-backed batches"
        )


def _write_shm_columns(buffer, offset: int, columns) -> int:
    """Copy int64/float64 columns contiguously into a writable buffer.

    Returns the offset one past the last byte written.  All batch
    columns are 8-byte dtypes, so keeping ``offset`` 8-aligned keeps
    every column naturally aligned.
    """
    if offset % 8:
        raise ValueError(f"shm offset must be 8-byte aligned, got {offset}")
    for column in columns:
        view = _np.frombuffer(
            buffer, dtype=column.dtype, count=len(column), offset=offset
        )
        view[:] = column
        offset += column.nbytes
    return offset


def _read_shm_columns(buffer, offset: int, dtypes, count: int):
    """Zero-copy read of ``count``-row columns written by the writer above.

    The views alias the buffer (nothing is copied) and are marked
    read-only — batches are immutable by contract, and a reader must
    never scribble on a shared segment another process owns.
    """
    views = []
    for dtype in dtypes:
        view = _np.frombuffer(buffer, dtype=dtype, count=count, offset=offset)
        view.flags.writeable = False
        views.append(view)
        offset += view.nbytes
    return views


class RecordBatch:
    """A columnar batch of stream records: five parallel columns.

    Columns are ``oids`` (int), ``xs`` / ``ys`` (float), ``times`` (int)
    and ``last_times`` (int, with :data:`NO_LAST_TIME` standing in for
    ``None``).  With NumPy available the columns are contiguous
    ``int64`` / ``float64`` arrays and slicing returns zero-copy views;
    without it they are plain lists and slicing copies.  Batches are
    treated as immutable by every consumer.

    Build one with :meth:`from_records`, :meth:`from_columns`,
    :meth:`from_csv_rows` or the ``repro.data`` loaders
    (:meth:`~repro.data.dataset.TrajectoryDataset.to_batch`).
    """

    __slots__ = ("oids", "xs", "ys", "times", "last_times")

    def __init__(self, oids, xs, ys, times, last_times):
        """Wrap five equal-length columns (validated; not copied)."""
        n = len(oids)
        if not (len(xs) == len(ys) == len(times) == len(last_times) == n):
            raise ValueError(
                "RecordBatch columns must have equal lengths, got "
                f"{(len(oids), len(xs), len(ys), len(times), len(last_times))}"
            )
        self.oids = oids
        self.xs = xs
        self.ys = ys
        self.times = times
        self.last_times = last_times

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_columns(
        cls,
        oids: Sequence[int],
        xs: Sequence[float],
        ys: Sequence[float],
        times: Sequence[int],
        last_times: Sequence[int | None] | None = None,
    ) -> "RecordBatch":
        """Build from column sequences (``last_times`` entries may be
        ``None``; a missing column means "no record has a predecessor")."""
        n = len(oids)
        if last_times is None:
            lasts: list[int] = [NO_LAST_TIME] * n
        else:
            lasts = [
                NO_LAST_TIME if value is None else int(value)
                for value in last_times
            ]
        if _np is not None:
            return cls(
                _np.asarray(oids, dtype=_np.int64),
                _np.asarray(xs, dtype=_np.float64),
                _np.asarray(ys, dtype=_np.float64),
                _np.asarray(times, dtype=_np.int64),
                _np.asarray(lasts, dtype=_np.int64),
            )
        return cls(
            [int(v) for v in oids],
            [float(v) for v in xs],
            [float(v) for v in ys],
            [int(v) for v in times],
            lasts,
        )

    @classmethod
    def from_records(
        cls, records: Iterable[StreamRecord]
    ) -> "RecordBatch":
        """Pack an iterable of :class:`StreamRecord` into one batch."""
        oids: list[int] = []
        xs: list[float] = []
        ys: list[float] = []
        times: list[int] = []
        lasts: list[int] = []
        for r in records:
            oids.append(r.oid)
            xs.append(r.x)
            ys.append(r.y)
            times.append(r.time)
            lasts.append(NO_LAST_TIME if r.last_time is None else r.last_time)
        if _np is not None:
            return cls(
                _np.array(oids, dtype=_np.int64),
                _np.array(xs, dtype=_np.float64),
                _np.array(ys, dtype=_np.float64),
                _np.array(times, dtype=_np.int64),
                _np.array(lasts, dtype=_np.int64),
            )
        return cls(oids, xs, ys, times, lasts)

    @classmethod
    def single(cls, record: StreamRecord) -> "RecordBatch":
        """A one-row, list-backed batch (the per-point compatibility path).

        Per-record array construction would dominate a one-row batch, so
        this constructor always uses the list backing — the batch
        consumers are backing-agnostic, and ``Session.feed`` stays cheap.
        """
        return cls(
            [record.oid],
            [record.x],
            [record.y],
            [record.time],
            [NO_LAST_TIME if record.last_time is None else record.last_time],
        )

    @classmethod
    def from_csv_rows(
        cls, rows: Iterable[Sequence[str]]
    ) -> "RecordBatch":
        """Build from CSV value rows ``(oid, x, y, time, last_time)``.

        The shape :meth:`~repro.data.dataset.TrajectoryDataset.save_csv`
        writes: ``last_time`` is the empty string (or missing) for a
        trajectory's first report.
        """
        oids: list[int] = []
        xs: list[float] = []
        ys: list[float] = []
        times: list[int] = []
        lasts: list[int | None] = []
        for row in rows:
            oids.append(int(row[0]))
            xs.append(float(row[1]))
            ys.append(float(row[2]))
            times.append(int(row[3]))
            raw_last = row[4] if len(row) > 4 else ""
            lasts.append(int(raw_last) if raw_last not in ("", None) else None)
        return cls.from_columns(oids, xs, ys, times, lasts)

    @classmethod
    def pack(
        cls, records: Iterable[StreamRecord], batch_size: int
    ) -> Iterator["RecordBatch"]:
        """Chunk an iterable of records into batches of ``batch_size``.

        The auto-batching primitive behind ``Session.feed_many``: the
        final batch holds the remainder and may be shorter.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        chunk: list[StreamRecord] = []
        for record in records:
            chunk.append(record)
            if len(chunk) >= batch_size:
                yield cls.from_records(chunk)
                chunk = []
        if chunk:
            yield cls.from_records(chunk)

    # -------------------------------------------------------------- converters

    def to_records(self) -> list[StreamRecord]:
        """Materialise the batch back into :class:`StreamRecord` objects."""
        return [self.record_at(i) for i in range(len(self))]

    def record_at(self, index: int) -> StreamRecord:
        """The record at one row index, boxed."""
        last = int(self.last_times[index])
        return StreamRecord(
            oid=int(self.oids[index]),
            x=float(self.xs[index]),
            y=float(self.ys[index]),
            time=int(self.times[index]),
            last_time=None if last == NO_LAST_TIME else last,
        )

    # ------------------------------------------------------------------ views

    def __len__(self) -> int:
        return len(self.oids)

    def __getitem__(self, index):
        """Row access: an ``int`` boxes one record, a ``slice`` returns a
        batch over column views (zero-copy on the array backing)."""
        if isinstance(index, slice):
            return RecordBatch(
                self.oids[index],
                self.xs[index],
                self.ys[index],
                self.times[index],
                self.last_times[index],
            )
        return self.record_at(int(index))

    def __iter__(self) -> Iterator[StreamRecord]:
        """Iterate boxed records (a convenience, not the hot path)."""
        for i in range(len(self)):
            yield self.record_at(i)

    def __repr__(self) -> str:
        return (
            f"RecordBatch(n={len(self)}, backing={self.backing!r})"
        )

    @property
    def backing(self) -> str:
        """``"numpy"`` for array columns, ``"python"`` for list columns."""
        if _np is not None and isinstance(self.oids, _np.ndarray):
            return "numpy"
        return "python"

    def min_time(self) -> int:
        """Smallest record time in the batch (batch must be non-empty)."""
        if not len(self):
            raise ValueError("min_time() of an empty batch")
        if self.backing == "numpy":
            return int(self.times.min())
        return min(self.times)

    def max_time(self) -> int:
        """Largest record time in the batch (batch must be non-empty)."""
        if not len(self):
            raise ValueError("max_time() of an empty batch")
        if self.backing == "numpy":
            return int(self.times.max())
        return max(self.times)

    def column_lists(
        self,
    ) -> tuple[list[int], list[float], list[float], list[int], list[int]]:
        """The five columns as plain Python lists (one bulk conversion).

        ``tolist()`` on the array backing converts wholesale in C — the
        batch-path synchronisation walk reads rows from these instead of
        paying per-element array indexing.
        """
        if self.backing == "numpy":
            return (
                self.oids.tolist(),
                self.xs.tolist(),
                self.ys.tolist(),
                self.times.tolist(),
                self.last_times.tolist(),
            )
        return (self.oids, self.xs, self.ys, self.times, self.last_times)

    # ------------------------------------------------------ shared-memory codec

    #: Column dtypes in shm layout order (five 8-byte columns per row).
    _SHM_DTYPES = ("int64", "float64", "float64", "int64", "int64")

    def shm_nbytes(self) -> int:
        """Bytes :meth:`to_shm` writes: five 8-byte columns per row."""
        _require_numpy_backing(self, "RecordBatch.shm_nbytes")
        return 8 * len(self._SHM_DTYPES) * len(self)

    def to_shm(self, buffer, offset: int = 0) -> dict:
        """Write the columns contiguously into a writable buffer.

        Returns the layout descriptor :meth:`from_shm` needs (row count
        and offset).  The buffer is anything exposing the writable
        buffer protocol — a ``multiprocessing.shared_memory`` segment's
        ``buf`` in production, a ``bytearray`` in tests — and must hold
        at least ``offset + shm_nbytes()`` bytes.
        """
        _require_numpy_backing(self, "RecordBatch.to_shm")
        _write_shm_columns(
            buffer,
            offset,
            (self.oids, self.xs, self.ys, self.times, self.last_times),
        )
        return {"kind": "record", "n": len(self), "offset": offset}

    @classmethod
    def from_shm(cls, buffer, meta: dict) -> "RecordBatch":
        """Rebuild a batch over a buffer written by :meth:`to_shm`.

        The columns are zero-copy read-only NumPy views aliasing the
        buffer — the reader must keep the underlying segment mapped for
        as long as the batch (or anything derived from its columns by
        reference) is alive.
        """
        if _np is None:  # pragma: no cover - guarded by the writer side
            raise ValueError("RecordBatch.from_shm requires NumPy")
        if meta.get("kind") != "record":
            raise ValueError(f"not a RecordBatch shm descriptor: {meta!r}")
        columns = _read_shm_columns(
            buffer,
            int(meta["offset"]),
            [_np.dtype(name) for name in cls._SHM_DTYPES],
            int(meta["n"]),
        )
        return cls(*columns)


def _dedup_last_wins(oids, xs, ys):
    """Collapse duplicate oids: first-occurrence order, last-wins values.

    Reproduces dict-update semantics of :class:`Snapshot.locations`
    (``d[oid] = loc`` keeps the original position, takes the new value),
    so the columnar snapshot is indistinguishable from the object one.
    """
    last_index: dict[int, int] = {}
    for i, oid in enumerate(oids):
        last_index[oid] = i
    if len(last_index) == len(oids):
        return oids, xs, ys
    keep = list(last_index.values())
    return (
        [oids[i] for i in keep],
        [xs[i] for i in keep],
        [ys[i] for i in keep],
    )


class SnapshotBatch:
    """One complete snapshot as ``(oid, x, y)`` columns at a fixed time.

    The columnar counterpart of :class:`~repro.model.snapshot.Snapshot`:
    the synchronisation operator emits these on the batch path, the
    keyed exchanges split them into one sub-batch per destination
    subtask, and the vectorized clustering kernel consumes the columns
    directly.  Oids are distinct (duplicates collapse last-wins at
    construction, matching ``Snapshot``'s dict semantics), so ``len``
    agrees with the object form.
    """

    __slots__ = ("time", "oids", "xs", "ys")

    def __init__(self, time: int, oids, xs, ys, *, _deduped: bool = False):
        """Wrap columns at ``time``; collapses duplicate oids unless the
        caller guarantees distinctness (internal ``_deduped`` fast path).
        """
        if not (len(oids) == len(xs) == len(ys)):
            raise ValueError(
                "SnapshotBatch columns must have equal lengths, got "
                f"{(len(oids), len(xs), len(ys))}"
            )
        if not _deduped:
            oids, xs, ys = _dedup_last_wins(
                list(oids), list(xs), list(ys)
            )
        self.time = int(time)
        if _np is not None and not isinstance(oids, _np.ndarray):
            oids = _np.asarray(oids, dtype=_np.int64)
            xs = _np.asarray(xs, dtype=_np.float64)
            ys = _np.asarray(ys, dtype=_np.float64)
        self.oids = oids
        self.xs = xs
        self.ys = ys

    @classmethod
    def from_rows(
        cls,
        time: int,
        oids: Sequence[int],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> "SnapshotBatch":
        """Build from row-ordered columns (duplicate oids collapse
        last-wins, preserving first-occurrence order)."""
        return cls(time, oids, xs, ys)

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot) -> "SnapshotBatch":
        """Columnar view of an object snapshot (oids already distinct)."""
        oids = list(snapshot.locations)
        xs = [snapshot.locations[oid].x for oid in oids]
        ys = [snapshot.locations[oid].y for oid in oids]
        return cls(snapshot.time, oids, xs, ys, _deduped=True)

    def __len__(self) -> int:
        return len(self.oids)

    def __repr__(self) -> str:
        return f"SnapshotBatch(time={self.time}, n={len(self)})"

    @property
    def backing(self) -> str:
        """``"numpy"`` for array columns, ``"python"`` for list columns."""
        if _np is not None and isinstance(self.oids, _np.ndarray):
            return "numpy"
        return "python"

    def rows(self) -> Iterator[tuple[int, float, float]]:
        """Iterate ``(oid, x, y)`` row tuples (the range-join element
        shape) — the generic unrolling path for row-oriented operators."""
        if self.backing == "numpy":
            return zip(self.oids.tolist(), self.xs.tolist(), self.ys.tolist())
        return zip(self.oids, self.xs, self.ys)

    def points(self) -> list[tuple[int, float, float]]:
        """``(oid, x, y)`` triples, exactly :meth:`Snapshot.points`."""
        return list(self.rows())

    def select(self, indices: Sequence[int]) -> "SnapshotBatch":
        """Sub-batch of the given row indices (keyed-exchange splitting).

        Row order follows ``indices``; oids stay distinct, so the dedup
        pass is skipped.
        """
        if self.backing == "numpy":
            idx = _np.asarray(indices, dtype=_np.int64)
            return SnapshotBatch(
                self.time,
                self.oids[idx],
                self.xs[idx],
                self.ys[idx],
                _deduped=True,
            )
        return SnapshotBatch(
            self.time,
            [self.oids[i] for i in indices],
            [self.xs[i] for i in indices],
            [self.ys[i] for i in indices],
            _deduped=True,
        )

    # ------------------------------------------------------ shared-memory codec

    #: Column dtypes in shm layout order (three 8-byte columns per row).
    _SHM_DTYPES = ("int64", "float64", "float64")

    def shm_nbytes(self) -> int:
        """Bytes :meth:`to_shm` writes: three 8-byte columns per row."""
        _require_numpy_backing(self, "SnapshotBatch.shm_nbytes")
        return 8 * len(self._SHM_DTYPES) * len(self)

    def to_shm(self, buffer, offset: int = 0) -> dict:
        """Write ``(oids, xs, ys)`` contiguously into a writable buffer.

        Returns the layout descriptor :meth:`from_shm` needs (snapshot
        time, row count, offset) — the small picklable token the process
        backend ships through its command pipe while the column data
        crosses via the shared segment.
        """
        _require_numpy_backing(self, "SnapshotBatch.to_shm")
        _write_shm_columns(buffer, offset, (self.oids, self.xs, self.ys))
        return {
            "kind": "snapshot",
            "time": self.time,
            "n": len(self),
            "offset": offset,
        }

    @classmethod
    def from_shm(cls, buffer, meta: dict) -> "SnapshotBatch":
        """Rebuild a snapshot batch over a buffer written by :meth:`to_shm`.

        Zero-copy: the columns are read-only NumPy views aliasing the
        buffer, so the reader must keep the segment mapped while the
        batch is alive.  Oids were distinct when the writer serialized
        the batch, so the dedup pass is skipped.
        """
        if _np is None:  # pragma: no cover - guarded by the writer side
            raise ValueError("SnapshotBatch.from_shm requires NumPy")
        if meta.get("kind") != "snapshot":
            raise ValueError(f"not a SnapshotBatch shm descriptor: {meta!r}")
        columns = _read_shm_columns(
            buffer,
            int(meta["offset"]),
            [_np.dtype(name) for name in cls._SHM_DTYPES],
            int(meta["n"]),
        )
        return cls(int(meta["time"]), *columns, _deduped=True)

    def to_snapshot(self) -> Snapshot:
        """Materialise the object form (tests, object-path interop)."""
        snapshot = Snapshot(self.time)
        for oid, x, y in self.rows():
            snapshot.add(oid, Location(x, y))
        return snapshot
