"""Core data model of the ICPE reproduction.

Mirrors Section 3 of the paper: GPS records and (streaming) trajectories,
discretized time sequences with the L-consecutive / G-connected machinery,
snapshots, and the unified co-movement pattern definition CP(M, K, L, G).
"""

from repro.model.batch import RecordBatch, SnapshotBatch
from repro.model.constraints import PatternConstraints
from repro.model.discretize import TimeDiscretizer
from repro.model.pattern import CoMovementPattern
from repro.model.records import GPSRecord, Location, StreamRecord, Trajectory
from repro.model.snapshot import ClusterSnapshot, Snapshot
from repro.model.timeseq import (
    TimeSequence,
    eta_window,
    is_g_connected,
    is_l_consecutive,
    maximal_valid_sequences,
    segments_of,
)

__all__ = [
    "ClusterSnapshot",
    "CoMovementPattern",
    "GPSRecord",
    "Location",
    "PatternConstraints",
    "RecordBatch",
    "Snapshot",
    "SnapshotBatch",
    "StreamRecord",
    "TimeDiscretizer",
    "TimeSequence",
    "Trajectory",
    "eta_window",
    "is_g_connected",
    "is_l_consecutive",
    "maximal_valid_sequences",
    "segments_of",
]
