"""Textbook DBSCAN (Ester et al. 1996) as an independent test oracle.

Structurally different from :func:`repro.cluster.dbscan.dbscan_from_pairs`:
it expands clusters with a seed queue over brute-force neighbourhoods
instead of union-find over join pairs.  Border assignment is canonicalised
the same way (smallest-id core neighbour) so results are comparable
bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.cluster.dbscan import DBSCANResult
from repro.geometry.distance import Metric, l1_distance


def reference_dbscan(
    points: Iterable[tuple[int, float, float]],
    epsilon: float,
    min_pts: int,
    metric: Metric = l1_distance,
    count_self: bool = True,
) -> DBSCANResult:
    """O(n^2) DBSCAN over raw points; the clustering test oracle."""
    items = sorted(points)
    positions = {oid: (x, y) for oid, x, y in items}
    oid_list = [oid for oid, _, _ in items]

    def neighbors(oid: int) -> list[int]:
        x, y = positions[oid]
        found = []
        for other in oid_list:
            if other == oid:
                continue
            ox, oy = positions[other]
            if metric(x, y, ox, oy) <= epsilon:
                found.append(other)
        return found

    neighborhoods = {oid: neighbors(oid) for oid in oid_list}
    core = {
        oid
        for oid in oid_list
        if len(neighborhoods[oid]) + (1 if count_self else 0) >= min_pts
    }

    # Classic seed-queue expansion over core points.
    assignment: dict[int, int] = {}
    next_cluster = 0
    for oid in oid_list:
        if oid not in core or oid in assignment:
            continue
        cluster_id = next_cluster
        next_cluster += 1
        queue = deque([oid])
        assignment[oid] = cluster_id
        while queue:
            current = queue.popleft()
            for nb in neighborhoods[current]:
                if nb in core and nb not in assignment:
                    assignment[nb] = cluster_id
                    queue.append(nb)

    # Canonical border assignment: smallest-id core neighbour's cluster.
    noise: set[int] = set()
    for oid in oid_list:
        if oid in core:
            continue
        core_neighbors = [nb for nb in neighborhoods[oid] if nb in core]
        if not core_neighbors:
            noise.add(oid)
            continue
        assignment[oid] = assignment[min(core_neighbors)]

    by_cluster: dict[int, list[int]] = {}
    for oid, cluster_id in assignment.items():
        by_cluster.setdefault(cluster_id, []).append(oid)
    ordered = sorted(by_cluster.values(), key=min)
    clusters = {
        cluster_id: tuple(sorted(members))
        for cluster_id, members in enumerate(ordered)
    }
    return DBSCANResult(clusters=clusters, core_points=core, noise=noise)
