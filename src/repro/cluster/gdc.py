"""GDC baseline: grid-based DBSCAN (Section 7.1).

GDC [14] divides space into cells of width epsilon and finds each point's
neighbours by scanning the surrounding cell block, then clusters exactly as
DBSCAN.  The paper extends it to Flink and observes that using epsilon (a
small value) as the partition width "results in too many partitions", which
is why RJC outperforms it.  Because the cell width is tied to epsilon, GDC
is insensitive to the ``lg`` sweep of Fig. 11 — our implementation keeps
that property.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.dbscan import DBSCANResult, dbscan_from_pairs
from repro.geometry.distance import Metric, get_metric
from repro.geometry.rect import pruning_epsilon
from repro.index.grid import GridIndex
from repro.join.pairs import NeighborPairs, normalize_pair
from repro.model.snapshot import ClusterSnapshot, Snapshot


@dataclass(slots=True)
class GDCStats:
    """Work counters of one GDC run."""

    locations: int = 0
    occupied_cells: int = 0
    candidate_checks: int = 0


class GDCClusterer:
    """Grid-based DBSCAN with epsilon-width cells."""

    name = "GDC"

    def __init__(self, epsilon: float, min_pts: int, metric_name: str = "l1"):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon
        self.min_pts = min_pts
        self.metric: Metric = get_metric(metric_name)
        self.last_stats = GDCStats()

    def cluster(self, snapshot: Snapshot) -> ClusterSnapshot:
        """Cluster one snapshot into a :class:`ClusterSnapshot`."""
        return self.cluster_result(snapshot).to_snapshot(snapshot.time)

    def cluster_result(self, snapshot: Snapshot) -> DBSCANResult:
        """Cluster one snapshot, returning the full :class:`DBSCANResult`."""
        points = snapshot.points()
        pairs = self._neighbor_pairs(points)
        return dbscan_from_pairs((oid for oid, _, _ in points), pairs, self.min_pts)

    def _neighbor_pairs(
        self, points: list[tuple[int, float, float]]
    ) -> NeighborPairs:
        """Pairs via epsilon-grid block scan.

        With cell width epsilon, any neighbour at L1 distance <= epsilon
        lies within the 3x3 cell block around a point's home cell.  Each
        unordered pair is counted once by a lexicographic guard.
        """
        # Pruning-margin width: a neighbour whose computed distance equals
        # epsilon exactly can sit a few ulps past an epsilon-width cell
        # boundary; the margin keeps it within the 3x3 block (the metric
        # check below is the exact filter).
        grid = GridIndex(cell_width=pruning_epsilon(self.epsilon))
        for oid, x, y in points:
            grid.insert(x, y, (oid, x, y))
        stats = GDCStats(locations=len(points), occupied_cells=grid.occupied_cells)
        pairs: NeighborPairs = set()
        for (gx, gy), bucket in grid.cells.items():
            for oid, x, y in bucket:
                for nx in (gx - 1, gx, gx + 1):
                    for ny in (gy - 1, gy, gy + 1):
                        for other, ox, oy in grid.bucket((nx, ny)):
                            if other <= oid:
                                continue
                            stats.candidate_checks += 1
                            if self.metric(x, y, ox, oy) <= self.epsilon:
                                pairs.add(normalize_pair(oid, other))
        self.last_stats = stats
        return pairs
