"""DBSCAN over a precomputed neighbour-pair set.

Definitions 8-9 of the paper: a location is a *core point* when at least
``minPts`` locations lie within distance epsilon; clusters are the
connected components of core points under the epsilon-neighbour relation,
plus the density-reachable border points.  Given the range-join result, all
of this is derivable without further distance computations, which is why
the paper reports O(n) clustering cost after the join.

Border points reachable from several clusters are ambiguous in textbook
DBSCAN (assignment depends on scan order).  To make every implementation in
this repository comparable bit-for-bit, we canonicalise: a border point
joins the cluster of its smallest-id core neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.model.snapshot import ClusterSnapshot


class UnionFind:
    """Path-halving union-find over arbitrary hashable items."""

    __slots__ = ("_parent", "_rank")

    def __init__(self):
        self._parent: dict = {}
        self._rank: dict = {}

    def add(self, item) -> None:
        """Register an item as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item):
        """Representative of the item's set (with path halving)."""
        parent = self._parent
        root = item
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a, b) -> None:
        """Merge the two items' sets (union by rank)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1

    def groups(self) -> dict:
        """Mapping of representative -> members of its set."""
        out: dict = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out


@dataclass(slots=True)
class DBSCANResult:
    """Outcome of one snapshot clustering.

    Attributes:
        clusters: cluster id -> sorted member oids; ids are dense and
            ordered by each cluster's smallest member for determinism.
        core_points: the set of core oids.
        noise: oids that are neither core nor density reachable.
    """

    clusters: dict[int, tuple[int, ...]] = field(default_factory=dict)
    core_points: set[int] = field(default_factory=set)
    noise: set[int] = field(default_factory=set)

    def to_snapshot(self, time: int) -> ClusterSnapshot:
        """Package the clusters as a :class:`ClusterSnapshot` at ``time``."""
        return ClusterSnapshot(time=time, clusters=dict(self.clusters))

    def membership(self) -> dict[int, int]:
        """Map each clustered oid to its cluster id."""
        member_of: dict[int, int] = {}
        for cluster_id, members in self.clusters.items():
            for oid in members:
                member_of[oid] = cluster_id
        return member_of


def dbscan_from_pairs(
    oids: Iterable[int],
    pairs: Iterable[tuple[int, int]],
    min_pts: int,
    count_self: bool = True,
) -> DBSCANResult:
    """Cluster a snapshot from its epsilon-neighbour pairs.

    Args:
        oids: every object present in the snapshot (isolated ones too).
        pairs: normalised distinct-object pairs at distance <= epsilon
            (the range-join output).
        min_pts: DBSCAN density threshold (``minPts``).
        count_self: whether a point counts itself in its neighbourhood
            (standard DBSCAN does; the paper's Definition 8 is ambiguous,
            so it is a switch with the standard behaviour as default).

    Returns:
        A :class:`DBSCANResult` with canonical border assignment.
    """
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    all_oids = list(oids)
    neighbor_count: dict[int, int] = {oid: 1 if count_self else 0 for oid in all_oids}
    adjacency: dict[int, list[int]] = {}
    pair_list = list(pairs)
    for a, b in pair_list:
        neighbor_count[a] = neighbor_count.get(a, int(count_self)) + 1
        neighbor_count[b] = neighbor_count.get(b, int(count_self)) + 1
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)

    core = {oid for oid, count in neighbor_count.items() if count >= min_pts}

    # Connected components of the core-core graph.
    components = UnionFind()
    for oid in core:
        components.add(oid)
    for a, b in pair_list:
        if a in core and b in core:
            components.union(a, b)

    root_members: dict[int, list[int]] = {}
    for oid in core:
        root_members.setdefault(components.find(oid), []).append(oid)

    # Border points: density reachable = adjacent to some core point.
    noise: set[int] = set()
    for oid in all_oids:
        if oid in core:
            continue
        core_neighbors = [nb for nb in adjacency.get(oid, ()) if nb in core]
        if not core_neighbors:
            noise.add(oid)
            continue
        anchor = min(core_neighbors)
        root_members[components.find(anchor)].append(oid)

    ordered = sorted(root_members.values(), key=min)
    clusters = {
        cluster_id: tuple(sorted(members))
        for cluster_id, members in enumerate(ordered)
    }
    return DBSCANResult(clusters=clusters, core_points=core, noise=noise)
