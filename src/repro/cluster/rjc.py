"""RJC: the paper's range-join based clustering method (Section 5).

Per snapshot: GR-index range join (Lemmas 1-2) -> DBSCAN over the neighbour
pairs.  This is the clustering engine inside ICPE and the method labelled
"RJC" in Figures 10-11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.dbscan import DBSCANResult, dbscan_from_pairs
from repro.join.range_join import GRRangeJoin, RangeJoinConfig
from repro.model.snapshot import ClusterSnapshot, Snapshot


@dataclass(frozen=True, slots=True)
class ClusteringConfig:
    """Parameters of the clustering phase.

    Attributes:
        epsilon: DBSCAN distance threshold.
        min_pts: DBSCAN density threshold (fixed to 10 in the paper).
        cell_width: grid cell width of the GR-index.
        metric_name: distance metric name.
        rtree_fanout: local R-tree capacity.
        lemma1, lemma2, local_index: ablation switches (paper defaults on).
    """

    epsilon: float
    min_pts: int
    cell_width: float
    metric_name: str = "l1"
    rtree_fanout: int = 16
    lemma1: bool = True
    lemma2: bool = True
    local_index: str = "rtree"

    def join_config(self) -> RangeJoinConfig:
        """The equivalent range-join configuration."""
        return RangeJoinConfig(
            cell_width=self.cell_width,
            epsilon=self.epsilon,
            metric_name=self.metric_name,
            lemma1=self.lemma1,
            lemma2=self.lemma2,
            local_index=self.local_index,
            rtree_fanout=self.rtree_fanout,
        )


class RJCClusterer:
    """Range-Join based Clustering (RJC)."""

    name = "RJC"

    def __init__(self, config: ClusteringConfig):
        self.config = config
        self._join = GRRangeJoin(config.join_config())

    @property
    def last_join_stats(self):
        """Work counters of the most recent snapshot join."""
        return self._join.last_stats

    def cluster(self, snapshot: Snapshot) -> ClusterSnapshot:
        """Cluster one snapshot into a :class:`ClusterSnapshot`."""
        result = self.cluster_result(snapshot)
        return result.to_snapshot(snapshot.time)

    def cluster_result(self, snapshot: Snapshot) -> DBSCANResult:
        """Cluster one snapshot, returning the full :class:`DBSCANResult`."""
        points = snapshot.points()
        pairs = self._join.join(points)
        return dbscan_from_pairs(
            (oid for oid, _, _ in points), pairs, self.config.min_pts
        )
