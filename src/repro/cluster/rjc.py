"""RJC: the paper's range-join based clustering method (Section 5).

Per snapshot: GR-index range join (Lemmas 1-2) -> DBSCAN over the neighbour
pairs.  This is the clustering engine inside ICPE and the method labelled
"RJC" in Figures 10-11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.dbscan import DBSCANResult
from repro.join.range_join import RangeJoinConfig
from repro.model.snapshot import ClusterSnapshot, Snapshot


@dataclass(frozen=True, slots=True)
class ClusteringConfig:
    """Parameters of the clustering phase.

    Attributes:
        epsilon: DBSCAN distance threshold.
        min_pts: DBSCAN density threshold (fixed to 10 in the paper).
        cell_width: grid cell width of the GR-index.
        metric_name: distance metric name.
        rtree_fanout: local R-tree capacity.
        lemma1, lemma2, local_index: ablation switches (paper defaults on).
        kernel: snapshot-clustering kernel strategy — ``"python"`` (the
            reference object path, default) or ``"numpy"`` (vectorized;
            identical results, requires NumPy).
    """

    epsilon: float
    min_pts: int
    cell_width: float
    metric_name: str = "l1"
    rtree_fanout: int = 16
    lemma1: bool = True
    lemma2: bool = True
    local_index: str = "rtree"
    kernel: str = "python"

    def join_config(self) -> RangeJoinConfig:
        """The equivalent range-join configuration."""
        return RangeJoinConfig(
            cell_width=self.cell_width,
            epsilon=self.epsilon,
            metric_name=self.metric_name,
            lemma1=self.lemma1,
            lemma2=self.lemma2,
            local_index=self.local_index,
            rtree_fanout=self.rtree_fanout,
        )


class RJCClusterer:
    """Range-Join based Clustering (RJC).

    The snapshot-clustering work is delegated to the configured kernel
    strategy (``config.kernel``); the default ``"python"`` kernel is the
    GR-index object path this class has always run, ``"numpy"`` swaps in
    the vectorized kernel with identical results.
    """

    name = "RJC"

    def __init__(self, config: ClusteringConfig):
        # Deferred import: repro.kernels builds on this package's DBSCAN
        # primitives, while this clusterer dispatches *to* the kernels —
        # importing at call time keeps the strategy selectable from the
        # clustering layer without a hard import cycle.
        from repro.kernels import make_kernel

        self.config = config
        self._kernel = make_kernel(
            config.kernel,
            epsilon=config.epsilon,
            min_pts=config.min_pts,
            cell_width=config.cell_width,
            metric_name=config.metric_name,
            lemma1=config.lemma1,
            lemma2=config.lemma2,
            local_index=config.local_index,
            rtree_fanout=config.rtree_fanout,
        )

    @property
    def kernel_name(self) -> str:
        """Name of the kernel strategy clustering the snapshots."""
        return self._kernel.name

    @property
    def last_join_stats(self):
        """Work counters of the most recent snapshot join."""
        return self._kernel.last_join_stats

    def cluster(self, snapshot: Snapshot) -> ClusterSnapshot:
        """Cluster one snapshot into a :class:`ClusterSnapshot`."""
        result = self.cluster_result(snapshot)
        return result.to_snapshot(snapshot.time)

    def cluster_result(self, snapshot: Snapshot) -> DBSCANResult:
        """Cluster one snapshot, returning the full :class:`DBSCANResult`."""
        return self._kernel.cluster(snapshot.points())
