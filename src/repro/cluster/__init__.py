"""Density-based clustering phase (Section 5.3) and baselines.

The clustering phase of ICPE applies DBSCAN to the output of the range
join: core points and density-reachable points "can be easily retrieved
from the result of range join".  ``dbscan_from_pairs`` does exactly that in
O(pairs) with a union-find; :class:`RJCClusterer` composes it with the
GR-index range join (the paper's RJC), and :class:`GDCClusterer` is the
grid-based DBSCAN baseline GDC.
"""

from repro.cluster.dbscan import DBSCANResult, UnionFind, dbscan_from_pairs
from repro.cluster.gdc import GDCClusterer
from repro.cluster.reference import reference_dbscan
from repro.cluster.rjc import ClusteringConfig, RJCClusterer

__all__ = [
    "ClusteringConfig",
    "DBSCANResult",
    "GDCClusterer",
    "RJCClusterer",
    "UnionFind",
    "dbscan_from_pairs",
    "reference_dbscan",
]
