"""BA — the baseline enumeration algorithm (Section 6.1, Algorithm 3).

For every window of eta consecutive times starting at ``t`` (Lemma 4), BA
materialises *every* subset ``O`` of ``P_t(o)`` with ``|O| >= M - 1`` and
verifies each against the following partitions, applying the pruning of
Lemmas 5 (stranded short segment) and 6 (gap exceeded).  Storage and time
are O(2^|P|) — the exponential cost the paper's FBA/VBA remove.

Fidelity note: Algorithm 3's literal greedy extension (always absorb the
next co-clustered time when Lemmas 5-6 permit) can strand a short segment
and miss a valid sequence that *skips* a time, e.g. available times
``{1, 2, 3, 4, 6, 8, 9}`` with (K=6, L=2, G=4): greedy absorbs 6, gets
stuck, and discards the pattern although ``<1, 2, 3, 4, 8, 9>`` is valid.
The default mode therefore verifies subsets with the exact maximal-valid-
sequence decomposition (same cost class); ``literal_greedy=True`` keeps the
paper's pseudocode behaviour for comparison, and the unit tests pin the
counterexample.
"""

from __future__ import annotations

from itertools import combinations

from repro.enumeration.base import AnchorEnumerator
from repro.model.constraints import PatternConstraints
from repro.model.pattern import CoMovementPattern
from repro.model.timeseq import (
    TimeSequence,
    maximal_valid_sequences,
    segments_of,
)


class PartitionTooLargeError(RuntimeError):
    """Raised when a partition exceeds BA's subset-materialisation cap.

    This is the programmatic counterpart of the paper's observation that
    "B can only run on small datasets" (Fig. 12).
    """


class BAEnumerator(AnchorEnumerator):
    """Exhaustive subset enumeration over sliding eta-windows."""

    def __init__(
        self,
        anchor: int,
        constraints: PatternConstraints,
        max_partition_size: int = 20,
        literal_greedy: bool = False,
    ):
        super().__init__(anchor, constraints)
        self.max_partition_size = max_partition_size
        self.literal_greedy = literal_greedy
        self._window: dict[int, frozenset[int]] = {}
        self._pending_starts: list[int] = []
        self._last_time: int | None = None
        # Counters consumed by the benchmark harness.
        self.subsets_materialised = 0

    def on_partition(
        self, time: int, members: frozenset[int]
    ) -> list[CoMovementPattern]:
        """Consume ``P_time(anchor)``; run windows that completed (Algorithm 3)."""
        if self._last_time is not None and time <= self._last_time:
            raise ValueError(
                f"times must increase: got {time} after {self._last_time}"
            )
        self._last_time = time
        if members:
            self._window[time] = members
            self._pending_starts.append(time)
        eta = self.constraints.eta
        emitted: list[CoMovementPattern] = []
        # A window starting at ts is complete once time reaches ts + eta - 1.
        while self._pending_starts and self._pending_starts[0] + eta - 1 <= time:
            start = self._pending_starts.pop(0)
            emitted.extend(self._run_window(start))
        self._evict(time)
        return emitted

    def finish(self) -> list[CoMovementPattern]:
        """Flush pending windows at end of stream."""
        emitted: list[CoMovementPattern] = []
        while self._pending_starts:
            emitted.extend(self._run_window(self._pending_starts.pop(0)))
        self._window.clear()
        return emitted

    def is_idle(self) -> bool:
        """True when no window is pending."""
        return not self._pending_starts

    def snapshot_state(self) -> dict:
        """Window contents, pending starts and counters as plain data."""
        return {
            "window": {
                t: tuple(sorted(self._window[t])) for t in sorted(self._window)
            },
            "pending_starts": list(self._pending_starts),
            "last_time": self._last_time,
            "subsets_materialised": self.subsets_materialised,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._window = {
            t: frozenset(members) for t, members in payload["window"].items()
        }
        self._pending_starts = list(payload["pending_starts"])
        self._last_time = payload["last_time"]
        self.subsets_materialised = payload["subsets_materialised"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: retained window entries and pending starts."""
        return {
            "window_entries": len(self._window),
            "pending_windows": len(self._pending_starts),
        }

    def _evict(self, now: int) -> None:
        """Drop partitions no pending window can reference."""
        if not self._pending_starts:
            horizon = now - self.constraints.eta + 1
        else:
            horizon = self._pending_starts[0]
        for t in [t for t in self._window if t < horizon]:
            del self._window[t]

    def _run_window(self, start: int) -> list[CoMovementPattern]:
        base = self._window.get(start)
        if not base:
            return []
        if len(base) > self.max_partition_size:
            raise PartitionTooLargeError(
                f"BA: partition of size {len(base)} at t={start} exceeds cap "
                f"{self.max_partition_size} (2^n subsets would be materialised)"
            )
        constraints = self.constraints
        eta = constraints.eta
        window_times = range(start, start + eta)
        emitted: list[CoMovementPattern] = []
        min_size = constraints.m - 1
        members = sorted(base)
        for size in range(min_size, len(members) + 1):
            for subset in combinations(members, size):
                self.subsets_materialised += 1
                subset_set = frozenset(subset)
                available = [
                    t
                    for t in window_times
                    if subset_set <= self._window.get(t, frozenset())
                ]
                sequence = self._verify(available)
                if sequence is not None:
                    emitted.append(
                        CoMovementPattern.of((self.anchor, *subset), sequence)
                    )
        return emitted

    def _verify(self, available: list[int]) -> TimeSequence | None:
        """Find a valid time sequence over the subset's available times."""
        if not available:
            return None
        c = self.constraints
        if self.literal_greedy:
            return _greedy_sequence(available, c)
        sequences = maximal_valid_sequences(available, c.k, c.l, c.g)
        return sequences[0] if sequences else None


def _greedy_sequence(
    available: list[int], c: PatternConstraints
) -> TimeSequence | None:
    """Algorithm 3 lines 4-12 verbatim: greedy extension with Lemmas 5-6.

    ``T`` starts at the window's first available time and absorbs each later
    available time when it is adjacent, or when the last segment is complete
    and the gap fits; the pattern is discarded the moment Lemma 5 or 6
    strikes.  Returns the first prefix that satisfies (K, L) or ``None``.
    """
    times = [available[0]]
    for t in available[1:]:
        last = times[-1]
        last_segment = segments_of(times)[-1]
        last_len = last_segment[1] - last_segment[0] + 1
        if t - last == 1:
            times.append(t)
        elif last_len >= c.l and t - last <= c.g:
            times.append(t)
        else:
            # Lemma 5 (short stranded segment) or Lemma 6 (gap > G).
            return None
        kept = segments_of(times)
        tail_len = kept[-1][1] - kept[-1][0] + 1
        if len(times) >= c.k and tail_len >= c.l:
            return TimeSequence(times)
    kept = segments_of(times)
    tail_len = kept[-1][1] - kept[-1][0] + 1
    if len(times) >= c.k and tail_len >= c.l:
        return TimeSequence(times)
    return None
