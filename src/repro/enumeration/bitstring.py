"""Bit-compressed cluster-membership strings (Definitions 13-14).

A bit string records, per discretized time, whether a trajectory shares the
anchor's cluster.  Bits are stored in a Python int: bit ``j`` (LSB = offset
0) corresponds to time ``start + j``.  Fixed-length strings cover one
eta-window (FBA); variable-length strings grow with the stream and close
when ``G + 1`` trailing zeros make any extension impossible (Lemma 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.timeseq import TimeSequence, maximal_valid_sequences

OPEN = 0
CLOSED_VALID = 1
CLOSED_INVALID = -1


def ones_positions(bits: int) -> list[int]:
    """Offsets of set bits, ascending."""
    out = []
    while bits:
        low = bits & -bits
        out.append(low.bit_length() - 1)
        bits ^= low
    return out


def valid_sequences_of_bits(
    bits: int, start: int, duration: int, l_min: int, gap: int
) -> list[TimeSequence]:
    """Maximal (K, L, G)-valid sequences of a bit string anchored at ``start``."""
    times = [start + offset for offset in ones_positions(bits)]
    return maximal_valid_sequences(times, duration, l_min, gap)


@dataclass(slots=True)
class FixedBitString:
    """Definition 13: an eta-length membership string for one trajectory.

    ``bits`` bit ``j`` is 1 iff the trajectory shares the anchor's cluster
    at time ``start + j``; only offsets in ``[0, length)`` are meaningful.
    """

    start: int
    length: int
    bits: int = 0

    def set_time(self, time: int) -> None:
        """Set the bit of an absolute time inside the window."""
        offset = time - self.start
        if not 0 <= offset < self.length:
            raise ValueError(
                f"time {time} outside window [{self.start}, "
                f"{self.start + self.length - 1}]"
            )
        self.bits |= 1 << offset

    def get_time(self, time: int) -> bool:
        """Whether the bit of an absolute time is set (False outside)."""
        offset = time - self.start
        if not 0 <= offset < self.length:
            return False
        return bool(self.bits >> offset & 1)

    def times(self) -> list[int]:
        """Absolute times whose bits are set, ascending."""
        return [self.start + offset for offset in ones_positions(self.bits)]

    def valid_sequences(
        self, duration: int, l_min: int, gap: int
    ) -> list[TimeSequence]:
        """Maximal (K, L, G)-valid sequences contained in the string."""
        return valid_sequences_of_bits(
            self.bits, self.start, duration, l_min, gap
        )

    def is_valid(self, duration: int, l_min: int, gap: int) -> bool:
        """Whether the string contains at least one valid sequence."""
        return bool(self.valid_sequences(duration, l_min, gap))

    def __str__(self) -> str:
        return "".join(
            "1" if self.bits >> offset & 1 else "0"
            for offset in range(self.length)
        )


@dataclass(slots=True)
class VariableBitString:
    """Definition 14: an unbounded membership string ``<st, et, B>``.

    ``start`` is the time of the first (set) bit; ``length`` counts every
    appended bit, so the string currently covers times ``[start, start +
    length - 1]``.  The paper's ``et`` is :attr:`end` after :meth:`trimmed`.
    """

    start: int
    bits: int = 0
    length: int = 0
    trailing_zeros: int = 0

    @classmethod
    def opened_at(cls, time: int) -> "VariableBitString":
        """A fresh string whose first bit (a 1) is at ``time``."""
        return cls(start=time, bits=1, length=1, trailing_zeros=0)

    @property
    def end(self) -> int:
        """Time of the last appended bit."""
        if self.length == 0:
            raise ValueError("empty variable bit string has no end")
        return self.start + self.length - 1

    @property
    def last_one(self) -> int:
        """Time of the last set bit (``et`` of the trimmed string)."""
        if self.bits == 0:
            raise ValueError("bit string has no set bits")
        return self.start + self.bits.bit_length() - 1

    def append(self, present: bool) -> None:
        """Append one time step (line 4 / line 7 of Algorithm 5)."""
        if present:
            self.bits |= 1 << self.length
            self.trailing_zeros = 0
        else:
            self.trailing_zeros += 1
        self.length += 1

    def status(self, duration: int, l_min: int, gap: int) -> int:
        """Lemma 7 closure check (the paper's ``isValid`` tag).

        Returns ``CLOSED_VALID`` when ``G + 1`` trailing zeros have closed
        the string and it contains a valid sequence, ``CLOSED_INVALID``
        when closed without one, and ``OPEN`` otherwise.
        """
        if self.trailing_zeros < gap + 1:
            return OPEN
        if valid_sequences_of_bits(self.bits, self.start, duration, l_min, gap):
            return CLOSED_VALID
        return CLOSED_INVALID

    def trimmed(self) -> "ClosedBitString":
        """The closed ``<st, et, B>`` triple with trailing zeros removed."""
        if self.bits == 0:
            raise ValueError("cannot trim an all-zero bit string")
        return ClosedBitString(
            oid=-1, start=self.start, end=self.last_one, bits=self.bits
        )

    def __str__(self) -> str:
        return "".join(
            "1" if self.bits >> offset & 1 else "0"
            for offset in range(self.length)
        )


@dataclass(frozen=True, slots=True)
class ClosedBitString:
    """An immutable closed candidate ``<st, et, B>`` owned by ``oid``.

    Closed strings populate VBA's global candidate list ``C``; Lemma 8
    prunes combinations whose aligned window ``[max st, min et]`` is shorter
    than K.
    """

    oid: int
    start: int
    end: int
    bits: int

    def with_oid(self, oid: int) -> "ClosedBitString":
        """Copy of the closed string owned by ``oid``."""
        return ClosedBitString(oid=oid, start=self.start, end=self.end, bits=self.bits)

    def bit_at(self, time: int) -> bool:
        """Whether the bit of an absolute time is set (False outside)."""
        offset = time - self.start
        if not 0 <= offset <= self.end - self.start:
            return False
        return bool(self.bits >> offset & 1)

    def times(self) -> list[int]:
        """Absolute times whose bits are set, ascending."""
        return [self.start + offset for offset in ones_positions(self.bits)]


def and_closed_strings(
    strings: list[ClosedBitString],
) -> tuple[int, int] | None:
    """Bitwise AND of closed strings over their aligned overlap window.

    Returns ``(bits, window_start)`` or ``None`` when the overlap window is
    empty.  Bit ``j`` of the result corresponds to time ``window_start + j``
    and is set iff every input string has a 1 there.
    """
    if not strings:
        return None
    window_start = max(s.start for s in strings)
    window_end = min(s.end for s in strings)
    if window_end < window_start:
        return None
    combined = ~0
    width = window_end - window_start + 1
    mask = (1 << width) - 1
    for s in strings:
        combined &= s.bits >> (window_start - s.start)
        if not combined & mask:
            return (0, window_start)
    return (combined & mask, window_start)
