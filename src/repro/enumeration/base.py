"""Shared enumerator interface and result collection.

An :class:`AnchorEnumerator` is the per-subtask state machine: it consumes
the anchor's partition at each successive time and emits co-movement
patterns (anchor included).  :class:`PatternCollector` is the sink that
deduplicates emissions across subtasks and windows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.model.constraints import PatternConstraints
from repro.model.pattern import CoMovementPattern


class AnchorEnumerator(ABC):
    """Per-anchor pattern enumeration state machine."""

    def __init__(self, anchor: int, constraints: PatternConstraints):
        self.anchor = anchor
        self.constraints = constraints

    @abstractmethod
    def on_partition(
        self, time: int, members: frozenset[int]
    ) -> list[CoMovementPattern]:
        """Consume ``P_time(anchor)`` and return any patterns confirmed now.

        ``members`` excludes the anchor itself; an empty set means the
        anchor was not in any significant cluster at ``time``.  Times must
        arrive in strictly increasing order.
        """

    @abstractmethod
    def finish(self) -> list[CoMovementPattern]:
        """Flush end-of-stream state (bounded evaluation only)."""

    def is_idle(self) -> bool:
        """True when an empty partition would be a no-op for this anchor.

        The enumeration stage uses this to skip the per-snapshot absence
        tick for anchors whose windows/bit strings hold no open state.
        """
        return False

    def protected_oids(self) -> frozenset[int]:
        """Oids this machine's partial matches depend on (shed-protected).

        The load shedder must not drop records for objects currently
        inside a forming pattern — an open FBA window, an unclosed VBA
        bit string.  Machines with no such notion (the baseline
        enumerator keeps no cross-snapshot partial state worth
        protecting) report nothing and leave every record sheddable.
        """
        return frozenset()

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Live partial matches as ``(anchor, oid, start, ones, remaining)``.

        The prediction scorer's input (see
        :data:`repro.patterns.base.FormingCandidate`): one descriptor
        per object with an open partial match against this anchor —
        ``start`` is when its container opened, ``ones`` its current
        trailing run of consecutive present-snapshots, ``remaining`` how
        many further snapshots the container can still absorb (``-1``
        when unbounded).  Machines without forming state (the baseline's
        materialised subsets carry no per-candidate bit strings) report
        nothing; the registry's ``provides_forming_state`` capability
        tells the predictive family which enumerators do.
        """
        return ()

    def snapshot_state(self) -> dict:
        """Serializable payload capturing the anchor machine's state.

        Every built-in enumerator implements the pair; a third-party
        enumerator without it makes the hosting stage's checkpoint fail
        loudly rather than silently dropping its state.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting (entry counts); empty for unknown machines."""
        return {}


class PatternCollector:
    """Deduplicating sink for detected patterns.

    Patterns are tracked by object set; the first emission wins (its time
    sequence is the earliest witness).  ``detections`` preserves emission
    order for latency accounting.
    """

    def __init__(self):
        self._seen: dict[tuple[int, ...], CoMovementPattern] = {}
        self.detections: list[tuple[int, CoMovementPattern]] = []

    def offer(self, time: int, patterns: Iterable[CoMovementPattern]) -> int:
        """Add patterns detected at ``time``; returns how many were new."""
        fresh = 0
        for pattern in patterns:
            if pattern.objects not in self._seen:
                self._seen[pattern.objects] = pattern
                self.detections.append((time, pattern))
                fresh += 1
        return fresh

    def object_sets(self) -> set[tuple[int, ...]]:
        """The distinct detected object sets (tuple form)."""
        return set(self._seen)

    def patterns(self) -> list[CoMovementPattern]:
        """First-emission pattern per object set, in detection order."""
        return [pattern for _, pattern in self.detections]

    def __len__(self) -> int:
        return len(self._seen)

    def snapshot_state(self) -> dict:
        """The detection log (``_seen`` is derivable and rebuilt on restore)."""
        return {"detections": list(self.detections)}

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self.detections = list(payload["detections"])
        self._seen = {
            pattern.objects: pattern for _, pattern in self.detections
        }

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: size of the dedup map / detection log."""
        return {"patterns": len(self._seen), "detections": len(self.detections)}
