"""Pattern enumeration phase (Section 6 of the paper).

The cluster-snapshot stream is split by *id-based partitioning*: a subtask
exists per trajectory ``o`` and receives, at every time ``t``, the set
``P_t(o)`` of larger-id trajectories sharing ``o``'s cluster (Lemma 3 drops
clusters below the significance threshold).  Three enumerators then find
the CP(M, K, L, G) patterns anchored at ``o``:

* **BA** (Algorithm 3) — materialises every subset of ``P_t(o)`` and
  verifies each over the eta-snapshot window; exponential storage.
* **FBA** (Algorithm 4) — fixed-length bit compression (Definition 13) and
  candidate-based apriori enumeration; linear storage per window.
* **VBA** (Algorithm 5) — variable-length bit strings over all times
  (Definition 14), maximal pattern time sequences (Definition 15,
  Lemma 7), and Lemma 8 pruning; each snapshot verified once, trading
  latency for throughput.

``repro.enumeration.oracle`` provides the exhaustive reference enumerator
used by the test-suite to prove all three agree.

``repro.enumeration.kernels`` makes the *implementation strategy* of a
whole enumerate subtask selectable: the reference per-anchor state
machines (``python``) or batched membership bitmaps on NumPy arrays
(``numpy``), both emitting identical pattern streams.
"""

from repro.enumeration.base import AnchorEnumerator, PatternCollector
from repro.enumeration.baseline import BAEnumerator
from repro.enumeration.bitstring import (
    FixedBitString,
    VariableBitString,
    valid_sequences_of_bits,
)
from repro.enumeration.fba import FBAEnumerator
from repro.enumeration.oracle import enumerate_all_patterns
from repro.enumeration.partition import PartitionRouter, id_partitions
from repro.enumeration.vba import VBAEnumerator

__all__ = [
    "AnchorEnumerator",
    "BAEnumerator",
    "FBAEnumerator",
    "FixedBitString",
    "PartitionRouter",
    "PatternCollector",
    "VBAEnumerator",
    "VariableBitString",
    "enumerate_all_patterns",
    "id_partitions",
    "valid_sequences_of_bits",
]
