"""Exhaustive reference enumerator (test oracle).

Enumerates *every* subset of objects that ever co-clusters, intersects its
co-clustering times with the (K, L, G) maximal-valid-sequence
decomposition, and reports all valid patterns.  Exponential in the largest
cluster size — usable only on the small streams of the test-suite, which
is exactly its job: BA, FBA and VBA must all agree with it.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.model.constraints import PatternConstraints
from repro.model.pattern import CoMovementPattern
from repro.model.snapshot import ClusterSnapshot
from repro.model.timeseq import TimeSequence, maximal_valid_sequences


def enumerate_all_patterns(
    snapshots: Iterable[ClusterSnapshot],
    constraints: PatternConstraints,
    max_cluster_size: int = 14,
) -> dict[frozenset[int], list[TimeSequence]]:
    """All CP(M, K, L, G) patterns of a bounded cluster-snapshot stream.

    Returns a mapping ``object set -> maximal valid time sequences``.

    Raises:
        ValueError: when a cluster exceeds ``max_cluster_size`` (the
            powerset would be unreasonably large for a reference run).
    """
    co_times: dict[frozenset[int], list[int]] = {}
    for snapshot in snapshots:
        for members in snapshot.clusters.values():
            if len(members) > max_cluster_size:
                raise ValueError(
                    f"cluster of size {len(members)} at t={snapshot.time} "
                    f"exceeds the oracle cap {max_cluster_size}"
                )
            if len(members) < constraints.m:
                continue
            for size in range(constraints.m, len(members) + 1):
                for subset in combinations(sorted(members), size):
                    co_times.setdefault(frozenset(subset), []).append(
                        snapshot.time
                    )
    results: dict[frozenset[int], list[TimeSequence]] = {}
    for subset, times in co_times.items():
        sequences = maximal_valid_sequences(
            sorted(set(times)), constraints.k, constraints.l, constraints.g
        )
        if sequences:
            results[subset] = sequences
    return results


def oracle_object_sets(
    snapshots: Sequence[ClusterSnapshot], constraints: PatternConstraints
) -> set[tuple[int, ...]]:
    """Just the detected object sets, in the collector's tuple form."""
    return {
        tuple(sorted(subset))
        for subset in enumerate_all_patterns(snapshots, constraints)
    }


def patterns_are_sound(
    emitted: Iterable[CoMovementPattern],
    snapshots: Sequence[ClusterSnapshot],
    constraints: PatternConstraints,
) -> bool:
    """Soundness check: every emitted pattern's witness really holds.

    The object set must satisfy M; the time sequence must satisfy
    (K, L, G); and the objects must share a cluster at every witness time.
    """
    by_time = {snapshot.time: snapshot for snapshot in snapshots}
    for pattern in emitted:
        if not pattern.satisfies(constraints):
            return False
        needed = set(pattern.objects)
        for t in pattern.times:
            snapshot = by_time.get(t)
            if snapshot is None:
                return False
            if not any(
                needed <= set(members)
                for members in snapshot.clusters.values()
            ):
                return False
    return True
