"""FBA — Fixed-length Bit Compression based Algorithm (Section 6.2, Alg. 4).

Per eta-window starting at each time ``t`` with a non-empty partition:

1. every trajectory of ``P_t(o)`` gets an eta-length bit string recording
   its co-clustering with the anchor over the window (Definition 13);
2. the *candidate set* C keeps only trajectories whose own bit string
   satisfies (K, L, G) — a superset filter justified by AND-monotonicity;
3. patterns are enumerated apriori-style directly from cardinality M - 1
   (combinations of C), growing each valid pattern by candidates with a
   larger id; bit strings are combined with bitwise AND.

Storage per window is O(eta * |P|) instead of BA's O(2^|P|); enumeration
touches only candidate combinations whose every prefix is valid.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable

from repro.enumeration.base import AnchorEnumerator
from repro.enumeration.bitstring import valid_sequences_of_bits
from repro.model.constraints import PatternConstraints
from repro.model.pattern import CoMovementPattern
from repro.model.timeseq import TimeSequence

#: ``(bits, start) -> maximal valid sequences`` — the extraction hook the
#: batched kernels use to memoize decompositions of repeated bit strings.
SequencesFn = Callable[[int, int], "list[TimeSequence]"]


def enumerate_window(
    anchor: int,
    start: int,
    candidate_bits: dict[int, int],
    constraints: PatternConstraints,
    sequences_fn: SequencesFn | None = None,
) -> tuple[list[CoMovementPattern], int]:
    """Apriori growth over one window's candidate set (Alg. 4, lines 9-17).

    ``candidate_bits`` maps each candidate oid to its (already validated)
    Definition-13 bit string anchored at ``start``.  Patterns are seeded
    at cardinality M - 1 and grown by candidates with a strictly larger
    id; bit strings are combined with bitwise AND and every valid
    combination is emitted with the anchor included.

    Shared by the reference :class:`FBAEnumerator` and the batched
    enumeration kernels (:mod:`repro.enumeration.kernels`), so both emit
    bit-for-bit identical patterns in identical per-anchor order.
    ``sequences_fn`` overrides the maximal-valid-sequence extraction
    (same contract as :func:`valid_sequences_of_bits` bound to the
    constraints); the kernels pass a memoized extractor, which is
    output-invariant because the decomposition is a pure function of
    ``(bits, start)``.

    Returns:
        ``(patterns, and_evaluations)`` — the emitted patterns in
        enumeration order and the number of AND combinations evaluated.
    """
    c = constraints
    if sequences_fn is None:
        sequences_fn = lambda bits, s: valid_sequences_of_bits(
            bits, s, c.k, c.l, c.g
        )
    candidates = sorted(candidate_bits)
    emitted: list[CoMovementPattern] = []
    and_evaluations = 0
    min_size = c.m - 1
    if len(candidates) < min_size:
        return emitted, and_evaluations

    frontier: list[tuple[tuple[int, ...], int]] = []
    for seed in combinations(candidates, min_size):
        bits = candidate_bits[seed[0]]
        for oid in seed[1:]:
            bits &= candidate_bits[oid]
        and_evaluations += 1
        sequences = sequences_fn(bits, start)
        if sequences:
            emitted.append(CoMovementPattern.of((anchor, *seed), sequences[0]))
            frontier.append((seed, bits))
    while frontier:
        grown: list[tuple[tuple[int, ...], int]] = []
        for subset, bits in frontier:
            last = subset[-1]
            for oid in candidates:
                if oid <= last:
                    continue
                combined = bits & candidate_bits[oid]
                and_evaluations += 1
                sequences = sequences_fn(combined, start)
                if sequences:
                    extended = subset + (oid,)
                    emitted.append(
                        CoMovementPattern.of(
                            (anchor, *extended), sequences[0]
                        )
                    )
                    grown.append((extended, combined))
        frontier = grown
    return emitted, and_evaluations


class FBAEnumerator(AnchorEnumerator):
    """Sliding-window enumeration over fixed-length bit strings."""

    def __init__(self, anchor: int, constraints: PatternConstraints):
        super().__init__(anchor, constraints)
        self._window: dict[int, frozenset[int]] = {}
        self._pending_starts: list[int] = []
        self._last_time: int | None = None
        # Work counters for the benchmark harness and the bit-compression
        # ablation: candidate bit strings built, AND evaluations performed.
        self.bitstrings_built = 0
        self.and_evaluations = 0

    def on_partition(
        self, time: int, members: frozenset[int]
    ) -> list[CoMovementPattern]:
        """Consume ``P_time(anchor)``; run windows that completed (Algorithm 4)."""
        if self._last_time is not None and time <= self._last_time:
            raise ValueError(
                f"times must increase: got {time} after {self._last_time}"
            )
        self._last_time = time
        if members:
            self._window[time] = members
            self._pending_starts.append(time)
        eta = self.constraints.eta
        emitted: list[CoMovementPattern] = []
        while self._pending_starts and self._pending_starts[0] + eta - 1 <= time:
            start = self._pending_starts.pop(0)
            emitted.extend(self._run_window(start))
        self._evict(time)
        return emitted

    def finish(self) -> list[CoMovementPattern]:
        """Flush pending windows at end of stream."""
        emitted: list[CoMovementPattern] = []
        while self._pending_starts:
            emitted.extend(self._run_window(self._pending_starts.pop(0)))
        self._window.clear()
        return emitted

    def is_idle(self) -> bool:
        """True when no window is pending."""
        return not self._pending_starts

    def protected_oids(self) -> frozenset[int]:
        """Anchor plus every member of a still-open eta-window.

        While windows are pending, any retained partition member may
        yet complete a pattern, so all of them (and the anchor itself)
        are protected from shedding; once every window has run the
        anchor holds no partial matches and reports nothing.
        """
        if not self._pending_starts:
            return frozenset()
        members: set[int] = {self.anchor}
        for partition in self._window.values():
            members.update(partition)
        return frozenset(members)

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Descriptors for every member of a still-open eta-window.

        For each pending window start ``s`` and each member of the base
        partition ``P_s``, reports the member's trailing run of
        consecutive co-clustered snapshots ending at the last processed
        time, and how many snapshots the window can still absorb
        (``s + eta - 1 - now``).  Side-effect free: bit probes here do
        not touch the ``bitstrings_built`` work counter.
        """
        if not self._pending_starts or self._last_time is None:
            return ()
        eta = self.constraints.eta
        now = self._last_time
        out: list[tuple[int, int, int, int, int]] = []
        for start in self._pending_starts:
            base = self._window.get(start)
            if not base:
                continue
            observed = min(now, start + eta - 1)
            remaining = max(0, start + eta - 1 - now)
            for oid in sorted(base):
                ones = 0
                for t in range(observed, start - 1, -1):
                    partition = self._window.get(t)
                    if partition is not None and oid in partition:
                        ones += 1
                    else:
                        break
                out.append((self.anchor, oid, start, ones, remaining))
        return tuple(out)

    def snapshot_state(self) -> dict:
        """Window contents, pending starts and work counters as plain data."""
        return {
            "window": {
                t: tuple(sorted(self._window[t])) for t in sorted(self._window)
            },
            "pending_starts": list(self._pending_starts),
            "last_time": self._last_time,
            "bitstrings_built": self.bitstrings_built,
            "and_evaluations": self.and_evaluations,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._window = {
            t: frozenset(members) for t, members in payload["window"].items()
        }
        self._pending_starts = list(payload["pending_starts"])
        self._last_time = payload["last_time"]
        self.bitstrings_built = payload["bitstrings_built"]
        self.and_evaluations = payload["and_evaluations"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: retained window entries and pending starts."""
        return {
            "window_entries": len(self._window),
            "pending_windows": len(self._pending_starts),
        }

    def _evict(self, now: int) -> None:
        if not self._pending_starts:
            horizon = now - self.constraints.eta + 1
        else:
            horizon = self._pending_starts[0]
        for t in [t for t in self._window if t < horizon]:
            del self._window[t]

    def _build_bits(self, oid: int, start: int) -> int:
        """Definition 13 bit string of ``oid`` over ``[start, start+eta)``."""
        bits = 0
        for offset in range(self.constraints.eta):
            partition = self._window.get(start + offset)
            if partition and oid in partition:
                bits |= 1 << offset
        self.bitstrings_built += 1
        return bits

    def _run_window(self, start: int) -> list[CoMovementPattern]:
        base = self._window.get(start)
        if not base:
            return []
        c = self.constraints
        # Lines 2-8: bit strings, then the (K, L, G) candidate filter.
        candidate_bits: dict[int, int] = {}
        for oid in sorted(base):
            bits = self._build_bits(oid, start)
            if valid_sequences_of_bits(bits, start, c.k, c.l, c.g):
                candidate_bits[oid] = bits
        # Lines 9-17: seed at |O| = M - 1, grow valid patterns by candidates
        # with a strictly larger id (the Apriori Enumerator ordering).
        emitted, and_evaluations = enumerate_window(
            self.anchor, start, candidate_bits, c
        )
        self.and_evaluations += and_evaluations
        return emitted
