"""VBA — Variable-length Bit Compression based Algorithm (Section 6.3).

One variable-length bit string per trajectory per subtask, over *all*
times (Definition 14).  A string closes when G + 1 trailing zeros make any
extension impossible (Lemma 7); closed strings containing a valid
(K, L, G) sequence become candidates with maximal pattern time sequences
(Definition 15).  Each new candidate is enumerated against the global
candidate list, pruning combinations whose aligned window cannot hold K
times (Lemma 8).  Every snapshot is verified exactly once — the
latency-for-throughput trade the paper describes.

Two documented deviations from the paper's pseudocode (Algorithm 5):

* line 18 prunes when ``min(et) - max(st) < K``; the window *length* is
  ``min(et) - max(st) + 1``, so the literal formula would discard patterns
  whose valid sequence exactly fills a K-long window.  We prune on window
  length, which is the sound variant.
* candidates that close in the same round are merged into C one by one
  while the round is processed; the literal pseudocode (merge after the
  whole round, line 21) would never enumerate combinations of two
  same-round candidates — e.g. a cluster dissolving at once would lose all
  its patterns.
"""

from __future__ import annotations

from itertools import combinations

from repro.enumeration.base import AnchorEnumerator
from repro.enumeration.bitstring import (
    CLOSED_INVALID,
    CLOSED_VALID,
    ClosedBitString,
    VariableBitString,
    and_closed_strings,
    valid_sequences_of_bits,
)
from repro.model.constraints import PatternConstraints
from repro.model.pattern import CoMovementPattern


class VBAEnumerator(AnchorEnumerator):
    """Stateful per-anchor enumeration over variable-length bit strings."""

    def __init__(
        self,
        anchor: int,
        constraints: PatternConstraints,
        candidate_retention: int | None = None,
        sequences_fn=None,
    ):
        """``candidate_retention``: drop global candidates whose end time is
        more than this many time units in the past *and* that no future
        candidate can combine with (None = keep forever, the paper's
        semantics; see :meth:`enumerate_candidates` for the
        output-preservation argument).
        ``sequences_fn``: overrides the maximal-valid-sequence extraction
        used during enumeration (``(bits, start) -> sequences``, same
        contract as :func:`valid_sequences_of_bits` bound to the
        constraints); the batched kernels pass a memoized extractor,
        which is output-invariant because the decomposition is a pure
        function of ``(bits, start)``."""
        super().__init__(anchor, constraints)
        self.candidate_retention = candidate_retention
        if sequences_fn is None:
            sequences_fn = lambda bits, start: valid_sequences_of_bits(
                bits, start, constraints.k, constraints.l, constraints.g
            )
        self._sequences = sequences_fn
        self._open: dict[int, VariableBitString] = {}
        self._candidates: list[ClosedBitString] = []
        self._last_time: int | None = None
        # Work counters for the harness.
        self.candidates_created = 0
        self.and_evaluations = 0
        #: G-expired candidates dropped by the retention policy.
        self.candidates_evicted = 0

    def on_partition(
        self, time: int, members: frozenset[int]
    ) -> list[CoMovementPattern]:
        """Consume ``P_time(anchor)``: append bits, close strings, enumerate (Algorithm 5)."""
        if self._last_time is not None and time <= self._last_time:
            raise ValueError(
                f"times must increase: got {time} after {self._last_time}"
            )
        # Bit strings are positional: absent intermediate times are zeros.
        # Padding can itself close strings (Lemma 7 fires mid-gap), so the
        # closures it produces feed the same candidate round.
        closed: list = []
        if self._last_time is not None:
            for missing in range(self._last_time + 1, time):
                closed.extend(self._append_all(missing, frozenset()))
        self._last_time = time
        closed.extend(self._append_all(time, members))
        return self.enumerate_candidates(time, closed)

    def finish(self) -> list[CoMovementPattern]:
        """Force-close every open string and enumerate the late candidates."""
        c = self.constraints
        closed: list[ClosedBitString] = []
        for oid in sorted(self._open):
            string = self._open[oid]
            if string.bits and valid_sequences_of_bits(
                string.bits, string.start, c.k, c.l, c.g
            ):
                closed.append(string.trimmed().with_oid(oid))
        self._open.clear()
        return self.enumerate_closed(closed)

    def enumerate_closed(
        self, fresh: list[ClosedBitString]
    ) -> list[CoMovementPattern]:
        """One candidate round (lines 15-21) without retention pruning.

        Public entry point for the batched enumeration kernels
        (:mod:`repro.enumeration.kernels`), whose vectorized state machine
        produces the closed strings itself and uses this enumerator purely
        as the per-anchor candidate store + combination engine — the exact
        code path :meth:`on_partition` and :meth:`finish` run, so emitted
        patterns are bit-for-bit identical.
        """
        return self._process_candidates(fresh)

    def enumerate_candidates(
        self,
        time: int,
        fresh: list[ClosedBitString],
        earliest_open_start: int | None = None,
    ) -> list[CoMovementPattern]:
        """One full per-time candidate round: enumerate, then retention.

        Equivalent to the tail of :meth:`on_partition` at ``time``:
        enumerate the fresh candidates against the global list, merge
        them, and (when ``candidate_retention`` is set) evict candidates
        whose end time fell behind the horizon — pruning runs *after* the
        round, so the enumeration pool matches the paper's semantics.

        Eviction is *output-preserving*: besides being older than the
        horizon, a candidate is only dropped when no future candidate
        can combine with it under Lemma 8.  Every future closed string
        starts at or after the earliest currently-open string (strings
        opened later start later), so a candidate whose end cannot
        overlap that start by K times is provably dead — the retention
        knob bounds memory without ever dropping a confirmable pattern.

        ``earliest_open_start`` lets a batched kernel that keeps open
        strings outside this object (:mod:`repro.enumeration.kernels`)
        supply that bound; by default it is read from ``self._open``.
        """
        emitted = self._process_candidates(fresh)
        if self.candidate_retention is not None:
            horizon = time - self.candidate_retention
            if earliest_open_start is None:
                earliest_open_start = min(
                    (s.start for s in self._open.values()), default=time + 1
                )
            cutoff = min(
                horizon, earliest_open_start + self.constraints.k - 1
            )
            before = len(self._candidates)
            self._candidates = [
                c for c in self._candidates if c.end >= cutoff
            ]
            self.candidates_evicted += before - len(self._candidates)
        return emitted

    def is_idle(self) -> bool:
        """No open strings: zero-appends (even across a gap) are no-ops.

        ``on_partition`` pads skipped times with zeros for *open* strings
        only, so an idle VBA subtask can safely miss absence ticks — the
        global candidate list is inert until a new candidate closes.
        """
        return not self._open

    def protected_oids(self) -> frozenset[int]:
        """Anchor plus every object with an unclosed bit string.

        Open strings are the partial matches shedding must not starve:
        dropping a record for an open oid would flip a co-clustering
        bit to zero and could close (or invalidate) a string that was
        on its way to candidacy.  With no open strings the global
        candidate list is inert and nothing needs protection.
        """
        if not self._open:
            return frozenset()
        return frozenset({self.anchor, *self._open})

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Descriptors for every unclosed variable-length bit string.

        ``ones`` is the string's trailing run of consecutive
        co-clustered snapshots (zero the moment a gap opens);
        ``remaining`` is ``-1`` — a variable-length string has no
        horizon until Lemma 7 closes it.
        """
        out: list[tuple[int, int, int, int, int]] = []
        for oid in sorted(self._open):
            string = self._open[oid]
            if string.trailing_zeros or not string.length:
                ones = 0
            else:
                ones = 0
                for position in range(string.length - 1, -1, -1):
                    if string.bits >> position & 1:
                        ones += 1
                    else:
                        break
            out.append((self.anchor, oid, string.start, ones, -1))
        return tuple(out)

    def snapshot_state(self) -> dict:
        """Open strings, closed candidates and counters as plain data.

        Bit strings are Python ints, so multi-word (> 64 time) strings
        serialise exactly; closed candidates round-trip as
        ``(oid, start, end, bits)`` tuples.
        """
        return {
            "open": {
                oid: (s.start, s.bits, s.length, s.trailing_zeros)
                for oid, s in sorted(self._open.items())
            },
            "candidates": [
                (c.oid, c.start, c.end, c.bits) for c in self._candidates
            ],
            "last_time": self._last_time,
            "candidates_created": self.candidates_created,
            "and_evaluations": self.and_evaluations,
            "candidates_evicted": self.candidates_evicted,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._open = {
            oid: VariableBitString(
                start=start, bits=bits, length=length, trailing_zeros=tz
            )
            for oid, (start, bits, length, tz) in payload["open"].items()
        }
        self._candidates = [
            ClosedBitString(oid=oid, start=start, end=end, bits=bits)
            for oid, start, end, bits in payload["candidates"]
        ]
        self._last_time = payload["last_time"]
        self.candidates_created = payload["candidates_created"]
        self.and_evaluations = payload["and_evaluations"]
        self.candidates_evicted = payload["candidates_evicted"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: open strings, candidate pool, evictions."""
        return {
            "open_strings": len(self._open),
            "candidates": len(self._candidates),
            "candidates_evicted": self.candidates_evicted,
        }

    # ------------------------------------------------------------------ state

    def _append_all(
        self, time: int, members: frozenset[int]
    ) -> list[ClosedBitString]:
        """Lines 2-14 of Algorithm 5 for one time step."""
        c = self.constraints
        closed: list[ClosedBitString] = []
        leftover = set(members)
        for oid in list(self._open):
            string = self._open[oid]
            present = oid in leftover
            if present:
                leftover.discard(oid)
            string.append(present)
            tag = string.status(c.k, c.l, c.g)
            if tag == CLOSED_VALID:
                closed.append(string.trimmed().with_oid(oid))
                self.candidates_created += 1
                del self._open[oid]
            elif tag == CLOSED_INVALID:
                del self._open[oid]
        for oid in leftover:
            self._open[oid] = VariableBitString.opened_at(time)
        return closed

    # ------------------------------------------------------------ enumeration

    def _process_candidates(
        self, fresh: list[ClosedBitString]
    ) -> list[CoMovementPattern]:
        """Lines 15-21: enumerate each fresh candidate against C, then merge.

        Fresh candidates are merged one at a time so that same-round pairs
        are still enumerated (see the module docstring).
        """
        emitted: list[CoMovementPattern] = []
        for candidate in sorted(fresh, key=lambda s: (s.oid, s.start)):
            emitted.extend(self._enumerate_with(candidate))
            self._candidates.append(candidate)
        return emitted

    def _enumerate_with(
        self, new: ClosedBitString
    ) -> list[CoMovementPattern]:
        c = self.constraints
        # Lemma 8 (length-corrected): the aligned window of a combination
        # must be able to hold K times.
        pool = sorted(
            (
                other
                for other in self._candidates
                if other.oid != new.oid
                and min(other.end, new.end) - max(other.start, new.start) + 1
                >= c.k
            ),
            key=lambda s: (s.oid, s.start),
        )
        emitted: list[CoMovementPattern] = []
        min_extra = c.m - 2  # members besides the new candidate (and anchor)
        if min_extra > len(pool):
            return emitted

        frontier: list[tuple[tuple[ClosedBitString, ...], int]] = []
        if min_extra == 0:
            sequences = self._sequences(new.bits, new.start)
            # A closed candidate is valid by construction; emit the pair
            # pattern {anchor, new} and use it as the growth seed.
            emitted.append(
                CoMovementPattern.of((self.anchor, new.oid), sequences[0])
            )
            frontier.append(((), -1))
        else:
            for seed_indices in combinations(range(len(pool)), min_extra):
                seed = tuple(pool[i] for i in seed_indices)
                if len({s.oid for s in seed}) != len(seed):
                    continue
                result = and_closed_strings([new, *seed])
                self.and_evaluations += 1
                if result is None:
                    continue
                bits, window_start = result
                sequences = self._sequences(bits, window_start)
                if sequences:
                    oids = (self.anchor, new.oid, *(s.oid for s in seed))
                    emitted.append(CoMovementPattern.of(oids, sequences[0]))
                    frontier.append((seed, seed_indices[-1]))

        while frontier:
            grown: list[tuple[tuple[ClosedBitString, ...], int]] = []
            for seed, last_index in frontier:
                used_oids = {s.oid for s in seed} | {new.oid}
                for index in range(last_index + 1, len(pool)):
                    extra = pool[index]
                    if extra.oid in used_oids:
                        continue
                    result = and_closed_strings([new, *seed, extra])
                    self.and_evaluations += 1
                    if result is None:
                        continue
                    bits, window_start = result
                    sequences = self._sequences(bits, window_start)
                    if sequences:
                        extended = seed + (extra,)
                        oids = (
                            self.anchor,
                            new.oid,
                            *(s.oid for s in extended),
                        )
                        emitted.append(
                            CoMovementPattern.of(oids, sequences[0])
                        )
                        grown.append((extended, index))
            frontier = grown
        return emitted
