"""Id-based partitioning (Section 6.1).

Star partitioning of SPARE cannot work online (related trajectories are
unknown in advance), so the paper keys the enumeration subtasks by
trajectory id: subtask ``o`` receives ``P_t(o)``, the *larger-id* members
of ``o``'s cluster at time ``t``.  Every pattern ``S`` is then found
exactly once — at the subtask of ``min(S)``.  Lemma 3 discards clusters
smaller than the significance constraint M up front.
"""

from __future__ import annotations

from typing import Iterator

from repro.model.snapshot import ClusterSnapshot


def id_partitions(
    snapshot: ClusterSnapshot, significance: int
) -> dict[int, frozenset[int]]:
    """``P_t(o)`` for every anchor ``o`` in one cluster snapshot.

    Args:
        snapshot: the clusters at one time.
        significance: the M constraint; clusters with fewer members are
            dropped (Lemma 3).

    Returns:
        anchor oid -> frozenset of strictly larger co-cluster member ids.
        Anchors whose partition would be empty (the cluster maximum) are
        included with an empty set only if they appear in a valid cluster,
        since their subtask state may need the "still clustered" signal.
    """
    partitions: dict[int, frozenset[int]] = {}
    for members in snapshot.clusters.values():
        if len(members) < significance:
            continue
        ordered = sorted(members)
        for position, anchor in enumerate(ordered):
            partitions[anchor] = frozenset(ordered[position + 1 :])
    return partitions


class PartitionRouter:
    """Streams cluster snapshots into per-anchor partition sequences.

    The router mirrors the keyed exchange in front of the enumeration
    subtasks: :meth:`route` yields ``(anchor, members)`` for the current
    time, including an *empty* partition for every anchor that has appeared
    before but is absent now — enumerator state machines (VBA's appends,
    FBA's windows) need the explicit absence signal.
    """

    def __init__(self, significance: int):
        if significance < 2:
            raise ValueError(f"significance must be >= 2, got {significance}")
        self.significance = significance
        self._known_anchors: set[int] = set()

    def route(
        self, snapshot: ClusterSnapshot
    ) -> Iterator[tuple[int, frozenset[int]]]:
        """Yield ``(anchor, members)`` for the snapshot, including empties for known anchors."""
        current = id_partitions(snapshot, self.significance)
        for anchor, members in current.items():
            if members:
                self._known_anchors.add(anchor)
        empty = frozenset()
        for anchor in sorted(self._known_anchors | set(current)):
            yield anchor, current.get(anchor, empty)
