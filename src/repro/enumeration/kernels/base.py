"""The pattern-enumeration kernel contract (the PED phase's strategy).

Pattern enumeration — id-based partition records in, co-movement patterns
out — is the second hot path of the ICPE framework (the PED phase of
Fig. 3; Figs. 12-15 all sweep it).  Once snapshot clustering is
vectorized (:mod:`repro.kernels`), the per-anchor bit-string state
machines of Section 6 dominate the remaining per-snapshot cost.  An
*enumeration kernel* is one interchangeable implementation strategy for
a whole enumerate subtask: it consumes every partition record routed to
the subtask for one snapshot at once, maintains the membership bit
strings of all hosted anchors, and emits the confirmed
:class:`~repro.model.pattern.CoMovementPattern` instances.

Two strategies ship with the repository:

* ``python`` (:mod:`repro.enumeration.kernels.python_ref`) — the
  reference path: one :class:`~repro.enumeration.base.AnchorEnumerator`
  state machine (BA / FBA / VBA) per anchor, driven record by record
  exactly like :class:`~repro.core.operators.EnumerateOperator` drives
  them.  Supports every enumerator and is the default.
* ``numpy`` (:mod:`repro.enumeration.kernels.numpy_kernel`) — batches
  all anchors of the subtask into contiguous membership bitmaps
  (per-anchor bit columns packed into uint64 words) and vectorizes the
  bit-string maintenance: batched window builds and candidate screens
  for FBA, vectorized appends and Lemma-7 trailing-zero closing for VBA.
  Supports the bit-compression enumerators (``fba`` / ``vba``).

Every kernel must produce the *identical* pattern stream for the same
record stream: the vectorized layers only build bit strings and screen
candidates with necessary conditions — the exact validity predicate
(:func:`~repro.enumeration.bitstring.valid_sequences_of_bits`) and the
combination growth (:func:`~repro.enumeration.fba.enumerate_window`,
:meth:`~repro.enumeration.vba.VBAEnumerator.enumerate_closed`) are the
very same code the reference enumerators run, so emitted patterns are
bit-for-bit identical per anchor, and anchors never collide across
subtasks (every pattern's smallest object id *is* its anchor).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.model.pattern import CoMovementPattern

#: One snapshot's partition records for a subtask: ``(anchor, members)``
#: in arrival order, ``members`` being the strictly-larger-id co-cluster
#: members of the anchor (possibly empty — the explicit absence signal).
Partitions = Sequence[tuple[int, frozenset[int]]]


class EnumerationKernel(ABC):
    """One pattern-enumeration strategy for a whole enumerate subtask.

    Attributes:
        name: registry name of the strategy (``"python"``, ``"numpy"``).
    """

    name: str = "abstract"

    @abstractmethod
    def on_snapshot(
        self, time: int, partitions: Partitions
    ) -> list[CoMovementPattern]:
        """Consume one snapshot's partition records; return new patterns.

        ``partitions`` holds every record routed to this subtask for
        ``time``; anchors the kernel has seen before but that received no
        record are treated as absent (their bit strings append a zero /
        their windows advance), exactly like the reference operator's
        absence tick.  Times must arrive in strictly increasing order.
        """

    @abstractmethod
    def finish(self) -> list[CoMovementPattern]:
        """Flush end-of-stream state (pending windows, open bit strings)."""

    def protected_oids(self) -> frozenset[int]:
        """Oids participating in any hosted partial match (shed-protected).

        The union over every hosted anchor of the objects inside an
        open FBA window or an unclosed VBA bit string — the records
        the load shedder must not drop.  Kernels without partial-match
        state report nothing and leave every record sheddable.
        """
        return frozenset()

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Forming-candidate descriptors of every hosted partial match.

        The concatenation, sorted by ``(anchor, oid, start)``, of each
        hosted anchor's ``(anchor, oid, start, ones, remaining)``
        descriptors (see
        :meth:`repro.enumeration.base.AnchorEnumerator.forming_candidates`)
        — the prediction scorer's input.  Kernels without forming state
        report nothing.
        """
        return ()

    def snapshot_state(self) -> dict:
        """Serializable payload capturing the kernel's bit-string state.

        Both shipped kernels implement the pair; a third-party kernel
        without it makes the hosting stage's checkpoint fail loudly
        rather than silently dropping its state.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state snapshots"
        )

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting (entry counts); empty for unknown kernels."""
        return {}
