"""Reference enumeration kernel: per-anchor state machines, batched API.

``PythonEnumerationKernel`` hosts one
:class:`~repro.enumeration.base.AnchorEnumerator` per anchor and drives
it exactly like :class:`~repro.core.operators.EnumerateOperator` does —
records in arrival order, then the absence tick for every known
non-idle anchor — so wrapping the reference path behind the batched
:class:`~repro.enumeration.kernels.base.EnumerationKernel` contract
changes nothing about what is emitted or when.
"""

from __future__ import annotations

from typing import Callable

from repro.enumeration.base import AnchorEnumerator
from repro.enumeration.kernels.base import EnumerationKernel, Partitions
from repro.model.constraints import PatternConstraints
from repro.model.pattern import CoMovementPattern


def anchor_enumerator_factory(
    enumerator: str,
    constraints: PatternConstraints,
    *,
    ba_max_partition_size: int = 20,
    vba_candidate_retention: int | None = None,
) -> Callable[[int], AnchorEnumerator]:
    """Per-anchor state-machine factory for the named enumerator.

    The single construction point for per-anchor enumerator instances,
    shared by :func:`repro.core.operators.make_enumerator_factory`, the
    reference enumeration kernel and the bench harness.  Names resolve
    through the plugin registry (kind ``"enumerator"``), so third-party
    enumerators registered via the ``repro.plugins`` entry-point group
    are hosted by the reference enumeration path without any change
    here.
    """
    from repro.registry import default_registry

    spec = default_registry().get("enumerator", enumerator)
    return lambda anchor: spec.create(
        anchor,
        constraints,
        ba_max_partition_size=ba_max_partition_size,
        vba_candidate_retention=vba_candidate_retention,
    )


class PythonEnumerationKernel(EnumerationKernel):
    """The reference AnchorEnumerator path behind the batched contract."""

    name = "python"

    def __init__(self, factory: Callable[[int], AnchorEnumerator]):
        self._factory = factory
        self._enumerators: dict[int, AnchorEnumerator] = {}

    def on_snapshot(
        self, time: int, partitions: Partitions
    ) -> list[CoMovementPattern]:
        """Route records to their anchors, then tick the absent ones."""
        out: list[CoMovementPattern] = []
        received: set[int] = set()
        for anchor, members in partitions:
            enumerator = self._enumerators.get(anchor)
            if enumerator is None:
                enumerator = self._enumerators[anchor] = self._factory(anchor)
            received.add(anchor)
            out.extend(enumerator.on_partition(time, members))
        for anchor, enumerator in self._enumerators.items():
            if anchor in received or enumerator.is_idle():
                continue
            out.extend(enumerator.on_partition(time, frozenset()))
        return out

    def finish(self) -> list[CoMovementPattern]:
        """Flush every hosted enumerator at end of stream."""
        out: list[CoMovementPattern] = []
        for anchor in sorted(self._enumerators):
            out.extend(self._enumerators[anchor].finish())
        return out

    def protected_oids(self) -> frozenset[int]:
        """Union of every hosted enumerator's protected set."""
        protected: set[int] = set()
        for enumerator in self._enumerators.values():
            protected.update(enumerator.protected_oids())
        return frozenset(protected)

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Sorted concatenation of every hosted enumerator's descriptors."""
        out: list[tuple[int, int, int, int, int]] = []
        for anchor in sorted(self._enumerators):
            out.extend(self._enumerators[anchor].forming_candidates())
        return tuple(sorted(out))

    def snapshot_state(self) -> dict:
        """Per-anchor enumerator payloads, keyed by anchor id."""
        return {
            "anchors": {
                anchor: self._enumerators[anchor].snapshot_state()
                for anchor in sorted(self._enumerators)
            }
        }

    def restore_state(self, payload: dict) -> None:
        """Rebuild each anchor's enumerator through the factory, then
        hand it its captured payload."""
        self._enumerators = {}
        for anchor, sub_payload in payload["anchors"].items():
            enumerator = self._factory(anchor)
            enumerator.restore_state(sub_payload)
            self._enumerators[anchor] = enumerator

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: hosted anchors plus summed enumerator metrics."""
        metrics = {"anchors": len(self._enumerators)}
        for enumerator in self._enumerators.values():
            for key, value in enumerator.state_metrics().items():
                metrics[key] = metrics.get(key, 0) + value
        return metrics
