"""NumPy-vectorized pattern enumeration (the ``numpy`` kernel strategy).

The per-anchor bit-string state machines of Section 6 (FBA's
Definition-13 windows, VBA's Definition-14 variable strings) spend most
of their time on membership bookkeeping: one Python dict probe per
(anchor, trajectory, time) to build a bit, one Python object walk per
string per time to append and check Lemma 7.  This kernel batches *all*
anchors hosted by one enumerate subtask into contiguous arrays:

1. **Pack** — each snapshot's partition records flatten into a single
   sorted int64 key array (``anchor << 32 | oid``), so every membership
   question becomes one :func:`numpy.searchsorted` probe.
2. **Membership bitmaps** — bit strings live in a ``(rows, words)``
   uint64 matrix, one row per (anchor, trajectory) pair, bit ``j`` of
   the row covering time ``start + j`` (multi-word rows support windows
   and open strings longer than 64 times).
3. **FBA** — when windows complete, every due (anchor, member) row is
   built in one pass per window column, and a vectorized popcount
   screen (``popcount >= K`` is necessary for any valid sequence)
   discards non-candidates before the exact predicate runs.
4. **VBA** — appends are one vectorized scatter per snapshot; the
   Lemma-7 closing condition (``G + 1`` trailing zeros) is one array
   compare; only rows that actually close are screened and exact-checked.
5. **Batched sequence extraction** — the Definition-15 decomposition of
   a bit string into maximal valid sequences is evaluated once per
   distinct ``(bits, start)`` across the whole batch
   (:class:`_SequenceCache`): co-moving groups make the combination
   growth re-derive the same ANDed strings tens of times, and the
   decomposition is a pure function, so memoization is output-invariant.

The emitted pattern stream is bit-for-bit identical to the reference
kernel: the vectorized layers only *build* bit strings and *screen*
candidates with necessary conditions — the exact validity predicate
(:func:`~repro.enumeration.bitstring.valid_sequences_of_bits`), FBA's
apriori growth (:func:`~repro.enumeration.fba.enumerate_window`) and
VBA's candidate rounds
(:meth:`~repro.enumeration.vba.VBAEnumerator.enumerate_candidates`) are
the same code the reference path runs, in the same per-anchor order.

NumPy is an *optional* dependency: this module imports without it, and
constructing the kernel raises a clear error when it is missing.
"""

from __future__ import annotations

from repro.enumeration.bitstring import ClosedBitString, valid_sequences_of_bits
from repro.enumeration.fba import enumerate_window
from repro.enumeration.kernels.base import EnumerationKernel, Partitions
from repro.enumeration.vba import VBAEnumerator
from repro.model.constraints import PatternConstraints
from repro.model.pattern import CoMovementPattern

try:  # pragma: no cover - exercised only on numpy-less hosts
    import numpy as np
except ModuleNotFoundError:  # pragma: no cover
    np = None

#: Enumerators with a batched bitmap form.  BA has none: it materialises
#: explicit subsets instead of per-trajectory bit strings, so there is
#: nothing column-shaped to vectorize.
BITMAP_ENUMERATORS = ("fba", "vba")

_ID_BITS = 31  # anchors and oids must fit the packed int64 key


def numpy_available() -> bool:
    """Whether the optional NumPy dependency is importable."""
    return np is not None


def _check_ids(anchor: int, oids) -> None:
    """Packed keys hold ``anchor << 32 | oid`` in int64; refuse overflow."""
    if anchor >> _ID_BITS or (oids.size and int(oids.max()) >> _ID_BITS):
        raise ValueError(
            "trajectory ids must fit 31 bits for the numpy enumeration "
            "kernel's packed keys; use enumeration_kernel='python' for "
            "this workload"
        )


def _isin_sorted(sorted_keys, queries):
    """Boolean membership of ``queries`` in an ascending key array."""
    if sorted_keys.size == 0:
        return np.zeros(queries.shape, dtype=bool)
    pos = np.searchsorted(sorted_keys, queries)
    pos = np.minimum(pos, sorted_keys.size - 1)
    return sorted_keys[pos] == queries


if np is not None and hasattr(np, "bitwise_count"):

    def _popcount_rows(words):
        """Set-bit count per row of a uint64 word matrix."""
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - numpy < 2.0 fallback

    def _popcount_rows(words):
        """Set-bit count per row of a uint64 word matrix."""
        as_bytes = words.view(np.uint8).reshape(words.shape[0], -1)
        return np.unpackbits(as_bytes, axis=1).sum(axis=1, dtype=np.int64)


def _words_to_int(row) -> int:
    """One bitmap row (little-endian uint64 words) as a Python int."""
    return int.from_bytes(row.astype("<u8").tobytes(), "little")


class _SequenceCache:
    """Memoized maximal-valid-sequence extraction for a batch of anchors.

    The combination growth evaluates the same ANDed bit strings over and
    over — co-moving groups produce near-identical membership strings, so
    one subtask's windows routinely repeat a few hundred distinct values
    tens of times each.  The decomposition into maximal valid sequences
    (Definition 15) is a pure function of ``(bits, start)``, so caching
    it is output-invariant; the returned lists are treated as immutable
    by every caller.  A size cap bounds memory on unbounded streams (the
    cache resets wholesale — repeated values repopulate it immediately).
    """

    def __init__(self, constraints: PatternConstraints, max_entries: int = 1 << 16):
        self._constraints = constraints
        self._max_entries = max_entries
        self._cache: dict[tuple[int, int], list] = {}
        self.calls = 0
        self.misses = 0

    def __call__(self, bits: int, start: int) -> list:
        self.calls += 1
        key = (bits, start)
        hit = self._cache.get(key)
        if hit is None:
            if len(self._cache) >= self._max_entries:
                self._cache.clear()
            c = self._constraints
            self.misses += 1
            hit = self._cache[key] = valid_sequences_of_bits(
                bits, start, c.k, c.l, c.g
            )
        return hit


# ------------------------------------------------------------------ FBA batch


class _FBAWindows:
    """Batched Definition-13 windows for every anchor of one subtask.

    Mirrors :class:`~repro.enumeration.fba.FBAEnumerator` semantics: a
    non-empty partition at time ``s`` opens the window ``[s, s + eta)``
    for its anchor, the window runs once time reaches ``s + eta - 1``,
    and enumeration sees exactly the candidate bit strings the reference
    builds — here built column-wise for all due anchors at once.
    """

    def __init__(
        self, constraints: PatternConstraints, sequences_fn: _SequenceCache
    ):
        self.constraints = constraints
        self.sequences_fn = sequences_fn
        self.eta = constraints.eta
        self.words = (self.eta + 63) // 64
        #: time -> sorted packed (anchor, oid) keys of that snapshot.
        self._time_keys: dict[int, "np.ndarray"] = {}
        #: window start -> [(anchor, sorted member oids)], insertion order.
        self._pending: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
        self.rows_built = 0
        self.and_evaluations = 0

    def on_snapshot(
        self, time: int, partitions: Partitions, keys
    ) -> list[CoMovementPattern]:
        """Record the snapshot, run every window that completed."""
        if keys.size:
            self._time_keys[time] = keys
        entries = [
            (anchor, tuple(sorted(members)))
            for anchor, members in partitions
            if members
        ]
        if entries:
            self._pending[time] = entries
        emitted: list[CoMovementPattern] = []
        for start in sorted(self._pending):
            if start + self.eta - 1 > time:
                break
            emitted.extend(self._run_start(start))
        horizon = min(self._pending) if self._pending else time - self.eta + 1
        for stale in [t for t in self._time_keys if t < horizon]:
            del self._time_keys[stale]
        return emitted

    def finish(self) -> list[CoMovementPattern]:
        """Run every still-pending window (bounded evaluation only)."""
        emitted: list[CoMovementPattern] = []
        for start in sorted(self._pending):
            emitted.extend(self._run_start(start))
        self._time_keys.clear()
        return emitted

    def protected_oids(self) -> frozenset[int]:
        """Anchors and members of every still-pending window.

        Mirrors :meth:`FBAEnumerator.protected_oids`: while windows are
        pending, the opening partitions (``_pending``) and every
        retained snapshot's packed keys (``_time_keys``) may yet
        complete a pattern; with nothing pending the batch holds no
        partial matches.
        """
        if not self._pending:
            return frozenset()
        protected: set[int] = set()
        for entries in self._pending.values():
            for anchor, members in entries:
                protected.add(anchor)
                protected.update(members)
        for keys in self._time_keys.values():
            protected.update(
                int(a) for a in np.unique(keys >> np.int64(32))
            )
            protected.update(
                int(o) for o in np.unique(keys & np.int64(0xFFFFFFFF))
            )
        return frozenset(protected)

    def forming_candidates(
        self, now: int
    ) -> tuple[tuple[int, int, int, int, int], ...]:
        """Descriptors of every member of a still-pending window.

        Mirrors :meth:`FBAEnumerator.forming_candidates` over the
        batched state: per pending start and opening-partition member,
        the trailing run of co-clustered snapshots ending at ``now``
        (probed against the retained packed key arrays) and the window
        slots still to come.
        """
        out: list[tuple[int, int, int, int, int]] = []
        for start in sorted(self._pending):
            observed = min(now, start + self.eta - 1)
            remaining = max(0, start + self.eta - 1 - now)
            for anchor, members in self._pending[start]:
                for oid in members:
                    row_key = np.array([(anchor << 32) | oid], dtype=np.int64)
                    ones = 0
                    for t in range(observed, start - 1, -1):
                        keys = self._time_keys.get(t)
                        if keys is not None and bool(
                            _isin_sorted(keys, row_key)[0]
                        ):
                            ones += 1
                        else:
                            break
                    out.append((anchor, oid, start, ones, remaining))
        return tuple(sorted(out))

    def snapshot_state(self) -> dict:
        """Key arrays as raw bytes plus pending windows and counters."""
        return {
            "time_keys": {
                t: self._time_keys[t].tobytes()
                for t in sorted(self._time_keys)
            },
            "pending": {
                t: list(self._pending[t]) for t in sorted(self._pending)
            },
            "rows_built": self.rows_built,
            "and_evaluations": self.and_evaluations,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._time_keys = {
            t: np.frombuffer(data, dtype=np.int64).copy()
            for t, data in payload["time_keys"].items()
        }
        self._pending = {
            t: [
                (anchor, tuple(members))
                for anchor, members in entries
            ]
            for t, entries in payload["pending"].items()
        }
        self.rows_built = payload["rows_built"]
        self.and_evaluations = payload["and_evaluations"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: retained key snapshots and pending windows."""
        return {
            "window_entries": len(self._time_keys),
            "pending_windows": len(self._pending),
        }

    def _run_start(self, start: int) -> list[CoMovementPattern]:
        """Build all bitmaps of one window start; screen; enumerate."""
        entries = self._pending.pop(start)
        sizes = [len(members) for _, members in entries]
        anchors = np.repeat(
            np.array([anchor for anchor, _ in entries], dtype=np.int64), sizes
        )
        oids = np.array(
            [oid for _, members in entries for oid in members], dtype=np.int64
        )
        row_keys = (anchors << np.int64(32)) | oids
        n = row_keys.size
        bits = np.zeros((n, self.words), dtype=np.uint64)
        for offset in range(self.eta):
            keys = self._time_keys.get(start + offset)
            if keys is None:
                continue
            present = _isin_sorted(keys, row_keys)
            if present.any():
                bits[present, offset >> 6] |= np.uint64(1 << (offset & 63))
        self.rows_built += n
        c = self.constraints
        survivor = _popcount_rows(bits) >= c.k  # necessary for validity

        emitted: list[CoMovementPattern] = []
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        for index, (anchor, _members) in enumerate(entries):
            candidate_bits: dict[int, int] = {}
            for row in range(int(bounds[index]), int(bounds[index + 1])):
                if not survivor[row]:
                    continue
                value = _words_to_int(bits[row])
                if self.sequences_fn(value, start):
                    candidate_bits[int(oids[row])] = value
            patterns, ands = enumerate_window(
                anchor, start, candidate_bits, c,
                sequences_fn=self.sequences_fn,
            )
            self.and_evaluations += ands
            emitted.extend(patterns)
        return emitted


# ------------------------------------------------------------------ VBA batch


class _VBAStrings:
    """Batched Definition-14 variable strings for one subtask's anchors.

    Open strings across *all* anchors live in parallel arrays (packed
    key, start, length, trailing zeros) plus one uint64 bitmap matrix
    whose word count grows with the longest open string.  Appends,
    Lemma-7 closing and new-string opening are single vectorized passes
    per time step; each closed-and-valid string feeds the per-anchor
    candidate round of a plain :class:`VBAEnumerator` shell, whose
    global candidate list and Lemma-8 combination growth are exactly
    the reference code path.
    """

    def __init__(
        self,
        constraints: PatternConstraints,
        sequences_fn: _SequenceCache,
        candidate_retention: int | None = None,
    ):
        self.constraints = constraints
        self.sequences_fn = sequences_fn
        self.candidate_retention = candidate_retention
        self._keys = np.empty(0, dtype=np.int64)
        self._start = np.empty(0, dtype=np.int64)
        self._length = np.empty(0, dtype=np.int64)
        self._tz = np.empty(0, dtype=np.int64)
        self._bits = np.empty((0, 1), dtype=np.uint64)
        self._shells: dict[int, VBAEnumerator] = {}
        self._last_time: int | None = None
        self.candidates_created = 0

    @property
    def and_evaluations(self) -> int:
        """AND combinations evaluated across every anchor's shell."""
        return sum(shell.and_evaluations for shell in self._shells.values())

    def on_snapshot(
        self, time: int, partitions: Partitions, keys
    ) -> list[CoMovementPattern]:
        """Advance all strings one (or more, padding gaps) time steps."""
        # Anchors the reference would process this snapshot: a record
        # arrived, or open state exists (the non-idle absence tick).
        # Only this set gets the post-round retention pruning, so it is
        # not worth computing under the default keep-forever semantics.
        active: set[int] = set()
        if self.candidate_retention is not None:
            active = {anchor for anchor, _ in partitions}
            if self._keys.size:
                active.update(
                    int(a) for a in np.unique(self._keys >> np.int64(32))
                )
        closed: dict[int, list[ClosedBitString]] = {}
        empty = np.empty(0, dtype=np.int64)
        if self._last_time is not None:
            # Bit strings are positional: skipped snapshot times append
            # zeros, and Lemma 7 may fire mid-gap — those closures join
            # the same candidate round (reference on_partition padding).
            for missing in range(self._last_time + 1, time):
                self._advance(missing, empty, closed)
        self._last_time = time
        self._advance(time, keys, closed)

        emitted: list[CoMovementPattern] = []
        for anchor in sorted(closed):
            emitted.extend(
                self._shell(anchor).enumerate_candidates(
                    time,
                    closed[anchor],
                    earliest_open_start=self._earliest_open_start(
                        anchor, time
                    ),
                )
            )
        if self.candidate_retention is not None:
            for anchor in sorted(active - set(closed)):
                shell = self._shells.get(anchor)
                if shell is not None:
                    shell.enumerate_candidates(
                        time,
                        [],
                        earliest_open_start=self._earliest_open_start(
                            anchor, time
                        ),
                    )
        return emitted

    def _earliest_open_start(self, anchor: int, time: int) -> int:
        """Start of this anchor's oldest open string (rows live here, not
        in the shell), bounding the shell's output-preserving eviction."""
        if self._keys.size:
            mask = (self._keys >> np.int64(32)) == anchor
            if mask.any():
                return int(self._start[mask].min())
        return time + 1

    def finish(self) -> list[CoMovementPattern]:
        """Force-close every open string; run the late candidate rounds."""
        c = self.constraints
        by_anchor: dict[int, list[int]] = {}
        for row in range(self._keys.size):
            by_anchor.setdefault(int(self._keys[row]) >> 32, []).append(row)
        emitted: list[CoMovementPattern] = []
        survivor = (
            _popcount_rows(self._bits) >= c.k
            if self._keys.size
            else np.empty(0, dtype=bool)
        )
        for anchor in sorted(by_anchor):
            closed: list[ClosedBitString] = []
            for row in by_anchor[anchor]:
                if not survivor[row]:
                    continue
                value = _words_to_int(self._bits[row])
                start = int(self._start[row])
                if not self.sequences_fn(value, start):
                    continue
                closed.append(
                    ClosedBitString(
                        oid=int(self._keys[row]) & 0xFFFFFFFF,
                        start=start,
                        end=start + value.bit_length() - 1,
                        bits=value,
                    )
                )
            emitted.extend(self._shell(anchor).enumerate_closed(closed))
        self._keys = np.empty(0, dtype=np.int64)
        self._start = np.empty(0, dtype=np.int64)
        self._length = np.empty(0, dtype=np.int64)
        self._tz = np.empty(0, dtype=np.int64)
        self._bits = np.empty((0, 1), dtype=np.uint64)
        return emitted

    def _shell(self, anchor: int) -> VBAEnumerator:
        shell = self._shells.get(anchor)
        if shell is None:
            shell = self._shells[anchor] = VBAEnumerator(
                anchor,
                self.constraints,
                candidate_retention=self.candidate_retention,
                sequences_fn=self.sequences_fn,
            )
        return shell

    def protected_oids(self) -> frozenset[int]:
        """Anchors and oids of every unclosed bit string.

        Mirrors :meth:`VBAEnumerator.protected_oids` over the batched
        row arrays: both halves of each packed open-string key are
        protected (shells hold only closed candidates, which need no
        protection — dropping a record cannot un-close a string).
        """
        if not self._keys.size:
            return frozenset()
        protected = {
            int(a) for a in np.unique(self._keys >> np.int64(32))
        }
        protected.update(
            int(o) for o in np.unique(self._keys & np.int64(0xFFFFFFFF))
        )
        return frozenset(protected)

    def forming_candidates(
        self, now: int
    ) -> tuple[tuple[int, int, int, int, int], ...]:
        """Descriptors of every unclosed row (``now`` is unused here).

        Mirrors :meth:`VBAEnumerator.forming_candidates` over the
        batched row arrays: the trailing-ones run is read from each
        row's bitmap (zero as soon as trailing zeros accumulate) and
        ``remaining`` is ``-1`` — variable strings have no horizon.
        """
        out: list[tuple[int, int, int, int, int]] = []
        for row in range(self._keys.size):
            key = int(self._keys[row])
            tz = int(self._tz[row])
            length = int(self._length[row])
            if tz or not length:
                ones = 0
            else:
                value = _words_to_int(self._bits[row])
                ones = 0
                for position in range(length - 1, -1, -1):
                    if value >> position & 1:
                        ones += 1
                    else:
                        break
            out.append(
                (key >> 32, key & 0xFFFFFFFF, int(self._start[row]), ones, -1)
            )
        return tuple(sorted(out))

    def snapshot_state(self) -> dict:
        """Parallel arrays as raw bytes plus per-anchor shell payloads.

        The uint64 bitmap matrix serialises with its word width so
        multi-word (> 64 time) open strings restore exactly; shells
        round-trip through :meth:`VBAEnumerator.snapshot_state` and are
        rebuilt with the kernel's shared memoized sequence extractor.
        """
        return {
            "keys": self._keys.tobytes(),
            "start": self._start.tobytes(),
            "length": self._length.tobytes(),
            "tz": self._tz.tobytes(),
            "bits": (self._bits.tobytes(), self._bits.shape[1]),
            "shells": {
                anchor: self._shells[anchor].snapshot_state()
                for anchor in sorted(self._shells)
            },
            "last_time": self._last_time,
            "candidates_created": self.candidates_created,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._keys = np.frombuffer(payload["keys"], dtype=np.int64).copy()
        self._start = np.frombuffer(payload["start"], dtype=np.int64).copy()
        self._length = np.frombuffer(payload["length"], dtype=np.int64).copy()
        self._tz = np.frombuffer(payload["tz"], dtype=np.int64).copy()
        bits_data, words = payload["bits"]
        self._bits = (
            np.frombuffer(bits_data, dtype=np.uint64)
            .reshape(self._keys.size, words)
            .copy()
            if self._keys.size
            else np.empty((0, max(words, 1)), dtype=np.uint64)
        )
        self._shells = {}
        for anchor, shell_payload in payload["shells"].items():
            shell = self._shell(anchor)
            shell.restore_state(shell_payload)
        self._last_time = payload["last_time"]
        self.candidates_created = payload["candidates_created"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: open rows, bitmap words, shell candidates."""
        metrics = {
            "open_strings": int(self._keys.size),
            "bitmap_words": int(self._bits.size),
            "anchors": len(self._shells),
        }
        for shell in self._shells.values():
            for key, value in shell.state_metrics().items():
                if key == "open_strings":
                    continue  # shells never hold open state here
                metrics[key] = metrics.get(key, 0) + value
        return metrics

    def _advance(
        self,
        time: int,
        snap_keys,
        closed_out: dict[int, list[ClosedBitString]],
    ) -> None:
        """One time step: append to open strings, close, open new ones."""
        c = self.constraints
        n = self._keys.size
        if n:
            present = _isin_sorted(snap_keys, self._keys)
            need_words = int(self._length.max() >> 6) + 1
            if need_words > self._bits.shape[1]:
                pad = np.zeros(
                    (n, need_words - self._bits.shape[1]), dtype=np.uint64
                )
                self._bits = np.concatenate([self._bits, pad], axis=1)
            rows = np.flatnonzero(present)
            if rows.size:
                words = self._length[rows] >> 6
                masks = np.left_shift(
                    np.uint64(1), (self._length[rows] & 63).astype(np.uint64)
                )
                self._bits[rows, words] |= masks
            self._tz = np.where(present, 0, self._tz + 1)
            self._length += 1
            closing = self._tz == c.g + 1  # Lemma 7: no extension possible
            if closing.any():
                self._close_rows(np.flatnonzero(closing), closed_out)
                keep = ~closing
                self._keys = self._keys[keep]
                self._start = self._start[keep]
                self._length = self._length[keep]
                self._tz = self._tz[keep]
                self._bits = self._bits[keep]
        if snap_keys.size:
            if self._keys.size:
                fresh = snap_keys[
                    ~_isin_sorted(np.sort(self._keys), snap_keys)
                ]
            else:
                fresh = snap_keys
            if fresh.size:
                self._keys = np.concatenate([self._keys, fresh])
                self._start = np.concatenate(
                    [self._start, np.full(fresh.size, time, dtype=np.int64)]
                )
                self._length = np.concatenate(
                    [self._length, np.ones(fresh.size, dtype=np.int64)]
                )
                self._tz = np.concatenate(
                    [self._tz, np.zeros(fresh.size, dtype=np.int64)]
                )
                opened = np.zeros(
                    (fresh.size, self._bits.shape[1]), dtype=np.uint64
                )
                opened[:, 0] = 1
                self._bits = np.concatenate([self._bits, opened])

    def _close_rows(
        self, rows, closed_out: dict[int, list[ClosedBitString]]
    ) -> None:
        """Screen closing rows; exact-check survivors into candidates."""
        c = self.constraints
        screen = _popcount_rows(self._bits[rows]) >= c.k
        for row, passed in zip(rows.tolist(), screen.tolist()):
            if not passed:
                continue
            value = _words_to_int(self._bits[row])
            start = int(self._start[row])
            if not self.sequences_fn(value, start):
                continue
            key = int(self._keys[row])
            closed_out.setdefault(key >> 32, []).append(
                ClosedBitString(
                    oid=key & 0xFFFFFFFF,
                    start=start,
                    end=start + value.bit_length() - 1,
                    bits=value,
                )
            )
            self.candidates_created += 1


# ------------------------------------------------------------------- kernel


class NumpyEnumerationKernel(EnumerationKernel):
    """Array-native batched enumeration for one subtask's anchors."""

    name = "numpy"

    def __init__(
        self,
        enumerator: str,
        constraints: PatternConstraints,
        vba_candidate_retention: int | None = None,
    ):
        if np is None:
            raise RuntimeError(
                "the 'numpy' enumeration kernel requires NumPy, which is "
                "not installed; use enumeration_kernel='python' instead"
            )
        if enumerator not in BITMAP_ENUMERATORS:
            raise ValueError(
                "the 'numpy' enumeration kernel batches membership bit "
                f"strings and supports {BITMAP_ENUMERATORS}; enumerator "
                f"{enumerator!r} has no bitmap form — use "
                "enumeration_kernel='python'"
            )
        self.enumerator = enumerator
        self.constraints = constraints
        self._last_time: int | None = None
        #: Shared memoized Definition-15 decomposition — the batched
        #: counterpart of per-call extraction (see :class:`_SequenceCache`).
        self.sequence_cache = _SequenceCache(constraints)
        if enumerator == "fba":
            self._state: _FBAWindows | _VBAStrings = _FBAWindows(
                constraints, self.sequence_cache
            )
        else:
            self._state = _VBAStrings(
                constraints,
                self.sequence_cache,
                candidate_retention=vba_candidate_retention,
            )

    @property
    def and_evaluations(self) -> int:
        """AND combinations evaluated so far (work counter)."""
        return self._state.and_evaluations

    def on_snapshot(
        self, time: int, partitions: Partitions
    ) -> list[CoMovementPattern]:
        """Pack the snapshot's records into keys; advance the batch state."""
        if self._last_time is not None and time <= self._last_time:
            raise ValueError(
                f"times must increase: got {time} after {self._last_time}"
            )
        self._last_time = time
        partitions = list(partitions)
        chunks = []
        for anchor, members in partitions:
            if not members:
                continue
            oids = np.fromiter(members, count=len(members), dtype=np.int64)
            _check_ids(anchor, oids)
            chunks.append((np.int64(anchor) << np.int64(32)) | oids)
        if chunks:
            keys = np.sort(np.concatenate(chunks))
        else:
            keys = np.empty(0, dtype=np.int64)
        return self._state.on_snapshot(time, partitions, keys)

    def finish(self) -> list[CoMovementPattern]:
        """Flush pending windows / open strings at end of stream."""
        return self._state.finish()

    def protected_oids(self) -> frozenset[int]:
        """Shed-protected oids, delegated to the batch state."""
        return self._state.protected_oids()

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Forming descriptors, delegated to the batch state."""
        if self._last_time is None:
            return ()
        return self._state.forming_candidates(self._last_time)

    def snapshot_state(self) -> dict:
        """The batch state's payload plus the kernel clock.

        The memoized sequence cache is deliberately absent: it is a pure
        function of its inputs, so a restored kernel repopulates it on
        demand with identical results.
        """
        return {
            "enumerator": self.enumerator,
            "last_time": self._last_time,
            "state": self._state.snapshot_state(),
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        if payload["enumerator"] != self.enumerator:
            raise ValueError(
                f"cannot restore {payload['enumerator']!r} kernel state "
                f"into a {self.enumerator!r} kernel"
            )
        self._last_time = payload["last_time"]
        self._state.restore_state(payload["state"])

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting delegated to the batch state."""
        return self._state.state_metrics()
