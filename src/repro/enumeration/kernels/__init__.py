"""Selectable pattern-enumeration kernels (the PED-phase strategy axis).

The enumeration phase (id-based partitions -> bit strings -> candidate
screening -> combination growth) has interchangeable implementation
strategies behind one contract
(:class:`~repro.enumeration.kernels.base.EnumerationKernel`):

* ``"python"`` — the reference per-anchor state machines (BA / FBA /
  VBA), driven exactly like the classic enumerate operator; the default.
* ``"numpy"`` — contiguous membership bitmaps across all anchors of a
  subtask, vectorized window builds, popcount candidate screens and
  Lemma-7 trailing-zero closing; requires the optional NumPy dependency
  and the bit-compression enumerators (``fba`` / ``vba``).

All kernels produce identical pattern streams by construction (the exact
validity predicate and the combination growth are shared code), so the
choice is purely a performance strategy — selectable via
``ICPEConfig(enumeration_kernel=...)`` or the CLI's ``--enum-kernel``
flag, and composable with either execution backend and either
clustering kernel.
"""

from __future__ import annotations

from repro.enumeration.kernels.base import EnumerationKernel
from repro.enumeration.kernels.numpy_kernel import (
    BITMAP_ENUMERATORS,
    NumpyEnumerationKernel,
    numpy_available,
)
from repro.enumeration.kernels.python_ref import (
    PythonEnumerationKernel,
    anchor_enumerator_factory,
)
from repro.model.constraints import PatternConstraints

ENUMERATION_KERNELS = ("python", "numpy")

__all__ = [
    "BITMAP_ENUMERATORS",
    "ENUMERATION_KERNELS",
    "EnumerationKernel",
    "NumpyEnumerationKernel",
    "PythonEnumerationKernel",
    "anchor_enumerator_factory",
    "make_enumeration_kernel",
    "numpy_available",
]


def make_enumeration_kernel(
    name: str,
    *,
    enumerator: str,
    constraints: PatternConstraints,
    ba_max_partition_size: int = 20,
    vba_candidate_retention: int | None = None,
) -> EnumerationKernel:
    """Build the named enumeration kernel for one enumerate subtask.

    The reference kernel hosts any enumerator; the vectorized kernel
    batches membership bit strings and therefore supports only the
    bit-compression enumerators (``fba`` / ``vba``) — combining it with
    ``"baseline"`` is rejected rather than silently downgraded.

    Resolution goes through the plugin registry (kinds
    ``"enumeration_kernel"`` and ``"enumerator"``): the kernel/enumerator
    combination is validated declaratively from the registered
    capability metadata (``requires_bitmap_enumeration`` vs
    ``provides_bitmap_enumeration``) before construction, and
    third-party kernels registered via the ``repro.plugins`` entry-point
    group are constructible here without any change to this package.

    Raises:
        ValueError: for an unknown kernel name, an unknown enumerator,
            or a vectorized kernel combined with an enumerator that has
            no bitmap form.
        RuntimeError: when the kernel's optional dependency is missing.
    """
    from repro.registry import default_registry

    selection = default_registry().validate_selection(
        enumeration_kernel=name, enumerator=enumerator
    )
    return selection["enumeration_kernel"].create(
        enumerator=enumerator,
        constraints=constraints,
        ba_max_partition_size=ba_max_partition_size,
        vba_candidate_retention=vba_candidate_retention,
    )
