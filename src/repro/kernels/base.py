"""The snapshot-clustering kernel contract.

Snapshot clustering — grid bucketing, epsilon-range join, DBSCAN core /
border labeling — is the per-snapshot hot path of the ICPE framework
(Figs. 10-13 of the paper all sweep it).  A *kernel* is one interchangeable
implementation strategy of that whole phase: points in, exact
epsilon-neighbour pairs and a canonical :class:`~repro.cluster.dbscan.
DBSCANResult` out.

Two strategies ship with the repository:

* ``python`` (:mod:`repro.kernels.python_ref`) — the reference object
  walk: GR-index range join over ``GridObject``/``Rect`` instances plus
  union-find DBSCAN.  It honours every ablation switch (Lemmas 1-2,
  local-index choice) and is the default.
* ``numpy`` (:mod:`repro.kernels.numpy_kernel`) — packs the snapshot into
  contiguous float arrays and performs bucketing, the epsilon join and the
  DBSCAN labeling entirely with array operations.

Every kernel must produce the *identical* cluster set for the same input:
the pair set is exact (candidates are verified against the metric), and
border points follow the repository-wide canonical rule (a border point
joins the cluster of its smallest-id core neighbour), so results are
bit-for-bit comparable across kernels and execution backends.

Candidate pruning (grid cells, probe rectangles) everywhere uses the
shared margin of :func:`repro.geometry.rect.pruning_epsilon`, so a pair
whose computed distance equals epsilon exactly can never be lost to a
coordinate sitting a few ulps past a pruning boundary — the exact metric
is the only filter that decides pairs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.cluster.dbscan import DBSCANResult, dbscan_from_pairs
from repro.join.range_join import JoinStats

Points = Sequence[tuple[int, float, float]]


class ClusteringKernel(ABC):
    """One snapshot-clustering strategy (points -> pairs -> clusters).

    Attributes:
        name: registry name of the strategy (``"python"``, ``"numpy"``).
        epsilon: the join / DBSCAN distance threshold.
        min_pts: the DBSCAN density threshold.
        last_join_stats: work counters of the most recent snapshot
            (populated by :meth:`neighbor_pairs` / :meth:`cluster`).
    """

    name: str = "abstract"

    def __init__(self, epsilon: float, min_pts: int):
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        self.epsilon = epsilon
        self.min_pts = min_pts
        self.last_join_stats = JoinStats()

    @abstractmethod
    def neighbor_pairs(self, points: Points) -> set[tuple[int, int]]:
        """Exact duplicate-free epsilon-neighbour pairs of one snapshot.

        Pairs are normalised ``(min oid, max oid)`` over distinct objects
        at metric distance <= epsilon.
        """

    def cluster(self, points: Points) -> DBSCANResult:
        """Cluster one snapshot's points into the canonical DBSCAN result.

        The default implementation routes the kernel's pair set through
        the shared union-find DBSCAN; fully vectorized kernels override
        this to stay on arrays end to end.  Isolated objects (no pairs)
        are classified as noise, never dropped.
        """
        points = list(points)
        pairs = self.neighbor_pairs(points)
        return dbscan_from_pairs(
            (oid for oid, _, _ in points), pairs, self.min_pts
        )

    def cluster_columns(self, oids, xs, ys) -> DBSCANResult:
        """Cluster one snapshot given as parallel columns.

        The columnar entry point of the batch-ingestion data plane:
        vectorized kernels override it to consume the arrays directly
        (no per-point boxing); the default zips the columns into the
        row form and delegates to :meth:`cluster`, so every kernel is
        batch-transparent.  Results are identical either way.
        """
        return self.cluster(list(zip(oids, xs, ys)))
