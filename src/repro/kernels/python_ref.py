"""The reference object-based kernel (the paper's GR-index path).

Wraps the existing :class:`~repro.join.range_join.GRRangeJoin` (GridAllocate
-> per-cell GridQuery -> GridSync) and the union-find DBSCAN into the
kernel interface.  This is the default strategy and the semantic anchor:
the vectorized kernels are tested for bit-for-bit equality against it.

Unlike the vectorized kernels, the reference kernel honours every ablation
switch of the paper (Lemma 1 replication, Lemma 2 query-during-build, the
local-index choice), which is why the ablation benchmarks always run it.
"""

from __future__ import annotations

from repro.join.range_join import GRRangeJoin, RangeJoinConfig
from repro.kernels.base import ClusteringKernel, Points


class PythonKernel(ClusteringKernel):
    """Object-walking snapshot clustering via the GR-index range join."""

    name = "python"

    def __init__(
        self,
        epsilon: float,
        min_pts: int,
        cell_width: float,
        metric_name: str = "l1",
        lemma1: bool = True,
        lemma2: bool = True,
        local_index: str = "rtree",
        rtree_fanout: int = 16,
    ):
        super().__init__(epsilon, min_pts)
        self._join = GRRangeJoin(
            RangeJoinConfig(
                cell_width=cell_width,
                epsilon=epsilon,
                metric_name=metric_name,
                lemma1=lemma1,
                lemma2=lemma2,
                local_index=local_index,
                rtree_fanout=rtree_fanout,
            )
        )

    def neighbor_pairs(self, points: Points) -> set[tuple[int, int]]:
        """Range-join the snapshot through the GR-index (Lemmas 1-2)."""
        pairs = self._join.join(points)
        self.last_join_stats = self._join.last_stats
        return pairs
