"""NumPy-vectorized snapshot clustering (the ``numpy`` kernel strategy).

The whole clustering phase runs on contiguous arrays:

1. **Pack** — the snapshot's ``(oid, x, y)`` triples are sorted by oid and
   packed into int64 / float64 arrays, so array index order equals oid
   order (every canonical "smallest id" rule becomes an argmin).
2. **Grid bucketing** — cell coordinates ``floor(p / w)`` with bucket
   width ``w = epsilon`` are hashed into a single int64 key per point; one
   stable argsort groups points by occupied cell (no ``Rect`` /
   ``GridObject`` materialisation).
3. **Epsilon join** — for each of the five half-plane neighbour offsets
   ``(0,0), (0,1), (1,-1), (1,0), (1,1)``, occupied cells are matched to
   their neighbour cells with :func:`numpy.searchsorted` and the matched
   cell blocks expand into candidate index pairs via cumulative-sum
   arithmetic; a single broadcast distance evaluation filters the exact
   pairs.  Every unordered pair is produced exactly once (the offset set
   covers each unordered cell pair once; intra-cell candidates keep only
   ``i < j``).
4. **DBSCAN labeling** — neighbour counts via ``bincount`` give the core
   mask; core components form by iterated min-label propagation with
   pointer jumping (``minimum.at`` + ``labels[labels]``); border points
   attach to their smallest-id core neighbour via one more ``minimum.at``.

The result is bit-for-bit identical to the reference kernel: the pair set
is exact (bucketing only generates candidates; the metric verifies), and
the labeling reproduces the canonical border rule of
:func:`repro.cluster.dbscan.dbscan_from_pairs`.

NumPy is an *optional* dependency: this module imports without it, and
constructing the kernel raises a clear error when it is missing.
"""

from __future__ import annotations

from repro.cluster.dbscan import DBSCANResult
from repro.geometry.distance import canonical_metric_name
from repro.geometry.rect import pruning_epsilon
from repro.join.range_join import JoinStats
from repro.kernels.base import ClusteringKernel, Points

try:  # pragma: no cover - exercised only on numpy-less hosts
    import numpy as np
except ModuleNotFoundError:  # pragma: no cover
    np = None

#: Half-plane neighbour offsets: together with the symmetric roles of the
#: two cells in a match, these cover every unordered pair of 3x3-adjacent
#: cells exactly once.
_OFFSETS = ((0, 0), (0, 1), (1, -1), (1, 0), (1, 1))


def numpy_available() -> bool:
    """Whether the optional NumPy dependency is importable."""
    return np is not None


class NumpyKernel(ClusteringKernel):
    """Array-native snapshot clustering (no per-object traversal)."""

    name = "numpy"

    def __init__(
        self,
        epsilon: float,
        min_pts: int,
        metric_name: str = "l1",
    ):
        """Reference-kernel-only switches (lemma1, lemma2, local_index,
        cell_width, rtree_fanout) are deliberately not accepted: the
        vectorized join has no object replication, no local trees, and
        picks its own bucket width.  :func:`repro.kernels.make_kernel`
        rejects non-default switch combinations with a clear error."""
        if np is None:
            raise RuntimeError(
                "the 'numpy' clustering kernel requires NumPy, which is not "
                "installed; use clustering_kernel='python' instead"
            )
        super().__init__(epsilon, min_pts)
        self.metric_name = canonical_metric_name(metric_name)
        # Bucket width: any pair at metric distance <= epsilon (all
        # supported metrics bound L-infinity) must land in adjacent cells.
        # Derived from epsilon alone — the configured grid ``cell_width``
        # (the swept axis of Fig. 11) has no effect on this kernel, so
        # grid-width sweeps must run the reference kernel.
        self.bucket_width = (
            pruning_epsilon(self.epsilon) if self.epsilon > 0 else 1.0
        )

    # ------------------------------------------------------------------ pack

    def _pack(self, points: Points):
        """Sort by oid and split into (oids, xs, ys) contiguous arrays."""
        triples = sorted(points)
        oids = np.array([t[0] for t in triples], dtype=np.int64)
        xs = np.array([t[1] for t in triples], dtype=np.float64)
        ys = np.array([t[2] for t in triples], dtype=np.float64)
        return oids, xs, ys

    # ------------------------------------------------------------------ join

    def _distances(self, xs, ys, left, right):
        """Metric distances of the candidate index pairs, vectorized."""
        dx = np.abs(xs[left] - xs[right])
        dy = np.abs(ys[left] - ys[right])
        if self.metric_name == "l1":
            return dx + dy
        if self.metric_name == "l2":
            # sqrt(dx*dx + dy*dy), bit-for-bit the scalar metric's formula
            # (np.hypot and math.hypot can differ by one ulp).
            return np.sqrt(dx * dx + dy * dy)
        return np.maximum(dx, dy)

    def _pair_indices(self, xs, ys):
        """Exact epsilon-pair index arrays ``(left, right)`` with left < right.

        Index order equals oid order (points are packed sorted), so the
        ``left < right`` canonicalisation is also ``oid_left < oid_right``.
        """
        n = xs.size
        empty = np.empty(0, dtype=np.int64)
        if n < 2:
            self.last_join_stats = JoinStats(locations=int(n))
            return empty, empty

        # The pair filter runs in float64, so a pair's true axis gap can
        # exceed epsilon by a few ulps and still verify; the shared
        # candidate-pruning margin in the bucket width keeps every such
        # pair within the 3x3 block.  Coordinates are shifted to the
        # origin first so the float floor(x / width) itself cannot
        # misplace a cell by more than the same margin absorbs.
        width = self.bucket_width
        cx_f = np.floor((xs - xs.min()) / width)
        cy_f = np.floor((ys - ys.min()) / width)
        # The composite key must hold up to (cx + 2) * stride in int64
        # (neighbour probes add up to stride + 1 to a key); a pathological
        # spread/epsilon ratio (~1e10 per axis) would wrap silently and
        # drop neighbour pairs, so refuse it before casting.
        stride_f = cy_f.max() + 2.0
        if (cx_f.max() + 2.0) * stride_f >= float(np.iinfo(np.int64).max):
            raise ValueError(
                "coordinate spread / epsilon ratio too large for the "
                "numpy kernel's int64 cell keys; use the 'python' kernel "
                "for this workload"
            )
        cx = cx_f.astype(np.int64)
        cy = cy_f.astype(np.int64)
        # stride leaves one spare row so y-neighbour offsets of boundary
        # cells encode to keys no occupied cell can collide with.
        stride = int(cy.max()) + 2
        keys = cx * stride + cy

        order = np.argsort(keys, kind="stable").astype(np.int64)
        occupied, starts, counts = np.unique(
            keys[order], return_index=True, return_counts=True
        )

        lefts: list = []
        rights: list = []
        candidates = 0
        for dx, dy in _OFFSETS:
            delta = dx * stride + dy
            if delta == 0:
                cell_a = np.arange(occupied.size, dtype=np.int64)
                cell_b = cell_a
            else:
                targets = occupied + delta
                pos = np.searchsorted(occupied, targets)
                found = pos < occupied.size
                found[found] = occupied[pos[found]] == targets[found]
                cell_a = np.flatnonzero(found).astype(np.int64)
                cell_b = pos[cell_a]
            if cell_a.size == 0:
                continue

            # Expand each matched (cell_a, cell_b) block pair into its
            # full cross product of point indices with cumsum arithmetic.
            sizes_b = counts[cell_b]
            block = counts[cell_a] * sizes_b
            bounds = np.concatenate(([0], np.cumsum(block)))
            total = int(bounds[-1])
            if total == 0:
                continue
            match = np.repeat(
                np.arange(cell_a.size, dtype=np.int64), block
            )
            within = np.arange(total, dtype=np.int64) - bounds[match]
            a_local = within // sizes_b[match]
            b_local = within % sizes_b[match]
            left = order[starts[cell_a][match] + a_local]
            right = order[starts[cell_b][match] + b_local]
            if delta == 0:
                keep = left < right
                left, right = left[keep], right[keep]
            else:
                # Distinct cells: each unordered pair appears once; only
                # normalise the orientation to (smaller, larger) index.
                left, right = (
                    np.minimum(left, right),
                    np.maximum(left, right),
                )
            candidates += left.size
            lefts.append(left)
            rights.append(right)

        if not lefts:
            self.last_join_stats = JoinStats(
                locations=int(n), occupied_cells=int(occupied.size)
            )
            return empty, empty
        left = np.concatenate(lefts)
        right = np.concatenate(rights)
        keep = self._distances(xs, ys, left, right) <= self.epsilon
        left, right = left[keep], right[keep]
        self.last_join_stats = JoinStats(
            locations=int(n),
            grid_objects=int(n),
            occupied_cells=int(occupied.size),
            emitted_pairs=candidates,
            result_pairs=int(left.size),
        )
        return left, right

    def _collapse_duplicate_oids(self, oids, left, right):
        """Collapse packed rows sharing an oid into one graph node.

        The kernel contract speaks in *distinct objects*: pairs between
        two rows of the same oid are dropped and repeated oid pairs
        dedupe, matching the reference kernel's oid-level pair set.  With
        unique oids (the normal case) this is a no-op.
        """
        uoids, inverse = np.unique(oids, return_inverse=True)
        if uoids.size == oids.size:
            return oids, left, right
        inverse = inverse.astype(np.int64)
        left, right = inverse[left], inverse[right]
        keep = left != right
        left, right = left[keep], right[keep]
        key = np.unique(
            np.minimum(left, right) * uoids.size + np.maximum(left, right)
        )
        return uoids, key // uoids.size, key % uoids.size

    # ---------------------------------------------------------------- public

    def neighbor_pairs(self, points: Points) -> set[tuple[int, int]]:
        """Exact epsilon-neighbour oid pairs, computed on arrays."""
        oids, xs, ys = self._pack(points)
        left, right = self._pair_indices(xs, ys)
        oids, left, right = self._collapse_duplicate_oids(oids, left, right)
        return set(zip(oids[left].tolist(), oids[right].tolist()))

    def cluster(self, points: Points) -> DBSCANResult:
        """Full vectorized DBSCAN over the snapshot (arrays end to end)."""
        return self._cluster_packed(*self._pack(points))

    def cluster_columns(self, oids, xs, ys) -> DBSCANResult:
        """Columnar entry: cluster parallel ``(oids, xs, ys)`` columns.

        The batch data plane hands snapshot columns straight here — one
        stable argsort replaces :meth:`_pack`'s sort-and-split, and with
        distinct oids (the snapshot contract) the packed layout is
        identical to the row path's, so results are bit-for-bit equal.
        """
        oids = np.asarray(oids, dtype=np.int64)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        order = np.argsort(oids, kind="stable")
        return self._cluster_packed(oids[order], xs[order], ys[order])

    def _cluster_packed(self, oids, xs, ys) -> DBSCANResult:
        """DBSCAN over oid-sorted packed arrays (shared by both entries)."""
        left, right = self._pair_indices(xs, ys)
        oids, left, right = self._collapse_duplicate_oids(oids, left, right)
        n = oids.size

        degree = (
            np.bincount(left, minlength=n)
            + np.bincount(right, minlength=n)
            + 1  # count_self: standard DBSCAN, the repository default
        )
        core = degree >= self.min_pts

        # Core components: iterated min-label propagation + pointer jumping.
        labels = np.arange(n, dtype=np.int64)
        cc = core[left] & core[right]
        cc_left, cc_right = left[cc], right[cc]
        while True:
            before = labels.copy()
            merged = np.minimum(labels[cc_left], labels[cc_right])
            np.minimum.at(labels, cc_left, merged)
            np.minimum.at(labels, cc_right, merged)
            labels = np.minimum(labels, labels[labels])
            if np.array_equal(labels, before):
                break

        # Border points: smallest-id core neighbour (canonical rule).
        half = core[left] ^ core[right]
        core_end = np.where(core[left[half]], left[half], right[half])
        border_end = np.where(core[left[half]], right[half], left[half])
        anchor = np.full(n, n, dtype=np.int64)
        np.minimum.at(anchor, border_end, core_end)
        border = ~core & (anchor < n)
        noise = ~core & (anchor == n)

        member_label = np.where(core, labels, np.int64(-1))
        member_label[border] = labels[anchor[border]]

        clustered = np.flatnonzero(member_label >= 0)
        groups: list = []
        if clustered.size:
            by_label = np.argsort(member_label[clustered], kind="stable")
            sorted_idx = clustered[by_label]
            sorted_labels = member_label[clustered][by_label]
            cuts = np.flatnonzero(np.diff(sorted_labels)) + 1
            groups = np.split(sorted_idx, cuts)
            groups.sort(key=lambda g: int(g[0]))  # order by smallest member

        clusters = {
            cluster_id: tuple(oids[members].tolist())
            for cluster_id, members in enumerate(groups)
        }
        return DBSCANResult(
            clusters=clusters,
            core_points=set(oids[core].tolist()),
            noise=set(oids[noise].tolist()),
        )
