"""Selectable snapshot-clustering kernels.

The clustering phase (grid bucketing + epsilon-range join + DBSCAN) has
interchangeable implementation strategies behind one contract
(:class:`~repro.kernels.base.ClusteringKernel`):

* ``"python"`` — the reference object walk (GR-index join, honours every
  ablation switch); the default.
* ``"numpy"`` — contiguous-array bucketing, searchsorted cell matching and
  vectorized DBSCAN labeling; requires the optional NumPy dependency.

All kernels produce identical cluster sets by construction (exact pair
verification + the canonical border rule), so the choice is purely a
performance strategy — selectable via ``ICPEConfig(clustering_kernel=...)``
or the CLI's ``--kernel`` flag, and composable with either execution
backend.

Since the plugin-registry redesign, :func:`make_kernel` resolves names
through :func:`repro.registry.default_registry` (kind
``"clustering_kernel"``), so third-party kernels registered via the
``repro.plugins`` entry-point group are constructible here without any
change to this package; :data:`KERNELS` keeps naming the built-in
strategies.
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields

from repro.join.range_join import RangeJoinConfig
from repro.kernels.base import ClusteringKernel
from repro.kernels.numpy_kernel import NumpyKernel, numpy_available
from repro.kernels.python_ref import PythonKernel

KERNELS = ("python", "numpy")

#: Ablation-switch defaults, read from their canonical declaration
#: (:class:`~repro.join.range_join.RangeJoinConfig`) so the "is this a
#: default?" check below cannot drift from the config dataclasses.
_ABLATION_DEFAULTS = {
    f.name: f.default
    for f in _dataclass_fields(RangeJoinConfig)
    if f.name in ("lemma1", "lemma2", "local_index", "rtree_fanout")
}

__all__ = [
    "KERNELS",
    "ClusteringKernel",
    "NumpyKernel",
    "PythonKernel",
    "make_kernel",
    "numpy_available",
]


def make_kernel(
    name: str,
    *,
    epsilon: float,
    min_pts: int,
    cell_width: float,
    metric_name: str = "l1",
    lemma1: bool = _ABLATION_DEFAULTS["lemma1"],
    lemma2: bool = _ABLATION_DEFAULTS["lemma2"],
    local_index: str = _ABLATION_DEFAULTS["local_index"],
    rtree_fanout: int = _ABLATION_DEFAULTS["rtree_fanout"],
) -> ClusteringKernel:
    """Build the named kernel from the clustering-phase parameters.

    Resolution goes through the plugin registry (kind
    ``"clustering_kernel"``), so the name may be a built-in or any
    third-party kernel registered via the ``repro.plugins`` entry-point
    group.  The reference kernel consumes every parameter; vectorized
    kernels have no object path (no replication, no local trees, their
    own bucket width), so combining them with a non-default ablation
    switch is rejected rather than silently ignored — an ablation sweep
    must run the reference kernel to measure anything.  ``cell_width``
    cannot be rejected the same way (every caller passes it), but it
    likewise has no effect on vectorized kernels: they derive their
    bucket width from epsilon (see ``NumpyKernel.bucket_width``), so
    grid-width sweeps (Fig. 11) only measure kernels whose registered
    capabilities include ``honours_cell_width``.

    Raises:
        ValueError: for an unknown kernel name, or a kernel whose
            registered capabilities lack ``supports_ablation`` combined
            with non-default ablation switches.
        RuntimeError: when the kernel's optional dependency is missing.
    """
    from repro.registry import default_registry

    spec = default_registry().get("clustering_kernel", name)
    ablation = dict(
        lemma1=lemma1,
        lemma2=lemma2,
        local_index=local_index,
        rtree_fanout=rtree_fanout,
    )
    if not spec.capabilities.supports_ablation:
        non_default = [
            f"{switch}={value!r}"
            for switch, value in ablation.items()
            if value != _ABLATION_DEFAULTS[switch]
        ]
        if non_default:
            raise ValueError(
                "ablation switches only affect kernels whose registered "
                f"capabilities include supports_ablation; the {name!r} "
                f"kernel would ignore {', '.join(non_default)} — run "
                "ablations with clustering_kernel='python'"
            )
    return spec.create(
        epsilon=epsilon,
        min_pts=min_pts,
        cell_width=cell_width,
        metric_name=metric_name,
        **ablation,
    )
