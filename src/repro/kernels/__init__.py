"""Selectable snapshot-clustering kernels.

The clustering phase (grid bucketing + epsilon-range join + DBSCAN) has
interchangeable implementation strategies behind one contract
(:class:`~repro.kernels.base.ClusteringKernel`):

* ``"python"`` — the reference object walk (GR-index join, honours every
  ablation switch); the default.
* ``"numpy"`` — contiguous-array bucketing, searchsorted cell matching and
  vectorized DBSCAN labeling; requires the optional NumPy dependency.

All kernels produce identical cluster sets by construction (exact pair
verification + the canonical border rule), so the choice is purely a
performance strategy — selectable via ``ICPEConfig(clustering_kernel=...)``
or the CLI's ``--kernel`` flag, and composable with either execution
backend.
"""

from __future__ import annotations

from repro.kernels.base import ClusteringKernel
from repro.kernels.numpy_kernel import NumpyKernel, numpy_available
from repro.kernels.python_ref import PythonKernel

KERNELS = ("python", "numpy")

__all__ = [
    "KERNELS",
    "ClusteringKernel",
    "NumpyKernel",
    "PythonKernel",
    "make_kernel",
    "numpy_available",
]


def make_kernel(
    name: str,
    *,
    epsilon: float,
    min_pts: int,
    cell_width: float,
    metric_name: str = "l1",
    lemma1: bool = True,
    lemma2: bool = True,
    local_index: str = "rtree",
    rtree_fanout: int = 16,
) -> ClusteringKernel:
    """Build the named kernel from the clustering-phase parameters.

    The reference kernel consumes every parameter; vectorized kernels
    ignore the object-path switches (they have no replication, no local
    trees, and pick their own bucket width).

    Raises:
        ValueError: for an unknown kernel name.
        RuntimeError: when the kernel's optional dependency is missing.
    """
    if name == "python":
        return PythonKernel(
            epsilon=epsilon,
            min_pts=min_pts,
            cell_width=cell_width,
            metric_name=metric_name,
            lemma1=lemma1,
            lemma2=lemma2,
            local_index=local_index,
            rtree_fanout=rtree_fanout,
        )
    if name == "numpy":
        return NumpyKernel(
            epsilon=epsilon, min_pts=min_pts, metric_name=metric_name
        )
    raise ValueError(
        f"unknown clustering kernel {name!r}; expected one of {KERNELS}"
    )
