"""The streaming session: records in, typed events out.

:class:`Session` is the public front door of the framework.  It owns
the "last time" synchronisation operator and the ICPE pipeline (built
from an :class:`~repro.core.config.ICPEConfig`, so every registered
plugin axis — backend, clustering kernel, enumeration kernel,
enumerator — is selectable), optionally a live
:class:`~repro.core.live.ConvoyTracker`, and a set of subscribed
sinks.  ``feed_batch()`` accepts columnar
:class:`~repro.model.batch.RecordBatch` input (``feed()`` is the
one-row compatibility form, ``feed_many()`` packs iterables
automatically) and returns the typed
:class:`~repro.session.events.PatternEvent` stream those records
caused; ``result()`` summarises the run at any point; the session is a
context manager that flushes on clean exit and always releases backend
resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.config import ICPEConfig
from repro.core.icpe import ICPEPipeline
from repro.core.live import ConvoyTracker
from repro.model.batch import RecordBatch, SnapshotBatch
from repro.model.pattern import CoMovementPattern
from repro.model.records import StreamRecord
from repro.model.snapshot import Snapshot
from repro.session.events import (
    ConvoyDelta,
    PatternConfirmed,
    PatternEvent,
    WatermarkAdvanced,
)
from repro.session.sinks import PatternSink, as_sink
from repro.streaming.metrics import LatencyThroughputMeter
from repro.streaming.sync import TimeSyncOperator

#: Records per auto-packed batch when ``feed_many`` receives a plain
#: iterable and neither the call nor the session configured a size.
DEFAULT_BATCH_SIZE = 512


@dataclass(frozen=True, slots=True)
class SessionResult:
    """Summary of a session's run so far.

    Attributes:
        patterns: every distinct confirmed pattern, in detection order.
        snapshots: snapshots fully processed.
        avg_latency_ms: cost-model per-snapshot latency
            (:mod:`repro.streaming.metrics`).
        throughput_tps: cost-model snapshots per second.
        events: emitted-event counts per event kind.
        backend: execution-backend plugin name.
        clustering_kernel: clustering-kernel plugin name.
        enumeration_kernel: enumeration-kernel plugin name.
        enumerator: enumerator plugin name.
    """

    patterns: tuple[CoMovementPattern, ...]
    snapshots: int
    avg_latency_ms: float
    throughput_tps: float
    events: dict[str, int]
    backend: str
    clustering_kernel: str
    enumeration_kernel: str
    enumerator: str

    def summary(self) -> dict[str, float]:
        """The numeric metrics as a flat dict (report-friendly)."""
        return {
            "patterns": float(len(self.patterns)),
            "snapshots": float(self.snapshots),
            "avg_latency_ms": self.avg_latency_ms,
            "throughput_tps": self.throughput_tps,
        }


class Session:
    """A streaming pattern-detection session over one configuration.

    Usually built via :func:`repro.session.open_session` or the fluent
    :class:`~repro.session.builder.SessionBuilder` rather than directly.

    Lifecycle: ``feed()`` any number of records, then ``finish()`` to
    flush bounded-evaluation state; ``close()`` releases execution
    backend resources.  As a context manager the session finishes on
    clean exit (no exception) and closes either way::

        with open_session(config) as session:
            for record in stream:
                for event in session.feed(record):
                    ...
        print(session.result().summary())
    """

    def __init__(
        self,
        config: ICPEConfig,
        *,
        track_convoys: bool = False,
        sinks: Iterable[PatternSink | Callable[[PatternEvent], None]] = (),
        batch_size: int | None = None,
    ):
        """``track_convoys`` enables live convoy tracking (CMC scheme of
        ``core/live.py``) with M and K taken from ``config.constraints``;
        ``sinks`` are subscribed in order before any record flows;
        ``batch_size`` sets the auto-packing chunk of :meth:`feed_many`
        (``None`` means :data:`DEFAULT_BATCH_SIZE`)."""
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.config = config
        self.batch_size = batch_size or DEFAULT_BATCH_SIZE
        self.pipeline = ICPEPipeline(config)
        self._sync = TimeSyncOperator(max_delay=config.max_delay)
        self._tracker: ConvoyTracker | None = None
        self._tracked_members: frozenset[frozenset[int]] = frozenset()
        if track_convoys:
            self._tracker = ConvoyTracker(
                m=config.constraints.m, k=config.constraints.k
            )
        self._sinks: list[PatternSink] = []
        self._event_counts: dict[str, int] = {}
        self._finished = False
        self._closed = False
        for sink in sinks:
            self.subscribe(sink)

    # ------------------------------------------------------------------ sinks

    def subscribe(
        self, sink: PatternSink | Callable[[PatternEvent], None]
    ) -> PatternSink:
        """Subscribe a sink (or bare callable); returns the sink object.

        Every subsequently emitted event is dispatched to it, in
        subscription order.
        """
        wrapped = as_sink(sink)
        self._sinks.append(wrapped)
        return wrapped

    def _emit(self, events: list[PatternEvent]) -> list[PatternEvent]:
        counts = self._event_counts
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        # Dispatch is skipped wholesale when nothing is subscribed — a
        # zero-sink session pays only the count bookkeeping per event,
        # not a per-event empty dispatch loop.
        if self._sinks:
            for event in events:
                for sink in self._sinks:
                    sink.on_event(event)
        return events

    # ------------------------------------------------------------------ drive

    def feed(self, record: StreamRecord) -> list[PatternEvent]:
        """Accept one record; returns the events its arrival caused.

        Records may arrive out of event-time order within the configured
        ``max_delay``; the synchronisation operator assembles complete
        snapshots before anything is clustered.  Per completed snapshot
        the session emits, in order: one
        :class:`~repro.session.events.PatternConfirmed` per fresh
        pattern, a :class:`~repro.session.events.ConvoyDelta` when the
        live view changed (tracking enabled), and one
        :class:`~repro.session.events.WatermarkAdvanced`.

        The per-point compatibility path of the columnar data plane: a
        record is a one-row :class:`~repro.model.batch.RecordBatch`, so
        both paths run the identical machinery and stay event-for-event
        interchangeable.
        """
        return self.feed_batch(RecordBatch.single(record))

    def feed_batch(self, batch: RecordBatch) -> list[PatternEvent]:
        """Accept one columnar batch; returns the events it caused.

        The primary ingestion path: the batch flows through the
        vectorized synchronisation walk, completed snapshots stay in
        columnar form through the keyed exchanges into the clustering
        kernel, and the returned typed event stream is identical —
        event for event — to feeding the same records through
        :meth:`feed` one at a time (an emission can at most move to a
        later call when the batch boundary defers the watermark).
        """
        self._check_open()
        events: list[PatternEvent] = []
        for snapshot in self._sync.feed_batch(batch):
            events.extend(self._process(snapshot))
        return self._emit(events)

    def feed_many(
        self,
        records: Iterable[StreamRecord] | RecordBatch,
        *,
        batch_size: int | None = None,
    ) -> list[PatternEvent]:
        """Feed many records, auto-packing them into columnar batches.

        A :class:`~repro.model.batch.RecordBatch` argument is fed
        directly; any other iterable is chunked into batches of
        ``batch_size`` records (``None`` means the session's configured
        ``batch_size``) and fed through :meth:`feed_batch`.  Returns all
        caused events, exactly as per-point feeding would.

        Raises:
            ValueError: for an explicit ``batch_size`` below 1 (unlike
                the CLI flag, 0 does not mean "per-point" here — feed
                records individually for that).
        """
        if isinstance(records, RecordBatch):
            return self.feed_batch(records)
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        size = batch_size if batch_size is not None else self.batch_size
        events: list[PatternEvent] = []
        for batch in RecordBatch.pack(records, size):
            events.extend(self.feed_batch(batch))
        return events

    def stream(
        self, records: Iterable[StreamRecord]
    ) -> Iterator[PatternEvent]:
        """Generator form: yield events as the record stream is consumed.

        Ends with the flush events of :meth:`finish` — convenient for
        ``for event in session.stream(records): ...`` one-liners over
        bounded streams.
        """
        for record in records:
            yield from self.feed(record)
        yield from self.finish()

    def finish(self) -> list[PatternEvent]:
        """End of stream: flush sync buffers, windows and bit strings.

        Idempotent; returns the flush-caused events.  The execution
        backend is released (the pipeline's own finish closes it).
        """
        if self._finished:
            return []
        self._check_open()
        events: list[PatternEvent] = []
        for snapshot in self._sync.flush():
            events.extend(self._process(snapshot))
        flush_patterns = self.pipeline.finish()
        flush_time = self._last_time()
        events.extend(
            PatternConfirmed(time=flush_time, pattern=pattern)
            for pattern in flush_patterns
        )
        if self._tracker is not None:
            ended = tuple(self._tracker.finish())
            if ended or self._tracked_members:
                events.append(
                    ConvoyDelta(
                        time=flush_time,
                        formed=(),
                        dissolved=tuple(sorted(self._tracked_members, key=sorted)),
                        ended=ended,
                        active=0,
                    )
                )
                self._tracked_members = frozenset()
        # Mark finished only once the flush itself succeeded, so an
        # error mid-flush (backend failure) leaves the session
        # retryable instead of silently swallowing the tail patterns.
        self._finished = True
        return self._emit(events)

    def close(self) -> None:
        """Release backend resources and close owned sinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.pipeline.close()
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Session":
        """Context-manager entry: the session itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Flush on clean exit, release resources either way.

        A session the user already closed inside the block is left
        as-is — ``close()`` is idempotent and there is nothing left to
        flush.
        """
        if exc_type is None and not self._finished and not self._closed:
            self.finish()
        self.close()

    # ------------------------------------------------------------------ state

    def result(self) -> SessionResult:
        """Snapshot the run's summary (callable at any point)."""
        meter = self.pipeline.meter
        return SessionResult(
            patterns=tuple(self.pipeline.patterns),
            snapshots=meter.snapshots,
            avg_latency_ms=meter.average_latency_ms(),
            throughput_tps=meter.throughput_tps(),
            events=dict(self._event_counts),
            backend=self.pipeline.backend_name,
            clustering_kernel=self.config.clustering_kernel,
            enumeration_kernel=self.config.enumeration_kernel,
            enumerator=self.config.enumerator,
        )

    def store(self):
        """A queryable :class:`~repro.core.store.PatternStore` of
        everything detected so far (containment / time / maximality
        queries for downstream applications)."""
        from repro.core.store import PatternStore

        store = PatternStore()
        store.add_all(self.pipeline.collector.detections)
        return store

    @property
    def patterns(self) -> list[CoMovementPattern]:
        """Every distinct pattern detected so far."""
        return self.pipeline.patterns

    @property
    def meter(self) -> LatencyThroughputMeter:
        """Per-snapshot latency / throughput metrics."""
        return self.pipeline.meter

    @property
    def active_convoys(self):
        """Live convoy candidates (requires ``track_convoys``).

        Raises:
            RuntimeError: when convoy tracking is not enabled.
        """
        if self._tracker is None:
            raise RuntimeError(
                "convoy tracking is not enabled; build the session with "
                "track_convoys=True"
            )
        return self._tracker.active()

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has flushed the stream end."""
        return self._finished

    @property
    def closed(self) -> bool:
        """True once :meth:`close` released backend resources."""
        return self._closed

    # ------------------------------------------------------------- internals

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")
        if self._finished:
            raise RuntimeError("session already finished")

    def _last_time(self) -> int:
        timings = self.pipeline.meter.timings
        return timings[-1].time if timings else 0

    def _process(
        self, snapshot: Snapshot | SnapshotBatch
    ) -> list[PatternEvent]:
        """Run one complete snapshot; build its ordered event list."""
        fresh = self.pipeline.process_snapshot(snapshot)
        events: list[PatternEvent] = [
            PatternConfirmed(time=snapshot.time, pattern=pattern)
            for pattern in fresh
        ]
        if self._tracker is not None:
            cluster_snapshot = self.pipeline.last_cluster_snapshot
            if cluster_snapshot is not None:
                ended = tuple(self._tracker.on_snapshot(cluster_snapshot))
                members = frozenset(
                    candidate.members for candidate in self._tracker.active()
                )
                formed = tuple(
                    sorted(members - self._tracked_members, key=sorted)
                )
                dissolved = tuple(
                    sorted(self._tracked_members - members, key=sorted)
                )
                self._tracked_members = members
                if formed or dissolved or ended:
                    events.append(
                        ConvoyDelta(
                            time=snapshot.time,
                            formed=formed,
                            dissolved=dissolved,
                            ended=ended,
                            active=len(members),
                        )
                    )
        events.append(
            WatermarkAdvanced(
                time=snapshot.time,
                snapshots_processed=self.pipeline.meter.snapshots,
                patterns_total=len(self.pipeline.collector),
            )
        )
        return events
