"""The streaming session: records in, typed events out.

:class:`Session` is the public front door of the framework.  It owns
the "last time" synchronisation operator and the ICPE pipeline (built
from an :class:`~repro.core.config.ICPEConfig`, so every registered
plugin axis — backend, clustering kernel, enumeration kernel,
enumerator, pattern family — is selectable), optionally a live
:class:`~repro.core.live.ConvoyTracker` and a
:class:`~repro.patterns.PatternFamily` (evolving-group detection or
online co-movement prediction; see :mod:`repro.patterns`), and a set
of subscribed sinks.  ``feed_batch()`` accepts columnar
:class:`~repro.model.batch.RecordBatch` input (``feed()`` is the
one-row compatibility form, ``feed_many()`` packs iterables
automatically) and returns the typed
:class:`~repro.session.events.PatternEvent` stream those records
caused; ``result()`` summarises the run at any point; the session is a
context manager that flushes on clean exit and always releases backend
resources.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.core.config import ICPEConfig
from repro.core.icpe import ICPEPipeline
from repro.core.live import ConvoyTracker
from repro.model.batch import RecordBatch, SnapshotBatch
from repro.model.pattern import CoMovementPattern
from repro.model.records import StreamRecord
from repro.model.snapshot import Snapshot
from repro.registry import default_registry
from repro.session.events import (
    ConvoyDelta,
    PatternConfirmed,
    PatternEvent,
    WatermarkAdvanced,
)
from repro.session.sinks import PatternSink, as_sink
from repro.state import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    checkpoint_path,
    decode_payload,
    encode_payload,
    sweep_checkpoints,
)
from repro.observability import (
    ObservabilityOptions,
    SessionTelemetry,
    resolve_options,
)
from repro.shedding import ShedPolicy, SLOController
from repro.shedding.controller import DEFAULT_WINDOW as _SLO_WINDOW
from repro.streaming.metrics import LatencyThroughputMeter
from repro.streaming.sync import TimeSyncOperator

#: Records per auto-packed batch when ``feed_many`` receives a plain
#: iterable and neither the call nor the session configured a size.
DEFAULT_BATCH_SIZE = 512


@dataclass(frozen=True, slots=True)
class SessionResult:
    """Summary of a session's run so far.

    Attributes:
        patterns: every distinct confirmed pattern, in detection order.
        snapshots: snapshots fully processed.
        avg_latency_ms: cost-model per-snapshot latency
            (:mod:`repro.streaming.metrics`).
        throughput_tps: cost-model snapshots per second.
        events: emitted-event counts per event kind.
        backend: execution-backend plugin name.
        clustering_kernel: clustering-kernel plugin name.
        enumeration_kernel: enumeration-kernel plugin name.
        enumerator: enumerator plugin name.
        state_memory: per-component memory accounting — one entry per
            live component (pipeline stages, sync operator, collector,
            meter, convoy tracker) mapping its retained-object counters,
            e.g. ``{"sync": {"chains": 12, "chains_evicted": 3}, ...}``.
        shedding: load-shedding telemetry
            (:meth:`Session.shedding_stats`) — the policy name, offered /
            shed / protected record counters, the controller's current
            rate and windowed latency percentiles, and the per-stage
            busy-second samples it collected.
    """

    patterns: tuple[CoMovementPattern, ...]
    snapshots: int
    avg_latency_ms: float
    throughput_tps: float
    events: dict[str, int]
    backend: str
    clustering_kernel: str
    enumeration_kernel: str
    enumerator: str
    state_memory: dict[str, dict[str, int]] = field(default_factory=dict)
    shedding: dict[str, object] = field(default_factory=dict)

    def summary(self) -> dict[str, float]:
        """The numeric metrics as a flat dict (report-friendly)."""
        return {
            "patterns": float(len(self.patterns)),
            "snapshots": float(self.snapshots),
            "avg_latency_ms": self.avg_latency_ms,
            "throughput_tps": self.throughput_tps,
        }


class Session:
    """A streaming pattern-detection session over one configuration.

    Usually built via :func:`repro.session.open_session` or the fluent
    :class:`~repro.session.builder.SessionBuilder` rather than directly.

    Lifecycle: ``feed()`` any number of records, then ``finish()`` to
    flush bounded-evaluation state; ``close()`` releases execution
    backend resources.  As a context manager the session finishes on
    clean exit (no exception) and closes either way::

        with open_session(config) as session:
            for record in stream:
                for event in session.feed(record):
                    ...
        print(session.result().summary())
    """

    def __init__(
        self,
        config: ICPEConfig,
        *,
        track_convoys: bool = False,
        sinks: Iterable[PatternSink | Callable[[PatternEvent], None]] = (),
        batch_size: int | None = None,
        restore: Checkpoint | None = None,
        observability: ObservabilityOptions | dict | bool | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_keep_last: int | None = None,
    ):
        """``track_convoys`` enables live convoy tracking (CMC scheme of
        ``core/live.py``) with M and K taken from ``config.constraints``;
        ``sinks`` are subscribed in order before any record flows;
        ``batch_size`` sets the auto-packing chunk of :meth:`feed_many`
        (``None`` means :data:`DEFAULT_BATCH_SIZE`); ``restore`` resumes
        from a :class:`~repro.state.Checkpoint` taken by
        :meth:`checkpoint` (the configs must match on every field except
        the execution surface — backend, pool size, cluster model);
        ``observability`` enables the telemetry hub (``True`` for the
        in-memory registry, an
        :class:`~repro.observability.ObservabilityOptions` or kwargs
        dict to add exporters); ``checkpoint_dir`` enables automatic
        periodic checkpointing at the cadence of the config's
        ``checkpoint_every_records`` / ``checkpoint_every_seconds``
        (defaulting to every record batch when neither is set), with
        ``checkpoint_keep_last`` bounding retention via
        :func:`~repro.state.sweep_checkpoints`."""
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if checkpoint_keep_last is not None and checkpoint_keep_last < 1:
            raise ValueError(
                f"checkpoint_keep_last must be >= 1, got {checkpoint_keep_last}"
            )
        self.config = config
        self.batch_size = batch_size or DEFAULT_BATCH_SIZE
        options = resolve_options(observability)
        self._telemetry = (
            SessionTelemetry(options) if options is not None else None
        )
        self.pipeline = ICPEPipeline(config)
        self._sync = TimeSyncOperator(
            max_delay=config.max_delay,
            trajectory_ttl=config.trajectory_ttl,
        )
        self._tracker: ConvoyTracker | None = None
        self._tracked_members: frozenset[frozenset[int]] = frozenset()
        if track_convoys:
            self._tracker = ConvoyTracker(
                m=config.constraints.m, k=config.constraints.k
            )
        # The default "strict" family is the paper's exact semantics and
        # needs no extra machinery at all — the session hosts a family
        # component only for the relaxed/predictive axes.
        self._patterns = (
            default_registry().create(
                "pattern_family",
                config.pattern_family,
                config.constraints,
                theta=config.evolving_theta,
                min_probability=config.prediction_min_probability,
            )
            if config.pattern_family != "strict"
            else None
        )
        self._sinks: list[PatternSink] = []
        self._event_counts: dict[str, int] = {}
        self._records_ingested = 0
        self._records_shed = 0
        self._records_protected = 0
        self._shed_policy: ShedPolicy = default_registry().create(
            "shed_policy", config.shed_policy, config.shed_seed
        )
        self._controller = SLOController(
            target_p99_ms=config.target_p99_ms,
            initial_rate=config.shed_rate,
            histogram=(
                self._telemetry.slo_latency_histogram(_SLO_WINDOW)
                if self._telemetry is not None
                else None
            ),
        )
        # The default "none" policy keeps the ingest path byte-identical
        # to a shedding-unaware session: no drop selection, no controller
        # observation, no protected-set fetches.
        self._shedding_active = config.shed_policy != "none"
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._checkpoint_keep_last = checkpoint_keep_last
        self._ckpt_every_records = config.checkpoint_every_records
        self._ckpt_every_seconds = config.checkpoint_every_seconds
        if (
            self._checkpoint_dir is not None
            and self._ckpt_every_records is None
            and self._ckpt_every_seconds is None
        ):
            # A checkpoint directory with no cadence means "as often as
            # possible": one checkpoint per batch that advanced the
            # watermark.
            self._ckpt_every_records = 1
        self._auto_checkpoints: list[Path] = []
        self._last_ckpt_watermark: int | None = None
        self._last_ckpt_records = 0
        self._last_ckpt_clock = _time.monotonic()
        self._finished = False
        self._closed = False
        if restore is not None:
            try:
                self._restore_from(restore)
            except Exception:
                self.pipeline.close()
                raise
            self._last_ckpt_watermark = restore.watermark
            self._last_ckpt_records = self._records_ingested
        if self._checkpoint_dir is not None:
            self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        for sink in sinks:
            self.subscribe(sink)

    # ------------------------------------------------------------------ sinks

    def subscribe(
        self, sink: PatternSink | Callable[[PatternEvent], None]
    ) -> PatternSink:
        """Subscribe a sink (or bare callable); returns the sink object.

        Every subsequently emitted event is dispatched to it, in
        subscription order.
        """
        wrapped = as_sink(sink)
        self._sinks.append(wrapped)
        return wrapped

    def _emit(self, events: list[PatternEvent]) -> list[PatternEvent]:
        counts = self._event_counts
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        if self._telemetry is not None and events:
            self._telemetry.observe_events(events)
        # Dispatch is skipped wholesale when nothing is subscribed — a
        # zero-sink session pays only the count bookkeeping per event,
        # not a per-event empty dispatch loop.
        if self._sinks:
            for event in events:
                for sink in self._sinks:
                    sink.on_event(event)
        return events

    # ------------------------------------------------------------------ drive

    def feed(self, record: StreamRecord) -> list[PatternEvent]:
        """Accept one record; returns the events its arrival caused.

        Records may arrive out of event-time order within the configured
        ``max_delay``; the synchronisation operator assembles complete
        snapshots before anything is clustered.  Per completed snapshot
        the session emits, in order: one
        :class:`~repro.session.events.PatternConfirmed` per fresh
        pattern, a :class:`~repro.session.events.ConvoyDelta` when the
        live view changed (tracking enabled), and one
        :class:`~repro.session.events.WatermarkAdvanced`.

        The per-point compatibility path of the columnar data plane: a
        record is a one-row :class:`~repro.model.batch.RecordBatch`, so
        both paths run the identical machinery and stay event-for-event
        interchangeable.
        """
        return self.feed_batch(RecordBatch.single(record))

    def feed_batch(self, batch: RecordBatch) -> list[PatternEvent]:
        """Accept one columnar batch; returns the events it caused.

        The primary ingestion path: the batch flows through the
        vectorized synchronisation walk, completed snapshots stay in
        columnar form through the keyed exchanges into the clustering
        kernel, and the returned typed event stream is identical —
        event for event — to feeding the same records through
        :meth:`feed` one at a time (an emission can at most move to a
        later call when the batch boundary defers the watermark).
        """
        self._check_open()
        self._records_ingested += len(batch)
        events: list[PatternEvent] = []
        for snapshot in self._sync.feed_batch(batch):
            events.extend(self._process(snapshot))
        emitted = self._emit(events)
        self._maybe_auto_checkpoint()
        return emitted

    def feed_many(
        self,
        records: Iterable[StreamRecord] | RecordBatch,
        *,
        batch_size: int | None = None,
    ) -> list[PatternEvent]:
        """Feed many records, auto-packing them into columnar batches.

        A :class:`~repro.model.batch.RecordBatch` argument is fed
        directly; any other iterable is chunked into batches of
        ``batch_size`` records (``None`` means the session's configured
        ``batch_size``) and fed through :meth:`feed_batch`.  Returns all
        caused events, exactly as per-point feeding would.

        Raises:
            ValueError: for an explicit ``batch_size`` below 1 (unlike
                the CLI flag, 0 does not mean "per-point" here — feed
                records individually for that).
        """
        if isinstance(records, RecordBatch):
            return self.feed_batch(records)
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        size = batch_size if batch_size is not None else self.batch_size
        events: list[PatternEvent] = []
        for batch in RecordBatch.pack(records, size):
            events.extend(self.feed_batch(batch))
        return events

    def stream(
        self, records: Iterable[StreamRecord]
    ) -> Iterator[PatternEvent]:
        """Generator form: yield events as the record stream is consumed.

        Ends with the flush events of :meth:`finish` — convenient for
        ``for event in session.stream(records): ...`` one-liners over
        bounded streams.
        """
        for record in records:
            yield from self.feed(record)
        yield from self.finish()

    def finish(self) -> list[PatternEvent]:
        """End of stream: flush sync buffers, windows and bit strings.

        Idempotent; returns the flush-caused events.  The execution
        backend is released (the pipeline's own finish closes it).
        """
        if self._finished:
            return []
        self._check_open()
        events: list[PatternEvent] = []
        for snapshot in self._sync.flush():
            events.extend(self._process(snapshot))
        flush_patterns = self.pipeline.finish()
        flush_time = self._last_time()
        events.extend(
            PatternConfirmed(time=flush_time, pattern=pattern)
            for pattern in flush_patterns
        )
        if self._tracker is not None:
            ended = tuple(self._tracker.finish())
            if ended or self._tracked_members:
                events.append(
                    ConvoyDelta(
                        time=flush_time,
                        formed=(),
                        dissolved=tuple(sorted(self._tracked_members, key=sorted)),
                        ended=ended,
                        active=0,
                    )
                )
                self._tracked_members = frozenset()
        if self._patterns is not None:
            events.extend(self._patterns.finish(flush_time))
        # Mark finished only once the flush itself succeeded, so an
        # error mid-flush (backend failure) leaves the session
        # retryable instead of silently swallowing the tail patterns.
        self._finished = True
        emitted = self._emit(events)
        if self._telemetry is not None:
            self._finalize_telemetry()
        return emitted

    def close(self) -> None:
        """Release backend resources and close owned sinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.pipeline.close()
        if self._telemetry is not None:
            self._telemetry.close()
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Session":
        """Context-manager entry: the session itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Flush on clean exit, release resources either way.

        A session the user already closed inside the block is left
        as-is — ``close()`` is idempotent and there is nothing left to
        flush.
        """
        if exc_type is None and not self._finished and not self._closed:
            self.finish()
        self.close()

    # ------------------------------------------------------------ checkpoints

    def checkpoint(self) -> Checkpoint:
        """Capture the session's complete state as a restorable value.

        Everything a restarted session needs flows into the returned
        :class:`~repro.state.Checkpoint`: every stateful operator of
        the pipeline graph (incrementally — operators whose payload
        digest is unchanged since the previous checkpoint reuse the
        cached bytes), plus the master-side synchronisation operator,
        pattern collector, metrics meter, convoy tracker, and the
        session's own counters.  The backend must advertise
        ``supports_checkpoint``; a process backend drains its workers
        through the synchronous reply protocol, so the capture is a
        consistent cut.  Call between feeds — ideally right after a
        :class:`~repro.session.events.WatermarkAdvanced` event.

        Raises:
            RuntimeError: on a finished/closed session or a backend
                without checkpoint support.
        """
        self._check_open()
        states, captured, reused = self.pipeline.collect_operator_states()
        master: dict[str, bytes] = {}
        payloads: list[tuple[str, dict]] = [
            ("sync", self._sync.snapshot_state()),
            ("collector", self.pipeline.collector.snapshot_state()),
            ("meter", self.pipeline.meter.snapshot_state()),
            (
                "session",
                {
                    "event_counts": dict(self._event_counts),
                    "tracked_members": sorted(
                        (tuple(sorted(members)) for members in self._tracked_members),
                    ),
                    "records_ingested": self._records_ingested,
                },
            ),
            (
                "shedding",
                {
                    "controller": self._controller.snapshot_state(),
                    "policy": self._shed_policy.snapshot_state(),
                    "records_shed": self._records_shed,
                    "records_protected": self._records_protected,
                },
            ),
        ]
        if self._tracker is not None:
            payloads.append(("tracker", self._tracker.snapshot_state()))
        if self._patterns is not None:
            payloads.append(("patterns", self._patterns.snapshot_state()))
        if self._telemetry is not None:
            payloads.append(("telemetry", self._telemetry.snapshot_state()))
        for name, payload in payloads:
            master[name] = encode_payload(payload)[1]
        timings = self.pipeline.meter.timings
        return Checkpoint(
            config=self.config,
            watermark=timings[-1].time if timings else None,
            records_ingested=self._records_ingested,
            operator_states=states,
            master_states=master,
            captured=captured,
            reused=reused,
        )

    def _restore_from(self, checkpoint: Checkpoint) -> None:
        """Adopt a checkpoint into this (freshly built) session."""
        if checkpoint.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {checkpoint.version} is not supported"
            )
        compatible = replace(
            checkpoint.config,
            backend=self.config.backend,
            parallel_workers=self.config.parallel_workers,
            cluster=self.config.cluster,
            checkpoint_every_records=self.config.checkpoint_every_records,
            checkpoint_every_seconds=self.config.checkpoint_every_seconds,
        )
        if compatible != self.config:
            raise CheckpointError(
                "checkpoint was taken under an incompatible configuration; "
                "only the execution surface (backend, parallel_workers, "
                "cluster model, checkpoint cadence) may differ on restore"
            )
        self.pipeline.restore_operator_states(checkpoint.operator_states)
        master = checkpoint.master_states
        self._sync.restore_state(decode_payload(master["sync"]))
        self.pipeline.collector.restore_state(decode_payload(master["collector"]))
        self.pipeline.meter.restore_state(decode_payload(master["meter"]))
        session_payload = decode_payload(master["session"])
        self._event_counts = dict(session_payload["event_counts"])
        self._tracked_members = frozenset(
            frozenset(members)
            for members in session_payload["tracked_members"]
        )
        self._records_ingested = session_payload["records_ingested"]
        # Checkpoints taken before the shedding subsystem existed carry
        # no "shedding" payload; the freshly built default state stands.
        shedding_blob = master.get("shedding")
        if shedding_blob is not None:
            shedding_payload = decode_payload(shedding_blob)
            self._controller.restore_state(shedding_payload["controller"])
            self._shed_policy.restore_state(shedding_payload["policy"])
            self._records_shed = shedding_payload["records_shed"]
            self._records_protected = shedding_payload["records_protected"]
        if self._tracker is not None:
            if "tracker" not in master:
                raise CheckpointError(
                    "track_convoys is enabled but the checkpoint carries no "
                    "convoy-tracker state; take checkpoints from a tracking "
                    "session to restore one"
                )
            self._tracker.restore_state(decode_payload(master["tracker"]))
        # Checkpoints taken before the pattern-family subsystem existed
        # carry no "patterns" payload; the freshly built family stands.
        # (The config equality check above already guarantees both sides
        # run the same family whenever the payload is present.)
        patterns_blob = master.get("patterns")
        if self._patterns is not None and patterns_blob is not None:
            self._patterns.restore_state(decode_payload(patterns_blob))
        # Telemetry continues its series when both sides have a hub;
        # a checkpoint from a telemetry-less session (or vice versa)
        # simply starts the registry fresh.
        telemetry_blob = master.get("telemetry")
        if self._telemetry is not None and telemetry_blob is not None:
            self._telemetry.restore_state(decode_payload(telemetry_blob))

    @property
    def records_ingested(self) -> int:
        """Records accepted so far (for source skipping on restore)."""
        return self._records_ingested

    @property
    def auto_checkpoints(self) -> list[Path]:
        """Paths of the checkpoints automatic checkpointing has saved."""
        return list(self._auto_checkpoints)

    def _maybe_auto_checkpoint(self) -> None:
        """Save a periodic checkpoint when the configured cadence is due.

        A save needs a *new* watermark — checkpoints are keyed by
        watermark on disk, and a batch that advanced nothing has
        nothing new to persist — so an overdue cadence simply waits for
        the next watermark advance.  After each save, retention sweeps
        the directory when ``checkpoint_keep_last`` bounds it.
        """
        if self._checkpoint_dir is None or self._finished:
            return
        due = self._ckpt_every_records is not None and (
            self._records_ingested - self._last_ckpt_records
            >= self._ckpt_every_records
        )
        if not due:
            due = self._ckpt_every_seconds is not None and (
                _time.monotonic() - self._last_ckpt_clock
                >= self._ckpt_every_seconds
            )
        if not due:
            return
        timings = self.pipeline.meter.timings
        watermark = timings[-1].time if timings else None
        if watermark is None or watermark == self._last_ckpt_watermark:
            return
        checkpoint = self.checkpoint()
        path = checkpoint_path(self._checkpoint_dir, watermark)
        checkpoint.save(path)
        self._auto_checkpoints.append(path)
        self._last_ckpt_watermark = watermark
        self._last_ckpt_records = self._records_ingested
        self._last_ckpt_clock = _time.monotonic()
        if self._checkpoint_keep_last is not None:
            sweep_checkpoints(self._checkpoint_dir, self._checkpoint_keep_last)

    # ------------------------------------------------------------------ state

    def result(self) -> SessionResult:
        """Snapshot the run's summary (callable at any point)."""
        meter = self.pipeline.meter
        return SessionResult(
            patterns=tuple(self.pipeline.patterns),
            snapshots=meter.snapshots,
            avg_latency_ms=meter.average_latency_ms(),
            throughput_tps=meter.throughput_tps(),
            events=dict(self._event_counts),
            backend=self.pipeline.backend_name,
            clustering_kernel=self.config.clustering_kernel,
            enumeration_kernel=self.config.enumeration_kernel,
            enumerator=self.config.enumerator,
            state_memory=self.state_memory(),
            shedding=self.shedding_stats(),
        )

    def shedding_stats(self) -> dict[str, object]:
        """Load-shedding telemetry of the run so far.

        The policy name, offered / shed / protected record counters, the
        controller's current rate, its windowed latency percentiles, and
        the per-stage busy-second totals it sampled.  All zeros under
        the default ``"none"`` policy.
        """
        return {
            "policy": self.config.shed_policy,
            "records_offered": self._records_ingested,
            "records_shed": self._records_shed,
            "records_protected": self._records_protected,
            "shed_rate": self._controller.rate,
            "windowed_p50_ms": self._controller.windowed_p50_ms(),
            "windowed_p99_ms": self._controller.windowed_p99_ms(),
            "stage_busy_seconds": self._controller.stage_busy_seconds(),
        }

    def state_memory(self) -> dict[str, dict[str, int]]:
        """Per-component memory accounting (retained-object counters).

        One entry per live component: the pipeline's stages (summed over
        subtasks, via the backend where workers own the state), the
        master-side collector and meter, the synchronisation operator
        (chain/eviction counters when ``trajectory_ttl`` bounds it), and
        the convoy tracker when enabled.
        """
        metrics = self.pipeline.state_metrics()
        metrics["sync"] = self._sync.state_metrics()
        if self._tracker is not None:
            metrics["tracker"] = self._tracker.state_metrics()
        if self._patterns is not None:
            family_metrics = self._patterns.state_metrics()
            if family_metrics:
                metrics["patterns"] = family_metrics
        if self._shedding_active:
            shed_metrics = {
                "records_shed": self._records_shed,
                "records_protected": self._records_protected,
            }
            shed_metrics.update(self._controller.state_metrics())
            shed_metrics.update(self._shed_policy.state_metrics())
            metrics["shedding"] = shed_metrics
        return metrics

    def store(self):
        """A queryable :class:`~repro.core.store.PatternStore` of
        everything detected so far (containment / time / maximality
        queries for downstream applications)."""
        from repro.core.store import PatternStore

        store = PatternStore()
        store.add_all(self.pipeline.collector.detections)
        return store

    @property
    def patterns(self) -> list[CoMovementPattern]:
        """Every distinct pattern detected so far."""
        return self.pipeline.patterns

    @property
    def meter(self) -> LatencyThroughputMeter:
        """Per-snapshot latency / throughput metrics."""
        return self.pipeline.meter

    @property
    def shed_policy(self) -> ShedPolicy:
        """The live load-shedding policy instance."""
        return self._shed_policy

    @property
    def slo_controller(self) -> SLOController:
        """The latency-SLO controller driving the shed rate."""
        return self._controller

    @property
    def telemetry(self) -> SessionTelemetry | None:
        """The observability hub, or ``None`` when telemetry is off."""
        return self._telemetry

    @property
    def pattern_family(self):
        """The live :class:`~repro.patterns.PatternFamily` component, or
        ``None`` under the default ``"strict"`` family (the paper's
        exact semantics need no extra machinery)."""
        return self._patterns

    @property
    def active_convoys(self):
        """Live convoy candidates (requires ``track_convoys``).

        Raises:
            RuntimeError: when convoy tracking is not enabled.
        """
        if self._tracker is None:
            raise RuntimeError(
                "convoy tracking is not enabled; build the session with "
                "track_convoys=True"
            )
        return self._tracker.active()

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has flushed the stream end."""
        return self._finished

    @property
    def closed(self) -> bool:
        """True once :meth:`close` released backend resources."""
        return self._closed

    # ------------------------------------------------------------- internals

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")
        if self._finished:
            raise RuntimeError("session already finished")

    def _last_time(self) -> int:
        timings = self.pipeline.meter.timings
        return timings[-1].time if timings else 0

    def _shed_snapshot(
        self, snapshot: Snapshot | SnapshotBatch
    ) -> Snapshot | SnapshotBatch:
        """Drop rows from one completed snapshot per the shed policy.

        The drop point is deliberately *after* time synchronisation:
        shedding a raw ingest record would leave its successor's
        ``last_time`` naming a report that never arrives, blocking that
        trajectory's reassembly chain and stalling the watermark.  A
        dropped snapshot row, by contrast, is exactly a "no report at
        t" hole for the clustering and enumeration layers — the shape
        the bit-string semantics already handle — while still removing
        the dominant per-row clustering/enumeration cost.

        At an effective rate of zero the snapshot passes through
        untouched and the policy's RNG is never consulted, keeping the
        event stream byte-identical to an unshedded run.  The protected
        set is only fetched for policies that consult enumeration state.
        """
        rate = self._controller.rate
        if rate <= 0.0 or not len(snapshot):
            return snapshot
        policy = self._shed_policy
        columnar = isinstance(snapshot, SnapshotBatch)
        if columnar:
            oids = [int(oid) for oid in snapshot.oids]
        else:
            oids = snapshot.oids()
        protected: frozenset[int] = frozenset()
        if policy.consults_state:
            protected = self.pipeline.protected_oids()
            self._records_protected += sum(
                1 for oid in oids if oid in protected
            )
        drops = policy.select_drops(oids, rate, protected)
        if not drops:
            return snapshot
        self._records_shed += len(drops)
        dropped = set(drops)
        keep = [i for i in range(len(oids)) if i not in dropped]
        if columnar:
            return snapshot.select(keep)
        points = snapshot.points()
        return Snapshot.from_points(
            snapshot.time, [points[i] for i in keep]
        )

    def _observe_telemetry(self, time: int) -> None:
        """Feed one processed snapshot's facts into the telemetry hub.

        Spans and latency first, then the counter mirror + export tick.
        The state-memory refresh callable is only invoked when a JSONL
        row is actually due (it round-trips the worker protocol under
        the process backend).
        """
        telemetry = self._telemetry
        assert telemetry is not None
        telemetry.observe_spans(self.pipeline.last_spans)
        timings = self.pipeline.meter.timings
        if timings:
            telemetry.observe_latency(timings[-1].latency_seconds * 1000.0)
        if self._patterns is not None:
            telemetry.mirror_pattern_family(self._patterns.metrics())
        telemetry.on_watermark(
            time,
            records_ingested=self._records_ingested,
            records_shed=self._records_shed,
            records_protected=self._records_protected,
            snapshots=self.pipeline.meter.snapshots,
            patterns_total=len(self.pipeline.collector),
            shed_rate=self._controller.rate,
            watermark_lag=self._sync.watermark_lag(),
            refresh=self.state_memory,
        )

    def _finalize_telemetry(self) -> None:
        """End of stream: fold the flush spans in, write the final row."""
        telemetry = self._telemetry
        assert telemetry is not None
        telemetry.observe_spans(self.pipeline.last_spans)
        if self._patterns is not None:
            telemetry.mirror_pattern_family(self._patterns.metrics())
        watermark = self._last_time()
        telemetry.mirror_session(
            watermark,
            records_ingested=self._records_ingested,
            records_shed=self._records_shed,
            records_protected=self._records_protected,
            snapshots=self.pipeline.meter.snapshots,
            patterns_total=len(self.pipeline.collector),
            shed_rate=self._controller.rate,
            watermark_lag=self._sync.watermark_lag(),
        )
        telemetry.finalize(watermark, refresh=self.state_memory)

    def _observe_latency(self) -> None:
        """Feed the last snapshot's timing to the SLO controller."""
        timings = self.pipeline.meter.timings
        if not timings:
            return
        busy: dict[str, float] = {}
        for work in self.pipeline.last_works:
            busy[work.name] = busy.get(work.name, 0.0) + sum(
                work.busy_seconds
            )
        self._controller.observe(
            timings[-1].latency_seconds * 1000.0, busy
        )

    def _process(
        self, snapshot: Snapshot | SnapshotBatch
    ) -> list[PatternEvent]:
        """Run one complete snapshot; build its ordered event list."""
        if self._shedding_active:
            snapshot = self._shed_snapshot(snapshot)
        fresh = self.pipeline.process_snapshot(snapshot)
        if self._shedding_active:
            self._observe_latency()
        events: list[PatternEvent] = [
            PatternConfirmed(time=snapshot.time, pattern=pattern)
            for pattern in fresh
        ]
        if self._tracker is not None:
            cluster_snapshot = self.pipeline.last_cluster_snapshot
            if cluster_snapshot is not None:
                ended = tuple(self._tracker.on_snapshot(cluster_snapshot))
                members = frozenset(
                    candidate.members for candidate in self._tracker.active()
                )
                formed = tuple(
                    sorted(members - self._tracked_members, key=sorted)
                )
                dissolved = tuple(
                    sorted(self._tracked_members - members, key=sorted)
                )
                self._tracked_members = members
                if formed or dissolved or ended:
                    events.append(
                        ConvoyDelta(
                            time=snapshot.time,
                            formed=formed,
                            dissolved=dissolved,
                            ended=ended,
                            active=len(members),
                        )
                    )
        if self._patterns is not None:
            family_snapshot = self.pipeline.last_cluster_snapshot
            if family_snapshot is not None:
                forming = (
                    self.pipeline.forming_candidates()
                    if self._patterns.needs_forming_state
                    else ()
                )
                events.extend(
                    self._patterns.on_snapshot(
                        snapshot.time, family_snapshot, forming, fresh
                    )
                )
        events.append(
            WatermarkAdvanced(
                time=snapshot.time,
                snapshots_processed=self.pipeline.meter.snapshots,
                patterns_total=len(self.pipeline.collector),
            )
        )
        if self._telemetry is not None:
            self._observe_telemetry(snapshot.time)
        return events
