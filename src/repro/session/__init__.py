"""The streaming Session API: the framework's public front door.

Where PRs 1-3 exposed detection through ``CoMovementDetector`` (records
in, bare pattern lists out), the session package gives the same engine
an event-driven surface:

* :mod:`repro.session.session` — :class:`Session` (incremental
  ``feed()`` yielding typed events, ``result()`` summaries,
  context-manager lifecycle) and :class:`SessionResult`;
* :mod:`repro.session.events` — the typed event stream
  (:class:`PatternConfirmed`, :class:`ConvoyDelta`,
  :class:`GroupEvolved`, :class:`PatternForming`,
  :class:`WatermarkAdvanced`);
* :mod:`repro.session.sinks` — the :class:`PatternSink` protocol and the
  callback / list / JSON-lines sinks;
* :mod:`repro.session.builder` — the fluent :class:`SessionBuilder`.

:func:`open_session` is the one-call entry point, re-exported as
``repro.open_session``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.config import ICPEConfig
from repro.session.builder import SessionBuilder
from repro.session.events import (
    ConvoyDelta,
    GroupEvolved,
    PatternConfirmed,
    PatternEvent,
    PatternForming,
    WatermarkAdvanced,
    event_to_dict,
)
from repro.session.session import Session, SessionResult
from repro.session.sinks import (
    CallbackSink,
    JsonlSink,
    ListSink,
    PatternSink,
    as_sink,
)
from repro.state import Checkpoint

__all__ = [
    "CallbackSink",
    "ConvoyDelta",
    "GroupEvolved",
    "JsonlSink",
    "ListSink",
    "PatternConfirmed",
    "PatternEvent",
    "PatternForming",
    "PatternSink",
    "Session",
    "SessionBuilder",
    "SessionResult",
    "WatermarkAdvanced",
    "as_sink",
    "event_to_dict",
    "open_session",
]


def open_session(
    config: ICPEConfig | None = None,
    *,
    track_convoys: bool = False,
    sinks: Iterable[PatternSink | Callable[[PatternEvent], None]] = (),
    batch_size: int | None = None,
    restore: Checkpoint | None = None,
    observability: Any = None,
    checkpoint_dir: Any = None,
    checkpoint_keep_last: int | None = None,
    **overrides: Any,
) -> Session:
    """Open a streaming session — the one-call public entry point.

    Pass an :class:`ICPEConfig` (optionally with field ``overrides``),
    or no config and the :class:`ICPEConfig` fields as keyword
    arguments (``epsilon=, cell_width=, min_pts=, constraints=`` are
    then required)::

        session = open_session(
            epsilon=10.0, cell_width=30.0, min_pts=3,
            constraints=PatternConstraints(m=3, k=4, l=2, g=2),
            backend="parallel",
        )

    ``track_convoys`` enables the live convoy view; ``sinks`` subscribe
    before any record flows; ``batch_size`` sets ``feed_many``'s
    auto-packing chunk (columnar batch ingestion); ``restore`` resumes
    from a :class:`~repro.state.Checkpoint` (with no ``config`` the
    checkpoint's own config seeds the session).  ``observability``
    enables the telemetry hub (``True``, an
    :class:`~repro.observability.ObservabilityOptions`, or a kwargs
    dict); ``checkpoint_dir`` / ``checkpoint_keep_last`` enable
    automatic periodic checkpointing with bounded retention (cadence
    from the config's ``checkpoint_every_records`` /
    ``checkpoint_every_seconds`` fields).  Use the session as
    a context manager to flush on clean exit and always release backend
    resources.
    """
    builder = SessionBuilder(config)
    if overrides:
        builder.option(**overrides)
    if track_convoys:
        builder.track_convoys()
    if batch_size is not None:
        builder.batch_size(batch_size)
    if restore is not None:
        builder.restore(restore)
    if observability is not None:
        builder.observability(observability)
    if checkpoint_dir is not None:
        builder.checkpoints(checkpoint_dir, keep_last=checkpoint_keep_last)
    builder.sinks(sinks)
    return builder.open()
