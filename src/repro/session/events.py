"""Typed events a streaming session emits.

The old detector API returned bare pattern lists, losing *when* the
pipeline learnt things that applications care about: a snapshot fully
processed (safe-progress watermark), the live convoy view changing
(the paper's accident-response motivation), a CP(M, K, L, G) pattern
confirmed.  A :class:`~repro.session.session.Session` emits each of
those as a typed :class:`PatternEvent` subclass, both returned from
``feed()`` and dispatched to subscribed sinks.

Every event carries the stream time it describes and a stable ``kind``
string (``"pattern"`` / ``"convoy"`` / ``"watermark"`` / ``"evolved"``
/ ``"forming"``) used by sinks and the CLI's JSON output;
:func:`event_to_dict` is the canonical JSON-ready flattening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.model.pattern import CoMovementPattern


@dataclass(frozen=True, slots=True)
class PatternEvent:
    """Base class of every session event; ``time`` is the stream time."""

    kind: ClassVar[str] = "event"

    time: int


@dataclass(frozen=True, slots=True)
class PatternConfirmed(PatternEvent):
    """A co-movement pattern was confirmed at ``time``.

    One event per *fresh* pattern (first emission for its object set —
    the session deduplicates exactly like the pipeline's collector).
    """

    kind: ClassVar[str] = "pattern"

    pattern: CoMovementPattern


@dataclass(frozen=True, slots=True)
class ConvoyDelta(PatternEvent):
    """The live convoy view changed while processing snapshot ``time``.

    Emitted only when convoy tracking is enabled
    (``SessionBuilder.track_convoys()``) and only when something changed:
    ``formed`` lists member sets that newly appeared among the open
    candidates, ``dissolved`` those that disappeared, and ``ended``
    carries convoys that expired having met the duration threshold
    (reported as patterns).  ``active`` is the open-candidate count
    after the snapshot.
    """

    kind: ClassVar[str] = "convoy"

    formed: tuple[frozenset[int], ...]
    dissolved: tuple[frozenset[int], ...]
    ended: tuple[CoMovementPattern, ...]
    active: int


@dataclass(frozen=True, slots=True)
class GroupEvolved(PatternEvent):
    """An evolving group's membership drifted while staying continuous.

    Emitted by the ``evolving`` pattern family
    (``SessionBuilder.patterns("evolving")``) when a live group matched
    a cluster of snapshot ``time`` with Jaccard similarity at least the
    configured θ but a *different* member set.  ``members`` is the
    membership after the drift, ``joined`` / ``left`` are the deltas
    against the previous snapshot, ``duration`` the number of
    consecutive snapshots the group has survived so far (drift
    included).
    """

    kind: ClassVar[str] = "evolved"

    members: frozenset[int]
    joined: frozenset[int]
    left: frozenset[int]
    duration: int


@dataclass(frozen=True, slots=True)
class PatternForming(PatternEvent):
    """A partial match was scored as likely to reach confirmation.

    Emitted by the ``predictive`` pattern family
    (``SessionBuilder.patterns("predictive")``) for each open FBA
    window / unclosed VBA candidate bit string whose predicted
    probability of reaching K snapshots clears the configured
    threshold.  ``oids`` is the candidate object set (anchor included),
    ``length`` the current consecutive-snapshot streak, ``probability``
    the predicted confirmation probability under the online per-object
    persistence model, and ``lead`` the minimum number of further
    snapshots needed before the candidate can confirm (the prediction's
    lead time).
    """

    kind: ClassVar[str] = "forming"

    oids: frozenset[int]
    length: int
    probability: float
    lead: int


@dataclass(frozen=True, slots=True)
class WatermarkAdvanced(PatternEvent):
    """Snapshot ``time`` was fully processed through the pipeline.

    The session's progress signal: every record with event time up to
    ``time`` has been clustered and enumerated, so downstream consumers
    may treat results up to ``time`` as complete.
    """

    kind: ClassVar[str] = "watermark"

    snapshots_processed: int
    patterns_total: int


def event_to_dict(event: PatternEvent) -> dict:
    """Flatten one event into a JSON-ready dict (stable ``kind`` key)."""
    payload: dict = {"kind": event.kind, "time": event.time}
    if isinstance(event, PatternConfirmed):
        payload["objects"] = sorted(event.pattern.objects)
        payload["times"] = list(event.pattern.times.times)
    elif isinstance(event, ConvoyDelta):
        payload["formed"] = [sorted(members) for members in event.formed]
        payload["dissolved"] = [
            sorted(members) for members in event.dissolved
        ]
        payload["ended"] = [
            {
                "objects": sorted(pattern.objects),
                "times": list(pattern.times.times),
            }
            for pattern in event.ended
        ]
        payload["active"] = event.active
    elif isinstance(event, GroupEvolved):
        payload["members"] = sorted(event.members)
        payload["joined"] = sorted(event.joined)
        payload["left"] = sorted(event.left)
        payload["duration"] = event.duration
    elif isinstance(event, PatternForming):
        payload["oids"] = sorted(event.oids)
        payload["length"] = event.length
        payload["probability"] = event.probability
        payload["lead"] = event.lead
    elif isinstance(event, WatermarkAdvanced):
        payload["snapshots_processed"] = event.snapshots_processed
        payload["patterns_total"] = event.patterns_total
    return payload
