"""Typed events a streaming session emits.

The old detector API returned bare pattern lists, losing *when* the
pipeline learnt things that applications care about: a snapshot fully
processed (safe-progress watermark), the live convoy view changing
(the paper's accident-response motivation), a CP(M, K, L, G) pattern
confirmed.  A :class:`~repro.session.session.Session` emits each of
those as a typed :class:`PatternEvent` subclass, both returned from
``feed()`` and dispatched to subscribed sinks.

Every event carries the stream time it describes and a stable ``kind``
string (``"pattern"`` / ``"convoy"`` / ``"watermark"``) used by sinks
and the CLI's JSON output; :func:`event_to_dict` is the canonical
JSON-ready flattening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.model.pattern import CoMovementPattern


@dataclass(frozen=True, slots=True)
class PatternEvent:
    """Base class of every session event; ``time`` is the stream time."""

    kind: ClassVar[str] = "event"

    time: int


@dataclass(frozen=True, slots=True)
class PatternConfirmed(PatternEvent):
    """A co-movement pattern was confirmed at ``time``.

    One event per *fresh* pattern (first emission for its object set —
    the session deduplicates exactly like the pipeline's collector).
    """

    kind: ClassVar[str] = "pattern"

    pattern: CoMovementPattern


@dataclass(frozen=True, slots=True)
class ConvoyDelta(PatternEvent):
    """The live convoy view changed while processing snapshot ``time``.

    Emitted only when convoy tracking is enabled
    (``SessionBuilder.track_convoys()``) and only when something changed:
    ``formed`` lists member sets that newly appeared among the open
    candidates, ``dissolved`` those that disappeared, and ``ended``
    carries convoys that expired having met the duration threshold
    (reported as patterns).  ``active`` is the open-candidate count
    after the snapshot.
    """

    kind: ClassVar[str] = "convoy"

    formed: tuple[frozenset[int], ...]
    dissolved: tuple[frozenset[int], ...]
    ended: tuple[CoMovementPattern, ...]
    active: int


@dataclass(frozen=True, slots=True)
class WatermarkAdvanced(PatternEvent):
    """Snapshot ``time`` was fully processed through the pipeline.

    The session's progress signal: every record with event time up to
    ``time`` has been clustered and enumerated, so downstream consumers
    may treat results up to ``time`` as complete.
    """

    kind: ClassVar[str] = "watermark"

    snapshots_processed: int
    patterns_total: int


def event_to_dict(event: PatternEvent) -> dict:
    """Flatten one event into a JSON-ready dict (stable ``kind`` key)."""
    payload: dict = {"kind": event.kind, "time": event.time}
    if isinstance(event, PatternConfirmed):
        payload["objects"] = sorted(event.pattern.objects)
        payload["times"] = list(event.pattern.times.times)
    elif isinstance(event, ConvoyDelta):
        payload["formed"] = [sorted(members) for members in event.formed]
        payload["dissolved"] = [
            sorted(members) for members in event.dissolved
        ]
        payload["ended"] = [
            {
                "objects": sorted(pattern.objects),
                "times": list(pattern.times.times),
            }
            for pattern in event.ended
        ]
        payload["active"] = event.active
    elif isinstance(event, WatermarkAdvanced):
        payload["snapshots_processed"] = event.snapshots_processed
        payload["patterns_total"] = event.patterns_total
    return payload
