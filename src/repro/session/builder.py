"""Fluent construction of streaming sessions.

``SessionBuilder`` accumulates configuration — core Table-3 knobs,
strategy-plugin selections, sinks, live-tracking — and materialises an
:class:`~repro.core.config.ICPEConfig` plus a
:class:`~repro.session.session.Session` in one ``open()`` call::

    session = (
        SessionBuilder()
        .epsilon(10.0).cell_width(30.0).min_pts(3)
        .constraints(m=3, k=4, l=2, g=2)
        .backend("parallel", workers=4)
        .clustering_kernel("numpy")
        .track_convoys()
        .sink(print)
        .open()
    )

Strategy names are validated against the plugin registry when the
config materialises, so a typo or an invalid combination fails at
``open()`` with the registry's declarative error, not deep inside the
pipeline.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.core.config import ICPEConfig
from repro.model.constraints import PatternConstraints
from repro.observability import ObservabilityOptions
from repro.session.events import PatternEvent
from repro.session.session import Session
from repro.session.sinks import PatternSink
from repro.state import Checkpoint


class SessionBuilder:
    """Fluent builder for :class:`~repro.session.session.Session`.

    Seed from an existing :class:`ICPEConfig` (``SessionBuilder(config)``)
    or start blank and set the four required core knobs — ``epsilon``,
    ``cell_width``, ``min_pts``, ``constraints`` — before ``open()``.
    Every setter returns the builder.
    """

    _REQUIRED = ("epsilon", "cell_width", "min_pts", "constraints")

    def __init__(self, config: ICPEConfig | None = None):
        self._base = config
        self._overrides: dict[str, Any] = {}
        self._sinks: list[PatternSink | Callable[[PatternEvent], None]] = []
        self._track_convoys = False
        self._batch_size: int | None = None
        self._restore: Checkpoint | None = None
        self._observability: ObservabilityOptions | dict | bool | None = None
        self._checkpoint_dir: str | Path | None = None
        self._checkpoint_keep_last: int | None = None

    # ------------------------------------------------------------ core knobs

    def epsilon(self, value: float) -> "SessionBuilder":
        """DBSCAN / range-join distance threshold."""
        return self._set(epsilon=value)

    def cell_width(self, value: float) -> "SessionBuilder":
        """GR-index grid cell width (``lg``)."""
        return self._set(cell_width=value)

    def min_pts(self, value: int) -> "SessionBuilder":
        """DBSCAN density threshold."""
        return self._set(min_pts=value)

    def constraints(
        self,
        constraints: PatternConstraints | None = None,
        *,
        m: int | None = None,
        k: int | None = None,
        l: int | None = None,
        g: int | None = None,
    ) -> "SessionBuilder":
        """The CP(M, K, L, G) constraints — an object or the four ints."""
        if constraints is None:
            if None in (m, k, l, g):
                raise ValueError(
                    "pass a PatternConstraints or all of m, k, l, g"
                )
            constraints = PatternConstraints(m=m, k=k, l=l, g=g)
        return self._set(constraints=constraints)

    def max_delay(self, value: int) -> "SessionBuilder":
        """Bounded-delay guarantee for time synchronisation."""
        return self._set(max_delay=value)

    # ------------------------------------------------------- plugin choices

    def enumerator(self, name: str) -> "SessionBuilder":
        """Select the enumerator plugin (``baseline`` / ``fba`` / ``vba`` /
        any registered third-party name)."""
        return self._set(enumerator=name)

    def backend(
        self, name: str, *, workers: int | None = None
    ) -> "SessionBuilder":
        """Select the execution-backend plugin (and worker-pool size).

        Built-in names: ``serial`` / ``parallel`` (threads) /
        ``process`` (shared-nothing worker processes); ``workers`` sizes
        the parallel and process pools.  Omitting ``workers`` leaves any
        previously configured pool size untouched (e.g. one seeded from
        a base config).
        """
        if workers is not None:
            return self._set(backend=name, parallel_workers=workers)
        return self._set(backend=name)

    def clustering_kernel(self, name: str) -> "SessionBuilder":
        """Select the snapshot-clustering kernel plugin."""
        return self._set(clustering_kernel=name)

    def enumeration_kernel(self, name: str) -> "SessionBuilder":
        """Select the pattern-enumeration kernel plugin."""
        return self._set(enumeration_kernel=name)

    def shedding(
        self,
        policy: str,
        *,
        rate: float = 0.0,
        target_p99_ms: float | None = None,
        seed: int | None = None,
    ) -> "SessionBuilder":
        """Select the load-shedding policy plugin and its knobs.

        Built-in names: ``none`` (default) / ``random`` /
        ``pattern_aware``.  ``rate`` is the fixed shed rate — or the
        starting rate when ``target_p99_ms`` engages the
        :class:`~repro.shedding.controller.SLOController`; ``seed``
        (when given) reseeds the policy's drop RNG.
        """
        fields: dict[str, Any] = {
            "shed_policy": policy,
            "shed_rate": rate,
            "target_p99_ms": target_p99_ms,
        }
        if seed is not None:
            fields["shed_seed"] = seed
        return self._set(**fields)

    def patterns(
        self,
        family: str,
        *,
        theta: float | None = None,
        min_probability: float | None = None,
    ) -> "SessionBuilder":
        """Select the pattern-family plugin and its knobs.

        Built-in names: ``strict`` (default, the paper's exact
        semantics) / ``evolving`` (θ-continuous groups emitting
        :class:`~repro.session.events.GroupEvolved`) / ``predictive``
        (online confirmation-probability scoring emitting
        :class:`~repro.session.events.PatternForming`; requires a
        forming-state enumerator, i.e. ``fba`` / ``vba``).  ``theta``
        sets the Jaccard-continuity threshold of the evolving family;
        ``min_probability`` the emission threshold of the predictive
        family.  Omitted knobs keep their current values.
        """
        fields: dict[str, Any] = {"pattern_family": family}
        if theta is not None:
            fields["evolving_theta"] = theta
        if min_probability is not None:
            fields["prediction_min_probability"] = min_probability
        return self._set(**fields)

    def option(self, **fields: Any) -> "SessionBuilder":
        """Set any remaining :class:`ICPEConfig` field by name
        (escape hatch for knobs without a dedicated setter)."""
        return self._set(**fields)

    # --------------------------------------------------------- session wiring

    def sink(
        self, sink: PatternSink | Callable[[PatternEvent], None]
    ) -> "SessionBuilder":
        """Subscribe a sink (or bare callable) on the built session."""
        self._sinks.append(sink)
        return self

    def sinks(
        self,
        sinks: Iterable[PatternSink | Callable[[PatternEvent], None]],
    ) -> "SessionBuilder":
        """Subscribe several sinks at once, in order."""
        self._sinks.extend(sinks)
        return self

    def track_convoys(self, enabled: bool = True) -> "SessionBuilder":
        """Enable the live convoy view (ConvoyDelta events,
        ``Session.active_convoys``)."""
        self._track_convoys = enabled
        return self

    def batch_size(self, size: int) -> "SessionBuilder":
        """Auto-batching chunk for ``Session.feed_many``: plain record
        iterables are packed into columnar
        :class:`~repro.model.batch.RecordBatch` chunks of this many
        records before they enter the data plane."""
        if size < 1:
            raise ValueError(f"batch_size must be >= 1, got {size}")
        self._batch_size = size
        return self

    def observability(
        self,
        options: ObservabilityOptions | dict | bool | None = True,
        *,
        metrics_out: str | Path | None = None,
        metrics_every: int | None = None,
        trace_out: str | Path | None = None,
        console: bool | None = None,
    ) -> "SessionBuilder":
        """Enable the telemetry hub on the built session.

        Either pass a prepared
        :class:`~repro.observability.ObservabilityOptions` (or kwargs
        dict, or ``True`` for the bare in-memory registry), or use the
        keyword shorthands — ``metrics_out`` / ``metrics_every`` for
        the JSONL time series, ``trace_out`` for the span trace,
        ``console`` for the finish-time summary table::

            SessionBuilder(cfg).observability(
                metrics_out="metrics.jsonl", metrics_every=10,
            ).open()
        """
        shorthands = {
            key: value
            for key, value in (
                ("metrics_out", metrics_out),
                ("metrics_every", metrics_every),
                ("trace_out", trace_out),
                ("console", console),
            )
            if value is not None
        }
        if shorthands:
            if options is not True and options is not None:
                raise ValueError(
                    "pass either an options object/dict or keyword "
                    "shorthands, not both"
                )
            self._observability = ObservabilityOptions(**shorthands)
        else:
            self._observability = options
        return self

    def checkpoints(
        self,
        directory: str | Path,
        *,
        every_records: int | None = None,
        every_seconds: float | None = None,
        keep_last: int | None = None,
    ) -> "SessionBuilder":
        """Enable automatic periodic checkpointing on the built session.

        ``directory`` receives ``checkpoint-<watermark>.ckpt`` files at
        the cadence of ``every_records`` / ``every_seconds`` (both may
        be set; whichever fires first triggers a save; neither means
        every watermark-advancing batch).  ``keep_last`` bounds
        retention via :func:`~repro.state.sweep_checkpoints` — the
        newest valid checkpoint always survives.
        """
        self._checkpoint_dir = directory
        self._checkpoint_keep_last = keep_last
        if every_records is not None:
            self._set(checkpoint_every_records=every_records)
        if every_seconds is not None:
            self._set(checkpoint_every_seconds=every_seconds)
        return self

    def restore(self, checkpoint: Checkpoint) -> "SessionBuilder":
        """Resume the built session from a checkpoint.

        When the builder has no base config and no core knobs set, the
        checkpoint's own config seeds the build, so
        ``SessionBuilder().restore(cp).open()`` resumes exactly the
        captured run; setters may still override the execution surface
        (backend, pool size) before ``open()``.
        """
        self._restore = checkpoint
        return self

    # ---------------------------------------------------------- materialise

    def config(self) -> ICPEConfig:
        """Materialise the :class:`ICPEConfig` (validates everything).

        Raises:
            ValueError: when a required core knob is missing, a strategy
                name is unregistered, or a combination is invalid.
        """
        base = self._base
        if base is None and self._restore is not None:
            base = self._restore.config
        if base is not None:
            return (
                replace(base, **self._overrides) if self._overrides else base
            )
        missing = [
            name for name in self._REQUIRED if name not in self._overrides
        ]
        if missing:
            raise ValueError(
                f"SessionBuilder is missing required settings: {missing}; "
                f"set them or seed the builder with an ICPEConfig"
            )
        return ICPEConfig(**self._overrides)

    def open(self) -> Session:
        """Build the session (compiles the pipeline onto its backend)."""
        return Session(
            self.config(),
            track_convoys=self._track_convoys,
            sinks=self._sinks,
            batch_size=self._batch_size,
            restore=self._restore,
            observability=self._observability,
            checkpoint_dir=self._checkpoint_dir,
            checkpoint_keep_last=self._checkpoint_keep_last,
        )

    # Alias: ``builder.build()`` reads naturally in non-streaming call sites.
    build = open

    # ------------------------------------------------------------- internals

    def _set(self, **fields: Any) -> "SessionBuilder":
        self._overrides.update(fields)
        return self
