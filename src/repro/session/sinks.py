"""Pattern sinks: where a session's event stream goes.

A sink is anything with an ``on_event(event)`` method (and optionally
``close()``) — the :class:`PatternSink` protocol.  Sessions dispatch
every emitted :class:`~repro.session.events.PatternEvent` to every
subscribed sink, in subscription order, before returning the events to
the caller.  Three ready-made sinks cover the common shapes:

* :class:`CallbackSink` — adapt a bare callable;
* :class:`ListSink` — collect events (and confirmed patterns) in memory;
* :class:`JsonlSink` — stream JSON-lines to a file or handle, the
  machine-readable form the CLI's ``detect --output json`` also emits.
"""

from __future__ import annotations

import json
from typing import Callable, Protocol, TextIO, runtime_checkable

from repro.model.pattern import CoMovementPattern
from repro.session.events import PatternConfirmed, PatternEvent, event_to_dict


@runtime_checkable
class PatternSink(Protocol):
    """Structural protocol every session sink satisfies."""

    def on_event(self, event: PatternEvent) -> None:
        """Receive one session event."""

    def close(self) -> None:
        """Release sink resources; called by ``Session.close()``."""


class CallbackSink:
    """Adapt a bare callable into a sink (``fn(event)`` per event)."""

    def __init__(self, fn: Callable[[PatternEvent], None]):
        self._fn = fn

    def on_event(self, event: PatternEvent) -> None:
        """Forward the event to the wrapped callable."""
        self._fn(event)

    def close(self) -> None:
        """Nothing to release for a callback."""


class ListSink:
    """Collect every event in memory (``events``; patterns via property)."""

    def __init__(self) -> None:
        self.events: list[PatternEvent] = []

    def on_event(self, event: PatternEvent) -> None:
        """Append the event to the in-memory log."""
        self.events.append(event)

    @property
    def patterns(self) -> list[CoMovementPattern]:
        """The confirmed patterns among collected events, in order."""
        return [
            event.pattern
            for event in self.events
            if isinstance(event, PatternConfirmed)
        ]

    def close(self) -> None:
        """Nothing to release for an in-memory sink."""


class JsonlSink:
    """Write one JSON object per event (JSON-lines) to a path or handle.

    Opening by path creates/truncates the file and ``close()`` closes
    it; a caller-provided handle is borrowed and left open (the caller
    owns its lifecycle) — matching the usual file-sink convention.
    """

    def __init__(self, target: str | TextIO):
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._closed = False

    def on_event(self, event: PatternEvent) -> None:
        """Serialize one event as a JSON line."""
        if self._closed:
            raise RuntimeError("JsonlSink is closed")
        self._handle.write(json.dumps(event_to_dict(event)) + "\n")

    def close(self) -> None:
        """Flush, and close the handle if this sink opened it."""
        if self._closed:
            return
        self._closed = True
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


def as_sink(target: "PatternSink | Callable[[PatternEvent], None]") -> PatternSink:
    """Coerce a sink or bare callable into a :class:`PatternSink`.

    ``Session.subscribe`` accepts either; objects already satisfying the
    protocol pass through, callables are wrapped in
    :class:`CallbackSink`.
    """
    if isinstance(target, PatternSink):
        return target
    if callable(target):
        return CallbackSink(target)
    raise TypeError(
        f"expected a PatternSink or callable, got {type(target).__name__}"
    )
