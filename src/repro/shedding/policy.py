"""Shed policies: which records of an incoming batch to drop.

A policy sees one ingest batch at a time — the record oids, the current
shed rate, and (for state-aware policies) the *protected set*: oids the
enumeration stage reports as participating in a partial match (an open
FBA window or an unclosed VBA bit string).  It returns the indices to
drop.  Semantics are Bernoulli per record rather than a floor quota, so
a 10% rate sheds ~10% of records even when batches arrive one record at
a time (``Session.feed``) where ``floor(0.1 * 1)`` would shed nothing.

Invariants every policy must honour (property-tested in
``tests/shedding/``):

* at rate ``<= 0`` no record is dropped **and the policy's RNG is not
  advanced** — a rate-0 run is byte-identical to a no-shedding run;
* :class:`PatternAwareShedPolicy` never returns the index of a record
  whose oid is in the protected set, at any rate.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence


class ShedPolicy(ABC):
    """Per-batch drop-selection contract (plugin kind ``shed_policy``).

    Subclasses set :attr:`name` and implement :meth:`select_drops`.
    Policies that consult the enumeration stage's protected set declare
    ``consults_state = True`` so the session only pays for the
    protected-set query when a policy will read it.
    """

    #: Registry selection name of the policy.
    name: str = "abstract"

    #: True when :meth:`select_drops` reads the protected set.
    consults_state: bool = False

    @abstractmethod
    def select_drops(
        self,
        oids: Sequence[int],
        rate: float,
        protected: frozenset[int],
    ) -> list[int]:
        """Indices (into ``oids``) of the records to drop.

        ``rate`` is the fraction of the batch the controller wants shed
        (``0 <= rate < 1``); ``protected`` is the enumeration stage's
        live protected set (always empty for policies with
        ``consults_state = False``).
        """

    def snapshot_state(self) -> dict:
        """Serialisable policy state (RNG position, counters)."""
        return {}

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting of retained policy state."""
        return {}


class NoShedPolicy(ShedPolicy):
    """The default: never drops anything, touches no RNG."""

    name = "none"

    def select_drops(
        self,
        oids: Sequence[int],
        rate: float,
        protected: frozenset[int],
    ) -> list[int]:
        """Always empty."""
        return []


class RandomShedPolicy(ShedPolicy):
    """Uniform Bernoulli shedding — the classical state-blind baseline.

    Every record of the batch is dropped independently with probability
    ``rate``.  Deterministic per seed, so differential tests can replay
    identical drop sequences.
    """

    name = "random"

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = random.Random(seed)

    def select_drops(
        self,
        oids: Sequence[int],
        rate: float,
        protected: frozenset[int],
    ) -> list[int]:
        """Drop each index independently with probability ``rate``."""
        if rate <= 0.0:
            return []
        rng = self._rng
        return [i for i in range(len(oids)) if rng.random() < rate]

    def snapshot_state(self) -> dict:
        """The RNG position (pickled verbatim by the checkpoint codec)."""
        return {"rng": self._rng.getstate()}

    def restore_state(self, payload: dict) -> None:
        """Resume the drop sequence exactly where the snapshot left it."""
        self._rng.setstate(payload["rng"])


class PatternAwareShedPolicy(ShedPolicy):
    """Semantic shedding: drop only *cold* records, protect partial matches.

    A record is cold when its oid appears in no active anchor bit
    string — no open FBA window, no unclosed VBA candidate — so
    dropping it cannot break a pattern the enumerators are already
    assembling.  Protected records are never dropped, at any rate.

    To stay comparable with :class:`RandomShedPolicy` at equal
    configured rates, the Bernoulli probability over the cold records
    is inflated to ``min(1, rate * n / n_cold)``: the *expected shed
    volume* matches the configured rate whenever enough cold records
    exist, and saturates at "every cold record" when the protected set
    dominates the batch.
    """

    name = "pattern_aware"
    consults_state = True

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = random.Random(seed)

    def select_drops(
        self,
        oids: Sequence[int],
        rate: float,
        protected: frozenset[int],
    ) -> list[int]:
        """Drop cold indices with the volume-matched probability."""
        if rate <= 0.0:
            return []
        cold = [i for i, oid in enumerate(oids) if oid not in protected]
        if not cold:
            return []
        probability = min(1.0, rate * len(oids) / len(cold))
        rng = self._rng
        return [i for i in cold if rng.random() < probability]

    def snapshot_state(self) -> dict:
        """The RNG position (pickled verbatim by the checkpoint codec)."""
        return {"rng": self._rng.getstate()}

    def restore_state(self, payload: dict) -> None:
        """Resume the drop sequence exactly where the snapshot left it."""
        self._rng.setstate(payload["rng"])
