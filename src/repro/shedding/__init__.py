"""Load shedding: drop cheap records under overload, keep forming patterns.

At production ingest rates the pipeline cannot assume compute keeps up
(ROADMAP north star: millions of users).  This package gives the
:class:`~repro.session.Session` a principled way to fall behind
gracefully:

* :class:`~repro.shedding.policy.ShedPolicy` — the per-batch drop
  contract, with three built-ins registered on the plugin registry
  under the ``shed_policy`` kind: ``none`` (default, zero overhead),
  ``random`` (uniform Bernoulli drops, the classical baseline) and
  ``pattern_aware`` (consults live enumeration state and only drops
  *cold* records — objects appearing in no open FBA window or unclosed
  VBA bit string — so forming patterns keep their evidence).
* :class:`~repro.shedding.controller.SLOController` — a feedback loop
  that samples end-to-end snapshot latency and per-stage busy time and
  adapts the shed rate toward a target p99 with hysteresis.

Both pieces implement the OperatorState contract (``snapshot_state`` /
``restore_state`` / ``state_metrics``) so shedding state rides through
``Session.checkpoint()`` / restore unchanged.
"""

from repro.shedding.controller import SLOController
from repro.shedding.policy import (
    NoShedPolicy,
    PatternAwareShedPolicy,
    RandomShedPolicy,
    ShedPolicy,
)

__all__ = [
    "NoShedPolicy",
    "PatternAwareShedPolicy",
    "RandomShedPolicy",
    "SLOController",
    "ShedPolicy",
]
