"""The latency-SLO feedback controller driving the shed rate.

The session reports every processed snapshot's end-to-end latency and
per-stage busy time to :class:`SLOController`; the controller keeps a
sliding window of latencies, computes the windowed p99 and p50, and
nudges the shed rate up when the p99 overshoots the target and back
down when it clears it — with a hysteresis deadband so the rate does
not oscillate around the setpoint.  With no target configured the
controller is inert and simply holds the statically configured rate
(the mode the recall-vs-latency sweeps use).
"""

from __future__ import annotations

from repro.observability.instruments import Histogram

#: Defaults, tuned for snapshot-granularity observations.
DEFAULT_WINDOW = 32
DEFAULT_STEP = 0.05
DEFAULT_MAX_RATE = 0.95
DEFAULT_HYSTERESIS = 0.10


class SLOController:
    """Adapts the shed rate toward a target p99 snapshot latency.

    Args:
        target_p99_ms: the SLO.  ``None`` disables adaptation — the
            rate stays at ``initial_rate`` forever (static sweeps).
        initial_rate: the starting shed rate (``ICPEConfig.shed_rate``).
        window: number of recent snapshot latencies the percentile is
            computed over.
        step: additive rate adjustment per out-of-band observation.
        max_rate: hard ceiling on the adapted rate (never shed
            everything).
        hysteresis: relative deadband around the target — the rate only
            moves when the windowed p99 leaves
            ``[target * (1 - h), target * (1 + h)]``.
        histogram: the latency :class:`~repro.observability.instruments.
            Histogram` the controller observes into and computes its
            windowed percentiles over.  ``None`` builds a private one of
            ``window`` samples; a session with telemetry enabled passes
            its registry's ``repro_slo_latency_ms`` instrument instead,
            so controller-steered and registry-exported percentiles are
            computed over the same samples by the same shared helper.
            When given, its window capacity *is* the controller window
            (``window`` is ignored).
    """

    def __init__(
        self,
        *,
        target_p99_ms: float | None = None,
        initial_rate: float = 0.0,
        window: int = DEFAULT_WINDOW,
        step: float = DEFAULT_STEP,
        max_rate: float = DEFAULT_MAX_RATE,
        hysteresis: float = DEFAULT_HYSTERESIS,
        histogram: Histogram | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        if not 0.0 <= initial_rate < 1.0:
            raise ValueError(f"initial_rate must be in [0, 1): {initial_rate}")
        self.target_p99_ms = target_p99_ms
        self._rate = initial_rate
        self._floor = 0.0 if target_p99_ms is not None else initial_rate
        self._hist = (
            histogram if histogram is not None else Histogram(window=window)
        )
        self._step = step
        self._max_rate = max_rate
        self._hysteresis = hysteresis
        self._observed = 0
        self._stage_busy: dict[str, float] = {}

    @property
    def rate(self) -> float:
        """The current shed rate handed to the policy each batch."""
        return self._rate

    @property
    def observed(self) -> int:
        """Total snapshot observations fed to the controller."""
        return self._observed

    @property
    def max_rate(self) -> float:
        """Hard ceiling on the adapted shed rate."""
        return self._max_rate

    @property
    def latency_histogram(self) -> Histogram:
        """The latency instrument the controller observes into."""
        return self._hist

    def observe(
        self,
        latency_ms: float,
        stage_busy_seconds: dict[str, float] | None = None,
    ) -> None:
        """Record one snapshot's latency (and stage busy time); adapt.

        Adaptation only runs once the window is full, so a cold start
        does not chase the first noisy observations.
        """
        self._observed += 1
        self._hist.observe(latency_ms)
        for stage, busy in (stage_busy_seconds or {}).items():
            self._stage_busy[stage] = self._stage_busy.get(stage, 0.0) + busy
        target = self.target_p99_ms
        if target is None or not self._hist.window_full:
            return
        p99 = self._hist.percentile(99.0)
        if p99 > target * (1.0 + self._hysteresis):
            self._rate = min(self._max_rate, self._rate + self._step)
        elif p99 < target * (1.0 - self._hysteresis):
            self._rate = max(self._floor, self._rate - self._step)

    def windowed_p99_ms(self) -> float:
        """p99 over the current latency window (0.0 when empty)."""
        return self._hist.percentile(99.0)

    def windowed_p50_ms(self) -> float:
        """p50 over the current latency window (0.0 when empty)."""
        return self._hist.percentile(50.0)

    def stage_busy_seconds(self) -> dict[str, float]:
        """Cumulative busy seconds per stage, as sampled from StageWork."""
        return dict(self._stage_busy)

    def snapshot_state(self) -> dict:
        """Serialisable controller state for checkpoints."""
        return {
            "rate": self._rate,
            "observed": self._observed,
            "window": self._hist.samples(),
            "stage_busy": dict(self._stage_busy),
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`.

        Only the controller's view — the percentile window — is
        restored into the histogram; its cumulative bucket side belongs
        to the telemetry hub and is restored with the registry when one
        is attached.
        """
        self._rate = payload["rate"]
        self._observed = payload["observed"]
        self._hist.replace_window(payload["window"])
        self._stage_busy = dict(payload["stage_busy"])

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: latency window and stage map sizes."""
        return {
            "latency_window": len(self._hist.samples()),
            "stages_tracked": len(self._stage_busy),
        }
