"""The typed plugin registry: one front door for every strategy axis.

A :class:`PluginSpec` names a strategy (``kind`` + ``name``), carries its
construction callable and its :class:`~repro.registry.capabilities.
PluginCapabilities`, and a :class:`PluginRegistry` holds the specs of
every axis — execution backends, clustering kernels, enumeration
kernels, enumerators — behind uniform ``register`` / ``get`` / ``names``
operations.  Cross-axis validity (e.g. a bitmap-batching enumeration
kernel needs a bitmap-providing enumerator) is computed declaratively
from capability pairs by :func:`check_selection`, replacing the
per-combination if-chains that previously lived in
``ICPEConfig.__post_init__``.

The error classes double-inherit from the built-in exception types the
pre-registry code raised (``ValueError`` for bad names and invalid
combinations, ``RuntimeError`` for missing optional dependencies), so
every existing caller and test keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.registry.capabilities import PluginCapabilities

#: The six built-in strategy axes.  Registration is not limited to these
#: — a future axis (e.g. pattern sinks, state backends) is just a new
#: ``kind`` string — but these are the axes ``ICPEConfig`` validates.
PLUGIN_KINDS = (
    "backend",
    "clustering_kernel",
    "enumeration_kernel",
    "enumerator",
    "shed_policy",
    "pattern_family",
)


class PluginError(Exception):
    """Base class for every registry error."""


class UnknownPluginError(PluginError, ValueError):
    """No plugin of the requested kind is registered under the name."""


class DuplicatePluginError(PluginError, ValueError):
    """A plugin with the same (kind, name) is already registered."""


class PluginCompatibilityError(PluginError, ValueError):
    """A selected combination of plugins is invalid by capability."""


class PluginUnavailableError(PluginError, RuntimeError):
    """A selected plugin's runtime requirement (e.g. NumPy) is unmet."""


def _numpy_available() -> bool:
    """True when the optional NumPy dependency actually imports.

    Delegates to the kernels layer's import-based probe (rather than a
    ``find_spec`` check) so a present-but-broken installation is
    reported unavailable here exactly as it is everywhere else.
    """
    from repro.kernels.numpy_kernel import numpy_available

    return numpy_available()


@dataclass(frozen=True, slots=True)
class PluginSpec:
    """One registered strategy: identity, factory, capabilities.

    Attributes:
        kind: the strategy axis (see :data:`PLUGIN_KINDS`).
        name: the selection name (what ``ICPEConfig`` fields and CLI
            flags accept).
        factory: the construction callable.  Its signature is fixed per
            kind — see :mod:`repro.registry.builtin` for the reference
            signatures each axis uses.
        capabilities: declarative requirement/provision metadata.
        summary: one-line human description (CLI ``plugins`` listing).
        source: provenance marker — ``"builtin"``, ``"entry-point"`` or
            ``"runtime"`` (registered programmatically).
    """

    kind: str
    name: str
    factory: Callable[..., Any]
    capabilities: PluginCapabilities = field(
        default_factory=PluginCapabilities
    )
    summary: str = ""
    source: str = "runtime"

    def __post_init__(self) -> None:
        if not self.kind or not self.name:
            raise PluginError(
                f"plugin kind and name must be non-empty: "
                f"kind={self.kind!r} name={self.name!r}"
            )

    def missing_requirement(self) -> str | None:
        """Name of the unmet runtime requirement, or ``None`` if usable."""
        if self.capabilities.requires_numpy and not _numpy_available():
            return "NumPy"
        return None

    def available(self) -> bool:
        """True when every runtime requirement of the plugin is met."""
        return self.missing_requirement() is None

    def create(self, *args: Any, **kwargs: Any) -> Any:
        """Construct the plugin, first enforcing runtime requirements."""
        missing = self.missing_requirement()
        if missing is not None:
            raise PluginUnavailableError(
                f"{self.kind} {self.name!r} requires {missing}, which is "
                f"not installed"
            )
        return self.factory(*args, **kwargs)


def check_selection(selection: dict[str, PluginSpec]) -> None:
    """Validate one plugin per axis against each other's capabilities.

    ``selection`` maps kind -> chosen spec; absent axes are skipped, so
    partial selections (e.g. a clustering-only bench) validate too.

    Raises:
        PluginCompatibilityError: when a capability requirement of one
            selected plugin is not provided by the selected plugin of
            another axis.
    """
    enum_kernel = selection.get("enumeration_kernel")
    enumerator = selection.get("enumerator")
    if enum_kernel is not None and enumerator is not None:
        caps = enum_kernel.capabilities
        if (
            caps.requires_bitmap_enumeration
            and not enumerator.capabilities.provides_bitmap_enumeration
        ):
            raise PluginCompatibilityError(
                f"enumeration_kernel {enum_kernel.name!r} batches "
                f"membership bit strings and requires a bitmap-providing "
                f"enumerator; enumerator {enumerator.name!r} has no "
                f"bitmap form — use enumeration_kernel='python'"
            )
        allowed = caps.compatible_enumerators
        if allowed is not None and enumerator.name not in allowed:
            raise PluginCompatibilityError(
                f"enumeration_kernel {enum_kernel.name!r} supports "
                f"enumerators {allowed}; got {enumerator.name!r}"
            )
    family = selection.get("pattern_family")
    if (
        family is not None
        and enumerator is not None
        and family.capabilities.predicts_patterns
        and not enumerator.capabilities.provides_forming_state
    ):
        raise PluginCompatibilityError(
            f"pattern_family {family.name!r} scores live partial matches "
            f"and requires a forming-state enumerator; enumerator "
            f"{enumerator.name!r} exposes none — use enumerator='fba' or "
            f"'vba'"
        )


class PluginRegistry:
    """Uniform registration and lookup across every strategy axis.

    Specs are kept in registration order per kind, so built-ins come
    first and listings are deterministic.  The registry itself is plain
    and instantiable (tests build throwaway ones); the process-wide
    instance most code consults lives behind
    :func:`repro.registry.default_registry`.
    """

    def __init__(self) -> None:
        self._specs: dict[str, dict[str, PluginSpec]] = {}

    def register(self, spec: PluginSpec, *, replace: bool = False) -> PluginSpec:
        """Add one spec; returns it for chaining.

        Raises:
            DuplicatePluginError: when the (kind, name) slot is taken and
                ``replace`` is false.
        """
        bucket = self._specs.setdefault(spec.kind, {})
        if spec.name in bucket and not replace:
            raise DuplicatePluginError(
                f"{spec.kind} plugin {spec.name!r} is already registered "
                f"(source={bucket[spec.name].source!r}); pass replace=True "
                f"to override"
            )
        bucket[spec.name] = spec
        return spec

    def register_all(self, specs: Iterable[PluginSpec]) -> None:
        """Register every spec of an iterable (no replacement)."""
        for spec in specs:
            self.register(spec)

    def has(self, kind: str, name: str) -> bool:
        """True when a plugin of ``kind`` is registered under ``name``."""
        return name in self._specs.get(kind, {})

    def get(self, kind: str, name: str) -> PluginSpec:
        """Look one spec up.

        Raises:
            UnknownPluginError: listing the registered names of the kind,
                so the message doubles as the CLI's "did you mean" line.
        """
        bucket = self._specs.get(kind, {})
        spec = bucket.get(name)
        if spec is None:
            known = tuple(bucket) or ("<none registered>",)
            raise UnknownPluginError(
                f"unknown {kind.replace('_', ' ')} {name!r} "
                f"(plugin kind {kind!r}); registered: {known}"
            )
        return spec

    def names(self, kind: str) -> tuple[str, ...]:
        """Registered names of one kind, in registration order."""
        return tuple(self._specs.get(kind, {}))

    def available_names(self, kind: str) -> tuple[str, ...]:
        """Names of one kind whose runtime requirements are met."""
        return tuple(
            spec.name
            for spec in self._specs.get(kind, {}).values()
            if spec.available()
        )

    def specs(self, kind: str | None = None) -> tuple[PluginSpec, ...]:
        """Every spec of one kind — or of all kinds, grouped by kind."""
        if kind is not None:
            return tuple(self._specs.get(kind, {}).values())
        return tuple(
            spec
            for bucket in self._specs.values()
            for spec in bucket.values()
        )

    def kinds(self) -> tuple[str, ...]:
        """Every kind with at least one registered plugin."""
        return tuple(self._specs)

    def create(self, kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Resolve and construct a plugin in one step."""
        return self.get(kind, name).create(*args, **kwargs)

    def validate_selection(self, **names: str | None) -> dict[str, PluginSpec]:
        """Resolve one name per axis and check cross-axis compatibility.

        Keyword names are kinds (``backend=``, ``clustering_kernel=``,
        ``enumeration_kernel=``, ``enumerator=``, ``shed_policy=``,
        ``pattern_family=``); ``None`` skips an axis.  Returns the
        resolved kind -> spec mapping.

        Raises:
            UnknownPluginError: for a name no plugin is registered under.
            PluginCompatibilityError: for an invalid combination.
        """
        selection: dict[str, PluginSpec] = {}
        for kind, name in names.items():
            if name is None:
                continue
            selection[kind] = self.get(kind, name)
        check_selection(selection)
        return selection
