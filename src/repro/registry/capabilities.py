"""Per-plugin capability metadata driving declarative compatibility.

PRs 1-3 grew three strategy axes (execution backends, clustering
kernels, enumeration kernels) plus the enumerator choice, each policing
its own combinations with hand-rolled if-chains — the baseline x numpy
rejection lived in ``ICPEConfig.__post_init__``, the NumPy-missing check
in each kernel constructor, the ablation restriction in ``make_kernel``.
:class:`PluginCapabilities` turns those facts into *data* attached to
each registered plugin, so cross-axis validity is computed from
capability pairs (see :func:`repro.registry.core.check_selection`)
instead of being re-encoded wherever two axes meet.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True, slots=True)
class PluginCapabilities:
    """What a plugin needs and what it provides.

    Attributes:
        requires_numpy: the plugin cannot be constructed without the
            optional NumPy dependency (vectorized kernels).
        provides_bitmap_enumeration: the enumerator maintains Definition
            13/14 membership bit strings (FBA / VBA) and therefore has a
            batched bitmap form.
        requires_bitmap_enumeration: the enumeration kernel batches
            membership bitmaps and can only host enumerators that
            provide them (``provides_bitmap_enumeration``).
        supports_ablation: the clustering kernel honours the Lemma-1/2 /
            local-index ablation switches; vectorized kernels have no
            object path and must be combined with default switches only.
        honours_cell_width: the clustering kernel uses the configured
            GR-index cell width ``lg``; vectorized kernels derive their
            bucket width from epsilon, so Fig. 11 grid sweeps only
            measure kernels with this capability.
        compatible_enumerators: optional explicit allow-list of
            enumerator names an enumeration kernel supports; ``None``
            means "no restriction beyond the bitmap requirement".  Lets
            a third-party kernel pin itself to specific enumerators
            without shipping a new capability flag.
        supports_batch_ingest: the execution backend routes columnar
            :class:`~repro.model.batch.SnapshotBatch` envelopes through
            its keyed exchanges (batch-shaped exchange: one envelope per
            destination partition per batch).  Every built-in backend
            declares it; the pipeline falls back to per-row elements for
            backends that do not.
        supports_process_isolation: the execution backend runs subtasks
            in separate OS processes (shared-nothing address spaces, no
            GIL contention) and rebuilds operator state per worker from a
            bound :class:`~repro.streaming.runtime.base.GraphSpec`
            instead of receiving it from the caller.  Drivers use this
            to know the backend needs ``bind_graph()`` before running.
        supports_checkpoint: the execution backend can capture and
            restore its operators' state through the
            ``collect_states`` / ``restore_states`` surface, making
            ``Session.checkpoint()`` available on top of it.  Every
            built-in backend declares it (the process backend drains its
            workers through the synchronous reply protocol).
        protects_patterns: the shed policy consults live enumeration
            state and never drops a record whose object participates in
            a partial match (an open FBA window / unclosed VBA bit
            string).  Policies without it shed blindly — cheaper per
            batch, but they trade recall for latency.
        provides_forming_state: the enumerator can describe its live
            partial matches (open FBA windows / unclosed VBA bit
            strings) as forming-candidate descriptors, the input of the
            prediction scorer.  FBA and VBA provide it; the baseline's
            materialised subsets have no per-candidate bit strings.
        detects_evolving_groups: the pattern family tracks groups whose
            membership may drift between consecutive snapshots under a
            Jaccard-continuity threshold θ, emitting ``GroupEvolved``
            events alongside the strict pattern stream.
        predicts_patterns: the pattern family scores live partial
            matches by their probability of reaching K snapshots and
            emits ``PatternForming`` events before confirmation.  It
            can only be combined with enumerators that declare
            ``provides_forming_state``.
        exports_telemetry: the execution backend records per-invocation
            :class:`~repro.streaming.dataflow.SpanRecord` spans at the
            operator call site and surfaces them to the master through
            ``drain_spans`` (process workers ship spans on the reply
            protocol), so the observability hub sees an identical span
            stream regardless of where subtasks physically run.  Every
            built-in backend declares it.
    """

    requires_numpy: bool = False
    provides_bitmap_enumeration: bool = False
    requires_bitmap_enumeration: bool = False
    supports_ablation: bool = True
    honours_cell_width: bool = True
    compatible_enumerators: tuple[str, ...] | None = None
    supports_batch_ingest: bool = False
    supports_process_isolation: bool = False
    supports_checkpoint: bool = False
    protects_patterns: bool = False
    provides_forming_state: bool = False
    detects_evolving_groups: bool = False
    predicts_patterns: bool = False
    exports_telemetry: bool = False

    def flags(self) -> dict[str, object]:
        """The capability fields as a flat name -> value mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary_markers(self) -> str:
        """Compact marker string for CLI listings (e.g. ``numpy,bitmap``)."""
        markers: list[str] = []
        if self.requires_numpy:
            markers.append("requires-numpy")
        if self.provides_bitmap_enumeration:
            markers.append("bitmap")
        if self.requires_bitmap_enumeration:
            markers.append("needs-bitmap")
        if not self.supports_ablation:
            markers.append("no-ablation")
        if not self.honours_cell_width:
            markers.append("epsilon-buckets")
        if self.compatible_enumerators is not None:
            markers.append(
                "enumerators=" + "|".join(self.compatible_enumerators)
            )
        if self.supports_batch_ingest:
            markers.append("batch-ingest")
        if self.supports_process_isolation:
            markers.append("process-isolated")
        if self.supports_checkpoint:
            markers.append("checkpoint")
        if self.protects_patterns:
            markers.append("protects-patterns")
        if self.provides_forming_state:
            markers.append("forming-state")
        if self.detects_evolving_groups:
            markers.append("evolving-groups")
        if self.predicts_patterns:
            markers.append("predicts-patterns")
        if self.exports_telemetry:
            markers.append("telemetry")
        return ",".join(markers) if markers else "-"
