"""Third-party plugin discovery via ``importlib.metadata`` entry points.

A package registers plugins without touching this repository by
declaring an entry point in the ``repro.plugins`` group::

    [project.entry-points."repro.plugins"]
    my-backend = my_package.plugins:register

The entry point may resolve to any of:

* a callable taking the :class:`~repro.registry.core.PluginRegistry`
  (most flexible — register as many specs as you like);
* a single :class:`~repro.registry.core.PluginSpec`;
* an iterable of :class:`~repro.registry.core.PluginSpec`.

Discovery is fail-soft: a broken third-party distribution must not take
down every ``import repro``, so load errors become warnings and the
remaining entry points still register.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.registry.core import PluginRegistry, PluginSpec

#: The entry-point group third-party packages register under.
ENTRY_POINT_GROUP = "repro.plugins"


def _default_entries() -> Iterable:
    from importlib.metadata import entry_points

    return entry_points(group=ENTRY_POINT_GROUP)


def load_entry_point_plugins(
    registry: PluginRegistry, entries: Iterable | None = None
) -> int:
    """Load and apply every ``repro.plugins`` entry point.

    ``entries`` overrides the installed-distribution scan (tests inject
    synthetic entry points this way).  Returns the number of entry
    points that applied cleanly; failures warn and are skipped.
    """
    if entries is None:
        entries = _default_entries()
    loaded = 0
    for entry in entries:
        try:
            _apply(registry, entry.load())
            loaded += 1
        except Exception as error:  # fail-soft: never break `import repro`
            warnings.warn(
                f"repro plugin entry point {getattr(entry, 'name', entry)!r} "
                f"failed to load: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
    return loaded


def _apply(registry: PluginRegistry, target) -> None:
    """Register whatever shape one resolved entry point produced."""
    if isinstance(target, PluginSpec):
        registry.register(target)
        return
    if callable(target):
        result = target(registry)
        if isinstance(result, PluginSpec):
            registry.register(result)
        elif result is not None:
            registry.register_all(result)
        return
    registry.register_all(target)
