"""Registration of the built-in strategies on a plugin registry.

Every strategy PRs 1-3 introduced ad hoc is re-registered here through
the one typed extension point: the three execution backends
(``streaming/runtime/``), both clustering kernels (``kernels/``), both
enumeration kernels (``enumeration/kernels/``), the three enumerators
(baseline / FBA / VBA), the shed policies (``shedding/``) and the
pattern families (``patterns/``).  Factories import their modules
lazily so loading the registry stays cheap and free of import cycles —
the heavy strategy code is only touched when a plugin is constructed.

Factory signatures per axis (third-party plugins must match):

* ``backend``: ``factory(max_workers: int | None = None)`` returning an
  :class:`~repro.streaming.runtime.base.ExecutionBackend`;
* ``clustering_kernel``: ``factory(*, epsilon, min_pts, cell_width,
  metric_name, lemma1, lemma2, local_index, rtree_fanout)`` returning a
  :class:`~repro.kernels.base.ClusteringKernel`;
* ``enumeration_kernel``: ``factory(*, enumerator, constraints,
  ba_max_partition_size, vba_candidate_retention)`` returning an
  :class:`~repro.enumeration.kernels.base.EnumerationKernel`;
* ``enumerator``: ``factory(anchor, constraints, *,
  ba_max_partition_size, vba_candidate_retention)`` returning an
  :class:`~repro.enumeration.base.AnchorEnumerator`;
* ``shed_policy``: ``factory(seed: int | None = 0)`` returning a
  :class:`~repro.shedding.policy.ShedPolicy` (the seed drives the
  policy's drop RNG; stateless policies ignore it);
* ``pattern_family``: ``factory(constraints, *, theta: float = 0.5,
  min_probability: float = 0.0)`` returning a
  :class:`~repro.patterns.base.PatternFamily` (``theta`` is the
  Jaccard-continuity threshold of the evolving family,
  ``min_probability`` the emission threshold of the predictive family;
  families ignore knobs they do not use).
"""

from __future__ import annotations

from repro.registry.capabilities import PluginCapabilities
from repro.registry.core import PluginRegistry, PluginSpec

# ------------------------------------------------------------------ backends


def _serial_backend(max_workers: int | None = None):
    """The sequential reference backend (``max_workers`` is ignored)."""
    from repro.streaming.runtime.serial import SerialBackend

    return SerialBackend()


def _parallel_backend(max_workers: int | None = None):
    """The worker-pool backend with batched keyed exchanges."""
    from repro.streaming.runtime.parallel import ParallelBackend

    return ParallelBackend(max_workers=max_workers)


def _process_backend(max_workers: int | None = None):
    """The shared-nothing worker-process backend (shm exchanges)."""
    from repro.streaming.runtime.process import ProcessBackend

    return ProcessBackend(max_workers=max_workers)


# ---------------------------------------------------------- clustering kernels


def _python_clustering_kernel(**params):
    """The reference GR-index object path (honours every ablation)."""
    from repro.kernels.python_ref import PythonKernel

    return PythonKernel(**params)


def _numpy_clustering_kernel(
    *,
    epsilon: float,
    min_pts: int,
    cell_width: float,
    metric_name: str = "l1",
    **ablation,
):
    """The vectorized array kernel.

    The vectorized path has no object walk (no replication, no local
    trees, its own epsilon-derived bucket width): ``cell_width`` and the
    ablation switches are absorbed unused.  Non-default ablation
    switches never reach this factory — the spec declares
    ``supports_ablation=False`` and ``make_kernel`` enforces that
    capability declaratively for every registered kernel.
    """
    from repro.kernels.numpy_kernel import NumpyKernel

    return NumpyKernel(epsilon=epsilon, min_pts=min_pts, metric_name=metric_name)


# --------------------------------------------------------- enumeration kernels


def _python_enumeration_kernel(
    *,
    enumerator: str,
    constraints,
    ba_max_partition_size: int = 20,
    vba_candidate_retention: int | None = None,
):
    """Reference per-anchor state machines behind the batched contract."""
    from repro.enumeration.kernels.python_ref import (
        PythonEnumerationKernel,
        anchor_enumerator_factory,
    )

    return PythonEnumerationKernel(
        anchor_enumerator_factory(
            enumerator,
            constraints,
            ba_max_partition_size=ba_max_partition_size,
            vba_candidate_retention=vba_candidate_retention,
        )
    )


def _numpy_enumeration_kernel(
    *,
    enumerator: str,
    constraints,
    ba_max_partition_size: int = 20,
    vba_candidate_retention: int | None = None,
):
    """Batched membership-bitmap kernel (FBA / VBA forms only)."""
    from repro.enumeration.kernels.numpy_kernel import NumpyEnumerationKernel

    return NumpyEnumerationKernel(
        enumerator,
        constraints,
        vba_candidate_retention=vba_candidate_retention,
    )


# ----------------------------------------------------------------- enumerators


def _baseline_enumerator(
    anchor: int,
    constraints,
    *,
    ba_max_partition_size: int = 20,
    vba_candidate_retention: int | None = None,
):
    """BA: subset materialisation with the partition-size cap."""
    from repro.enumeration.baseline import BAEnumerator

    return BAEnumerator(
        anchor, constraints, max_partition_size=ba_max_partition_size
    )


def _fba_enumerator(
    anchor: int,
    constraints,
    *,
    ba_max_partition_size: int = 20,
    vba_candidate_retention: int | None = None,
):
    """FBA: forward bit-compression over sliding windows."""
    from repro.enumeration.fba import FBAEnumerator

    return FBAEnumerator(anchor, constraints)


def _vba_enumerator(
    anchor: int,
    constraints,
    *,
    ba_max_partition_size: int = 20,
    vba_candidate_retention: int | None = None,
):
    """VBA: verification bit-compression with the global candidate list."""
    from repro.enumeration.vba import VBAEnumerator

    return VBAEnumerator(
        anchor, constraints, candidate_retention=vba_candidate_retention
    )


# --------------------------------------------------------------- shed policies


def _none_shed_policy(seed: int | None = 0):
    """The default no-op policy (``seed`` is ignored)."""
    from repro.shedding.policy import NoShedPolicy

    return NoShedPolicy()


def _random_shed_policy(seed: int | None = 0):
    """Uniform Bernoulli shedding, the state-blind baseline."""
    from repro.shedding.policy import RandomShedPolicy

    return RandomShedPolicy(seed=seed)


def _pattern_aware_shed_policy(seed: int | None = 0):
    """Semantic shedding that protects live partial matches."""
    from repro.shedding.policy import PatternAwareShedPolicy

    return PatternAwareShedPolicy(seed=seed)


# ------------------------------------------------------------- pattern families


def _strict_pattern_family(constraints, *, theta: float = 0.5,
                           min_probability: float = 0.0):
    """The paper's exact CP(M, K, L, G) semantics (no extra machinery)."""
    from repro.patterns.base import StrictFamily

    return StrictFamily()


def _evolving_pattern_family(constraints, *, theta: float = 0.5,
                             min_probability: float = 0.0):
    """Relaxed co-movement with θ-bounded membership drift."""
    from repro.patterns.evolving import EvolvingGroupTracker

    return EvolvingGroupTracker(constraints, theta=theta)


def _predictive_pattern_family(constraints, *, theta: float = 0.5,
                               min_probability: float = 0.0):
    """Online confirmation-probability scoring of forming candidates."""
    from repro.patterns.prediction import PredictiveFamily

    return PredictiveFamily(constraints, min_probability=min_probability)


BUILTIN_SPECS: tuple[PluginSpec, ...] = (
    PluginSpec(
        kind="backend",
        name="serial",
        factory=_serial_backend,
        capabilities=PluginCapabilities(
            supports_batch_ingest=True,
            supports_checkpoint=True,
            exports_telemetry=True,
        ),
        summary="sequential in-thread execution (deterministic reference)",
        source="builtin",
    ),
    PluginSpec(
        kind="backend",
        name="parallel",
        factory=_parallel_backend,
        capabilities=PluginCapabilities(
            supports_batch_ingest=True,
            supports_checkpoint=True,
            exports_telemetry=True,
        ),
        summary="worker-pool execution with batched keyed exchanges",
        source="builtin",
    ),
    PluginSpec(
        kind="backend",
        name="process",
        factory=_process_backend,
        capabilities=PluginCapabilities(
            supports_batch_ingest=True,
            supports_process_isolation=True,
            supports_checkpoint=True,
            exports_telemetry=True,
        ),
        summary="shared-nothing worker processes, shared-memory exchanges",
        source="builtin",
    ),
    PluginSpec(
        kind="clustering_kernel",
        name="python",
        factory=_python_clustering_kernel,
        capabilities=PluginCapabilities(),
        summary="reference GR-index object path (honours every ablation)",
        source="builtin",
    ),
    PluginSpec(
        kind="clustering_kernel",
        name="numpy",
        factory=_numpy_clustering_kernel,
        capabilities=PluginCapabilities(
            requires_numpy=True,
            supports_ablation=False,
            honours_cell_width=False,
        ),
        summary="vectorized bucketing + searchsorted join + array DBSCAN",
        source="builtin",
    ),
    PluginSpec(
        kind="enumeration_kernel",
        name="python",
        factory=_python_enumeration_kernel,
        capabilities=PluginCapabilities(),
        summary="reference per-anchor BA/FBA/VBA state machines",
        source="builtin",
    ),
    PluginSpec(
        kind="enumeration_kernel",
        name="numpy",
        factory=_numpy_enumeration_kernel,
        capabilities=PluginCapabilities(
            requires_numpy=True,
            requires_bitmap_enumeration=True,
        ),
        summary="batched membership bitmaps, popcount screens, Lemma-7 closes",
        source="builtin",
    ),
    PluginSpec(
        kind="enumerator",
        name="baseline",
        factory=_baseline_enumerator,
        capabilities=PluginCapabilities(provides_bitmap_enumeration=False),
        summary="BA subset materialisation (Fig. 12's capped baseline)",
        source="builtin",
    ),
    PluginSpec(
        kind="enumerator",
        name="fba",
        factory=_fba_enumerator,
        capabilities=PluginCapabilities(
            provides_bitmap_enumeration=True,
            provides_forming_state=True,
        ),
        summary="forward bit-compression enumeration (Definition 13)",
        source="builtin",
    ),
    PluginSpec(
        kind="enumerator",
        name="vba",
        factory=_vba_enumerator,
        capabilities=PluginCapabilities(
            provides_bitmap_enumeration=True,
            provides_forming_state=True,
        ),
        summary="verification bit-compression enumeration (Definition 14)",
        source="builtin",
    ),
    PluginSpec(
        kind="shed_policy",
        name="none",
        factory=_none_shed_policy,
        capabilities=PluginCapabilities(),
        summary="no load shedding (default; zero per-batch overhead)",
        source="builtin",
    ),
    PluginSpec(
        kind="shed_policy",
        name="random",
        factory=_random_shed_policy,
        capabilities=PluginCapabilities(),
        summary="uniform Bernoulli drops (state-blind shedding baseline)",
        source="builtin",
    ),
    PluginSpec(
        kind="shed_policy",
        name="pattern_aware",
        factory=_pattern_aware_shed_policy,
        capabilities=PluginCapabilities(protects_patterns=True),
        summary="drops only cold records; partial matches are protected",
        source="builtin",
    ),
    PluginSpec(
        kind="pattern_family",
        name="strict",
        factory=_strict_pattern_family,
        capabilities=PluginCapabilities(),
        summary="exact CP(M, K, L, G) detection only (default; no overhead)",
        source="builtin",
    ),
    PluginSpec(
        kind="pattern_family",
        name="evolving",
        factory=_evolving_pattern_family,
        capabilities=PluginCapabilities(detects_evolving_groups=True),
        summary="θ-continuous groups with drifting membership (GroupEvolved)",
        source="builtin",
    ),
    PluginSpec(
        kind="pattern_family",
        name="predictive",
        factory=_predictive_pattern_family,
        capabilities=PluginCapabilities(predicts_patterns=True),
        summary="online confirmation-probability scoring (PatternForming)",
        source="builtin",
    ),
)


def register_builtin_plugins(registry: PluginRegistry) -> PluginRegistry:
    """Register every built-in strategy; returns the registry."""
    registry.register_all(BUILTIN_SPECS)
    return registry
