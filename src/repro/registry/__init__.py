"""One front door for every strategy axis: the typed plugin registry.

PRs 1-3 reproduced the paper's composability as three separate ad-hoc
axes — bare strings on ``ICPEConfig`` each with its own literal-set
validation and special-cased combination checks.  This package replaces
that with a single capability-aware extension point:

* :mod:`repro.registry.core` — :class:`PluginRegistry` /
  :class:`PluginSpec`, the error hierarchy, and the declarative
  :func:`check_selection` compatibility rule;
* :mod:`repro.registry.capabilities` — the per-plugin metadata
  (``requires_numpy``, ``provides_bitmap_enumeration``, ...);
* :mod:`repro.registry.builtin` — re-registration of every existing
  strategy (backends, clustering kernels, enumeration kernels,
  enumerators);
* :mod:`repro.registry.entrypoints` — ``entry_points(group=
  "repro.plugins")`` discovery so third-party packages register
  without touching core.

Most code consults the process-wide :func:`default_registry`; tests
build private :class:`PluginRegistry` instances or call
:func:`reset_default_registry` after monkeypatching discovery.
"""

from __future__ import annotations

from repro.registry.builtin import BUILTIN_SPECS, register_builtin_plugins
from repro.registry.capabilities import PluginCapabilities
from repro.registry.core import (
    PLUGIN_KINDS,
    DuplicatePluginError,
    PluginCompatibilityError,
    PluginError,
    PluginRegistry,
    PluginSpec,
    PluginUnavailableError,
    UnknownPluginError,
    check_selection,
)
from repro.registry.entrypoints import (
    ENTRY_POINT_GROUP,
    load_entry_point_plugins,
)

__all__ = [
    "BUILTIN_SPECS",
    "ENTRY_POINT_GROUP",
    "PLUGIN_KINDS",
    "DuplicatePluginError",
    "PluginCapabilities",
    "PluginCompatibilityError",
    "PluginError",
    "PluginRegistry",
    "PluginSpec",
    "PluginUnavailableError",
    "UnknownPluginError",
    "check_selection",
    "default_registry",
    "load_entry_point_plugins",
    "register_builtin_plugins",
    "reset_default_registry",
]

_default: PluginRegistry | None = None


def default_registry() -> PluginRegistry:
    """The process-wide registry: built-ins plus entry-point plugins.

    Built lazily on first use (imports stay cheap) and cached for the
    life of the process; ``ICPEConfig`` validation, the CLI's flag
    choices and the bench harness's sweep defaults all read from it.
    """
    global _default
    if _default is None:
        registry = PluginRegistry()
        register_builtin_plugins(registry)
        load_entry_point_plugins(registry)
        _default = registry
    return _default


def reset_default_registry() -> None:
    """Drop the cached default registry (re-discovers on next access).

    A test hook: monkeypatch entry-point discovery, reset, exercise,
    reset again on teardown.
    """
    global _default
    _default = None
