"""SRJ baseline: streaming range join without the paper's lemmas.

SRJ [36] is the state-of-the-art distributed streaming range join the paper
compares against (Section 7.1).  Its defining differences from RJC are the
ones Lemma 1 and Lemma 2 remove: every location is replicated to *all* grid
cells intersecting its full range region, and each pair is discovered from
both endpoints, requiring a deduplication pass in the sync stage.  We model
it as the GR-index join with both lemmas disabled.
"""

from __future__ import annotations

from typing import Iterable

from repro.join.pairs import NeighborPairs
from repro.join.range_join import GRRangeJoin, RangeJoinConfig


class SRJRangeJoin:
    """The SRJ comparison method: full replication + post-hoc dedup."""

    def __init__(
        self,
        cell_width: float,
        epsilon: float,
        metric_name: str = "l1",
        rtree_fanout: int = 16,
    ):
        self._inner = GRRangeJoin(
            RangeJoinConfig(
                cell_width=cell_width,
                epsilon=epsilon,
                metric_name=metric_name,
                lemma1=False,
                lemma2=False,
                local_index="rtree",
                rtree_fanout=rtree_fanout,
            )
        )

    @property
    def last_stats(self):
        """Work counters of the most recent join."""
        return self._inner.last_stats

    def join(self, points: Iterable[tuple[int, float, float]]) -> NeighborPairs:
        """Duplicate-free join result (duplicates counted in ``last_stats``)."""
        return self._inner.join(points)
