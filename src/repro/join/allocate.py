"""GridAllocate (Algorithm 1): route locations to grid cells.

Every location becomes one *data* object for its home cell plus *query*
objects for the other cells its (half) range region intersects.  With
Lemma 1 enabled only the upper half ``[x - eps, x + eps] x [y, y + eps]`` is
replicated; disabling it replicates the full region (the SRJ baseline and
the ablation benchmark use this).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.geometry.rect import pruning_epsilon, range_region, upper_range_region
from repro.index.grid import cell_key, cells_overlapping
from repro.index.gridobject import GridObject


def allocate_location(
    oid: int,
    x: float,
    y: float,
    cell_width: float,
    epsilon: float,
    lemma1: bool = True,
) -> Iterator[GridObject]:
    """Grid objects for one location (lines 2-6 of Algorithm 1).

    Yields the data object first, then the query objects.
    """
    home = cell_key(x, y, cell_width)
    yield GridObject(key=home, is_query=False, oid=oid, x=x, y=y)
    # Replication regions prune candidate *cells*; the margin keeps a
    # partner a few ulps past the exact-epsilon boundary reachable (the
    # probe verifies with the exact metric).
    padded = pruning_epsilon(epsilon)
    if lemma1:
        region = upper_range_region(x, y, padded)
    else:
        region = range_region(x, y, padded)
    for key in cells_overlapping(region, cell_width):
        if key != home:
            yield GridObject(key=key, is_query=True, oid=oid, x=x, y=y)


def allocate_snapshot(
    points: Iterable[tuple[int, float, float]],
    cell_width: float,
    epsilon: float,
    lemma1: bool = True,
) -> dict:
    """Partition a snapshot into per-cell GridObject lists.

    Returns a mapping ``cell key -> [GridObject, ...]`` preserving arrival
    order (data and query objects interleaved exactly as allocated), which
    is what each GridQuery subtask receives in the dataflow.
    """
    partitions: dict = {}
    for oid, x, y in points:
        for grid_object in allocate_location(
            oid, x, y, cell_width, epsilon, lemma1=lemma1
        ):
            partitions.setdefault(grid_object.key, []).append(grid_object)
    return partitions


def replication_factor(
    points: list[tuple[int, float, float]],
    cell_width: float,
    epsilon: float,
    lemma1: bool = True,
) -> float:
    """Average number of grid objects emitted per location.

    Diagnostic for the Lemma 1 ablation: the factor roughly halves when the
    upper-half optimisation is on.
    """
    if not points:
        return 0.0
    total = sum(
        1
        for oid, x, y in points
        for _ in allocate_location(oid, x, y, cell_width, epsilon, lemma1=lemma1)
    )
    return total / len(points)
