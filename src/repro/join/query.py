"""GridQuery (Algorithm 2): per-cell join processing.

Each cell (one keyed subtask in the dataflow) receives its GridObjects and
produces neighbour pairs:

* data objects — with Lemma 2, each runs its range query against the
  *partially built* local R-tree and is inserted afterwards, so every
  intra-cell pair appears exactly once and index build overlaps querying;
  without Lemma 2 (ablation), the tree is built first and every data object
  queries the complete tree, requiring deduplication.
* query objects — probe the finished tree for cross-cell pairs.

With Lemma 1 replication, a cross-cell pair could be discovered from both
endpoints when the two locations share one y coordinate (both lie in each
other's *upper* half-region).  The paper's lemma only claims no pair is
missed; to return an exact duplicate-free set we apply a strict half-plane
tie-break: a probing object ``o`` accepts a found location ``v`` only when
``(v.y, v.x, v.oid) > (o.y, o.x, o.oid)`` lexicographically.  Exactly one
endpoint of every cross-cell pair wins the tie-break, and the winner's upper
half-region always covers the loser, so no pair is lost.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.geometry.distance import Metric, l1_distance
from repro.geometry.rect import (
    Rect,
    pruning_epsilon,
    range_region,
    upper_range_region,
)
from repro.index.gridobject import GridObject
from repro.index.rtree import RTree
from repro.join.pairs import normalize_pair


class _LinearLocalIndex:
    """List-scan stand-in for the local R-tree (local-index ablation)."""

    __slots__ = ("_points",)

    def __init__(self):
        self._points: list[tuple[int, float, float]] = []

    def insert(self, x: float, y: float, payload) -> None:
        self._points.append(payload)

    def search(self, region: Rect) -> list[tuple[int, float, float]]:
        return [
            (oid, x, y)
            for oid, x, y in self._points
            if region.contains_point(x, y)
        ]

    def __len__(self) -> int:
        return len(self._points)


class CellJoiner:
    """Executes Algorithm 2 for one grid cell.

    Args:
        epsilon: the join distance threshold.
        metric: exact distance used for candidate verification.
        lemma2: query-during-build when True (the paper's optimisation).
        local_index: ``"rtree"`` (paper), ``"quadtree"`` or ``"linear"``
            (alternatives for the local-index ablation).
        lemma1: whether GridAllocate used upper-half replication; decides
            whether cross-cell probes need the tie-break (Lemma 1 on) or a
            deduplicating consumer (Lemma 1 off).
        rtree_fanout: node capacity of the local R-tree.
    """

    def __init__(
        self,
        epsilon: float,
        metric: Metric = l1_distance,
        lemma2: bool = True,
        local_index: str = "rtree",
        lemma1: bool = True,
        rtree_fanout: int = 16,
    ):
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        if local_index not in ("rtree", "quadtree", "linear"):
            raise ValueError(f"unknown local index kind: {local_index!r}")
        self.epsilon = epsilon
        self.metric = metric
        self.lemma2 = lemma2
        self.lemma1 = lemma1
        self.local_index = local_index
        self.rtree_fanout = rtree_fanout

    def _new_index(self):
        if self.local_index == "rtree":
            return RTree(max_entries=self.rtree_fanout)
        if self.local_index == "quadtree":
            from repro.index.quadtree import QuadTree

            return QuadTree()
        return _LinearLocalIndex()

    def join(self, objects: Iterable[GridObject]) -> Iterator[tuple[int, int]]:
        """Neighbour pairs for one cell's GridObjects.

        Pairs are emitted normalised as ``(min oid, max oid)``.  With
        Lemma 1 and Lemma 2 both on the output is duplicate free; otherwise
        the caller (GridSync) deduplicates.
        """
        data = [go for go in objects if go.is_data]
        queries = [go for go in objects if go.is_query]
        index = self._new_index()

        if self.lemma2:
            # Query-before-insert: each intra-cell pair found exactly once.
            for go in data:
                yield from self._probe(index, go, intra_cell=True)
                index.insert(go.x, go.y, (go.oid, go.x, go.y))
        else:
            # Traditional build-then-query (ablation): every pair found from
            # both endpoints; normalisation + downstream dedup removes them.
            for go in data:
                index.insert(go.x, go.y, (go.oid, go.x, go.y))
            for go in data:
                yield from self._probe(index, go, intra_cell=True)

        for go in queries:
            yield from self._probe(index, go, intra_cell=False)

    def _probe(
        self, index, go: GridObject, intra_cell: bool
    ) -> Iterator[tuple[int, int]]:
        # Probe rects prune candidates; the margin keeps a partner a few
        # ulps past the exact-epsilon edge inside the rect (the metric
        # check below is the exact filter).
        padded = pruning_epsilon(self.epsilon)
        region = range_region(go.x, go.y, padded)
        if not intra_cell and self.lemma1:
            # The allocator only routed this query object to cells in the
            # upper half-region; restricting the probe region accordingly is
            # a no-op spatially but keeps the candidate set minimal.
            region = upper_range_region(go.x, go.y, padded)
        for oid, x, y in index.search(region):
            if oid == go.oid:
                continue
            if self.metric(go.x, go.y, x, y) > self.epsilon:
                continue
            if not intra_cell and self.lemma1:
                if (y, x, oid) <= (go.y, go.x, go.oid):
                    continue
            yield normalize_pair(go.oid, oid)
