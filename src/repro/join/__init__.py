"""GR-index based range join (Section 5.2) and baselines.

The join of a snapshot with itself under distance threshold epsilon
(Definition 11) is the first step of the clustering phase.  The paper's
contribution is two verification-elimination lemmas:

* **Lemma 1** — replicate each location as a query object only to the cells
  of the *upper half* of its range region; symmetry recovers the rest.
* **Lemma 2** — inside a cell, run each data object's range query against
  the partially built R-tree *before* inserting it, so intra-cell pairs are
  produced exactly once and querying overlaps index construction.

``GRRangeJoin`` exposes both lemmas as switches, which also powers the
ablation benchmarks; ``SRJRangeJoin`` is the paper's SRJ baseline (full
replication, post-hoc deduplication).
"""

from repro.join.allocate import allocate_location, allocate_snapshot
from repro.join.pairs import NeighborPairs, brute_force_join, normalize_pair
from repro.join.query import CellJoiner
from repro.join.range_join import GRRangeJoin, RangeJoinConfig
from repro.join.srj import SRJRangeJoin

__all__ = [
    "CellJoiner",
    "GRRangeJoin",
    "NeighborPairs",
    "RangeJoinConfig",
    "SRJRangeJoin",
    "allocate_location",
    "allocate_snapshot",
    "brute_force_join",
    "normalize_pair",
]
