"""End-to-end GR-index range join over one snapshot (ICPE-RangeJoin, Fig. 5).

``GRRangeJoin`` composes GridAllocate -> per-cell GridQuery -> GridSync and
is the join engine of the RJC clustering method.  All paper optimisations
are switchable for the ablation study:

* ``lemma1`` — upper-half query replication (Algorithm 1 / Lemma 1);
* ``lemma2`` — query-during-build inside cells (Algorithm 2 / Lemma 2);
* ``local_index`` — ``"rtree"`` (GR-index) or ``"linear"`` scan.

The class also reports per-snapshot work statistics (replicated objects,
emitted pairs before dedup) consumed by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.geometry.distance import Metric, get_metric, l1_distance
from repro.join.allocate import allocate_snapshot
from repro.join.pairs import NeighborPairs
from repro.join.query import CellJoiner


@dataclass(frozen=True, slots=True)
class RangeJoinConfig:
    """Configuration of the GR-index range join.

    Attributes:
        cell_width: grid cell width ``lg`` (same unit as coordinates).
        epsilon: join distance threshold.
        metric_name: distance metric (``l1`` per the paper).
        lemma1: upper-half replication on/off.
        lemma2: query-during-build on/off.
        local_index: ``"rtree"`` or ``"linear"``.
        rtree_fanout: local R-tree node capacity.
    """

    cell_width: float
    epsilon: float
    metric_name: str = "l1"
    lemma1: bool = True
    lemma2: bool = True
    local_index: str = "rtree"
    rtree_fanout: int = 16

    def __post_init__(self) -> None:
        if self.cell_width <= 0:
            raise ValueError(f"cell_width must be positive: {self.cell_width}")
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be non-negative: {self.epsilon}")

    @property
    def metric(self) -> Metric:
        """The resolved distance callable."""
        return get_metric(self.metric_name)


@dataclass(slots=True)
class JoinStats:
    """Work counters of one snapshot join (for benchmarks/ablations)."""

    locations: int = 0
    grid_objects: int = 0
    occupied_cells: int = 0
    emitted_pairs: int = 0
    result_pairs: int = 0

    @property
    def replication_factor(self) -> float:
        """Grid objects emitted per input location."""
        return self.grid_objects / self.locations if self.locations else 0.0

    @property
    def duplicate_ratio(self) -> float:
        """Fraction of emitted pairs that were duplicates (dedup cost)."""
        if not self.emitted_pairs:
            return 0.0
        return 1.0 - self.result_pairs / self.emitted_pairs


class GRRangeJoin:
    """Self range join of a snapshot under the GR-index."""

    def __init__(self, config: RangeJoinConfig):
        self.config = config
        self.last_stats = JoinStats()

    def join(self, points: Iterable[tuple[int, float, float]]) -> NeighborPairs:
        """``RJ(O, epsilon)`` for one snapshot's ``(oid, x, y)`` points.

        Returns the duplicate-free set of normalised neighbour pairs and
        records :class:`JoinStats` in ``last_stats``.
        """
        cfg = self.config
        points = list(points)
        partitions = allocate_snapshot(
            points, cfg.cell_width, cfg.epsilon, lemma1=cfg.lemma1
        )
        joiner = CellJoiner(
            epsilon=cfg.epsilon,
            metric=cfg.metric,
            lemma2=cfg.lemma2,
            local_index=cfg.local_index,
            lemma1=cfg.lemma1,
            rtree_fanout=cfg.rtree_fanout,
        )
        stats = JoinStats(
            locations=len(points),
            grid_objects=sum(len(bucket) for bucket in partitions.values()),
            occupied_cells=len(partitions),
        )
        # GridSync: collect per-cell outputs.  Cell order must not affect the
        # result; iterate sorted keys for determinism.
        result: NeighborPairs = set()
        emitted = 0
        for key in sorted(partitions):
            for pair in joiner.join(partitions[key]):
                emitted += 1
                result.add(pair)
        stats.emitted_pairs = emitted
        stats.result_pairs = len(result)
        self.last_stats = stats
        return result


def rj_with_defaults(
    points: Iterable[tuple[int, float, float]],
    epsilon: float,
    cell_width: float | None = None,
    metric: Metric = l1_distance,
) -> NeighborPairs:
    """One-shot range join with sensible defaults (cell width = 3 epsilon)."""
    config = RangeJoinConfig(
        cell_width=cell_width if cell_width is not None else max(3 * epsilon, 1e-9),
        epsilon=epsilon,
    )
    if metric is not l1_distance:
        raise ValueError("use GRRangeJoin directly for non-default metrics")
    return GRRangeJoin(config).join(points)
