"""Neighbour-pair primitives shared by all join implementations."""

from __future__ import annotations

from typing import Iterable

from repro.geometry.distance import Metric, l1_distance

# A neighbour pair is an ordered (small oid, large oid) tuple; the range-join
# output is a set of such pairs.
NeighborPairs = set[tuple[int, int]]


def normalize_pair(oid_a: int, oid_b: int) -> tuple[int, int]:
    """Canonical (min, max) form of an unordered pair."""
    return (oid_a, oid_b) if oid_a <= oid_b else (oid_b, oid_a)


def brute_force_join(
    points: Iterable[tuple[int, float, float]],
    epsilon: float,
    metric: Metric = l1_distance,
) -> NeighborPairs:
    """O(n^2) reference range join (Definition 11), used as the test oracle.

    Returns all distinct-object pairs at distance <= epsilon, normalised.
    Self pairs are excluded: DBSCAN counts a point in its own neighbourhood
    separately (see :mod:`repro.cluster.dbscan`).
    """
    items = list(points)
    result: NeighborPairs = set()
    for i, (oid_a, xa, ya) in enumerate(items):
        for oid_b, xb, yb in items[i + 1 :]:
            if oid_a == oid_b:
                continue
            if metric(xa, ya, xb, yb) <= epsilon:
                result.add(normalize_pair(oid_a, oid_b))
    return result
