"""Trajectory dataset container and Table 2 statistics."""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.model.batch import RecordBatch
from repro.model.records import StreamRecord
from repro.model.snapshot import Snapshot


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """The attributes reported in the paper's Table 2."""

    name: str
    trajectories: int
    locations: int
    snapshots: int
    storage_bytes: int

    def as_row(self) -> dict[str, str]:
        """The statistics as a printable Table-2 row."""
        return {
            "dataset": self.name,
            "# trajectories": f"{self.trajectories:,}",
            "# locations": f"{self.locations:,}",
            "# snapshots": f"{self.snapshots:,}",
            "storage": _human_bytes(self.storage_bytes),
        }


def _human_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GB"


@dataclass(slots=True)
class TrajectoryDataset:
    """A bounded set of discretized trajectories.

    Internally a flat, time-sorted list of stream records — the shape both
    the streaming pipeline (fed record by record) and the snapshot-oriented
    harness (grouped by time) consume.
    """

    name: str
    records: list[StreamRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.records.sort(key=lambda r: (r.time, r.oid))

    def __len__(self) -> int:
        return len(self.records)

    @property
    def trajectory_ids(self) -> list[int]:
        """Sorted distinct trajectory ids."""
        return sorted({r.oid for r in self.records})

    @property
    def times(self) -> list[int]:
        """Sorted distinct discretized times."""
        return sorted({r.time for r in self.records})

    def to_batch(self) -> RecordBatch:
        """The whole dataset as one columnar :class:`RecordBatch`.

        The batch-ingestion entry of the loaders: records stay in their
        time-sorted stream order, so feeding the batch is equivalent to
        feeding ``records`` one at a time.
        """
        return RecordBatch.from_records(self.records)

    def batches(self, batch_size: int) -> Iterator[RecordBatch]:
        """Stream the dataset as columnar batches of ``batch_size``.

        Slices of one packed batch — zero-copy views on the array
        backing — in stream order; the final batch may be shorter.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        packed = self.to_batch()
        for start in range(0, len(packed), batch_size):
            yield packed[start : start + batch_size]

    def snapshots(self) -> list[Snapshot]:
        """Group records into complete snapshots in ascending time order."""
        by_time: dict[int, Snapshot] = {}
        for record in self.records:
            by_time.setdefault(record.time, Snapshot(record.time)).add_record(
                record
            )
        return [by_time[t] for t in sorted(by_time)]

    def restrict_objects(self, ratio: float, name: str | None = None) -> "TrajectoryDataset":
        """Keep an evenly spaced ``ratio`` of trajectories (Or sweep, Fig. 12).

        Ids are sampled uniformly across the sorted id space, so implanted
        co-moving groups (contiguous id blocks) shrink proportionally —
        cluster sizes and pattern density then grow with the ratio, the
        behaviour the paper's Or sweep relies on.
        """
        if not 0 < ratio <= 1:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        ids = self.trajectory_ids
        keep_count = max(1, round(len(ids) * ratio))
        if keep_count >= len(ids):
            kept = set(ids)
        else:
            step = (len(ids) - 1) / max(1, keep_count - 1) if keep_count > 1 else 0
            kept = {ids[round(j * step)] for j in range(keep_count)}
        return TrajectoryDataset(
            name=name or f"{self.name}[{ratio:.0%}]",
            records=[r for r in self.records if r.oid in kept],
        )

    def max_distance(self) -> float:
        """Diameter proxy: L1 size of the bounding box.

        Table 3 expresses epsilon and the grid width as percentages of "the
        maximal distance of the whole dataset"; benchmarks resolve those
        percentages against this value.
        """
        if not self.records:
            return 0.0
        min_x = min(r.x for r in self.records)
        max_x = max(r.x for r in self.records)
        min_y = min(r.y for r in self.records)
        max_y = max(r.y for r in self.records)
        return (max_x - min_x) + (max_y - min_y)

    def resolve_percentage(self, percent: float) -> float:
        """Absolute distance for a Table 3 percentage (e.g. 0.06)."""
        return self.max_distance() * percent / 100.0

    def statistics(self) -> DatasetStats:
        """Table 2 row for this dataset."""
        storage = sum(
            len(f"{r.oid},{r.x:.2f},{r.y:.2f},{r.time}\n") for r in self.records
        )
        return DatasetStats(
            name=self.name,
            trajectories=len(self.trajectory_ids),
            locations=len(self.records),
            snapshots=len(self.times),
            storage_bytes=storage,
        )

    # ------------------------------------------------------------------- I/O

    def save_csv(self, path: str | Path) -> None:
        """Write ``oid,x,y,time,last_time`` rows."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["oid", "x", "y", "time", "last_time"])
            for r in self.records:
                writer.writerow(
                    [r.oid, f"{r.x:.6f}", f"{r.y:.6f}", r.time,
                     "" if r.last_time is None else r.last_time]
                )

    @classmethod
    def load_csv(cls, path: str | Path, name: str | None = None) -> "TrajectoryDataset":
        """Read a dataset written by :meth:`save_csv`."""
        path = Path(path)
        records: list[StreamRecord] = []
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                records.append(
                    StreamRecord(
                        oid=int(row["oid"]),
                        x=float(row["x"]),
                        y=float(row["y"]),
                        time=int(row["time"]),
                        last_time=(
                            int(row["last_time"]) if row["last_time"] else None
                        ),
                    )
                )
        return cls(name=name or path.stem, records=records)


def iter_csv_batches(
    path: str | Path, batch_size: int
) -> Iterator[RecordBatch]:
    """Stream a ``save_csv`` file as columnar batches without loading it.

    Reads ``batch_size`` CSV rows at a time straight into
    :meth:`RecordBatch.from_csv_rows` — the unbounded-stream ingestion
    shape: no :class:`TrajectoryDataset` (and no per-record
    :class:`StreamRecord`) is ever materialised.  Rows are batched in
    file order; ``save_csv`` writes stream order, but a hand-assembled
    file is *not* re-sorted the way :meth:`TrajectoryDataset.load_csv`
    sorts (the CLI therefore feeds through the loaded dataset).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        next(reader, None)  # header row
        chunk: list[list[str]] = []
        for row in reader:
            chunk.append(row)
            if len(chunk) >= batch_size:
                yield RecordBatch.from_csv_rows(chunk)
                chunk = []
        if chunk:
            yield RecordBatch.from_csv_rows(chunk)


def link_last_times(records: list[StreamRecord]) -> list[StreamRecord]:
    """Fill in ``last_time`` chains on time-sorted generator output."""
    records = sorted(records, key=lambda r: (r.time, r.oid))
    last_seen: dict[int, int] = {}
    linked: list[StreamRecord] = []
    for r in records:
        linked.append(
            StreamRecord(
                oid=r.oid,
                x=r.x,
                y=r.y,
                time=r.time,
                last_time=last_seen.get(r.oid),
            )
        )
        last_seen[r.oid] = r.time
    return linked


def euclidean_diameter(records: list[StreamRecord]) -> float:
    """L2 bounding-box diagonal (an alternative diameter definition)."""
    if not records:
        return 0.0
    min_x = min(r.x for r in records)
    max_x = max(r.x for r in records)
    min_y = min(r.y for r in records)
    max_y = max(r.y for r in records)
    return math.hypot(max_x - min_x, max_y - min_y)
