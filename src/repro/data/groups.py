"""Co-moving group planning shared by all generators.

Patterns only exist if some objects genuinely travel together; every
generator therefore implants *groups*: blocks of consecutive trajectory
ids that follow one shared route with small positional jitter.  Members
drop out for bounded stretches (creating the segment/gap structure that
the L and G constraints discriminate on) and the remainder of the object
population is independent background traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GroupPlan:
    """One implanted group: ids ``[first_id, first_id + size)``."""

    first_id: int
    size: int
    start_time: int
    end_time: int

    @property
    def member_ids(self) -> range:
        """The contiguous id range of the group's members."""
        return range(self.first_id, self.first_id + self.size)


def plan_groups(
    n_objects: int,
    group_fraction: float,
    min_size: int,
    max_size: int,
    horizon: int,
    rng: random.Random,
) -> tuple[list[GroupPlan], int]:
    """Carve the id space ``[0, n_objects)`` into groups + background.

    Returns the group plans and the first background (ungrouped) id.
    Group lifetimes span most of the horizon so that duration constraints
    in the paper's ranges are satisfiable.
    """
    if not 0 <= group_fraction <= 1:
        raise ValueError(f"group_fraction must be in [0, 1]: {group_fraction}")
    if min_size < 2 or max_size < min_size:
        raise ValueError(f"bad group size range [{min_size}, {max_size}]")
    target = int(n_objects * group_fraction)
    plans: list[GroupPlan] = []
    next_id = 0
    while next_id + min_size <= target:
        size = rng.randint(min_size, min(max_size, target - next_id))
        start = rng.randint(1, max(1, horizon // 8))
        end = horizon - rng.randint(0, max(0, horizon // 8))
        plans.append(
            GroupPlan(first_id=next_id, size=size, start_time=start, end_time=end)
        )
        next_id += size
    return plans, next_id


@dataclass(slots=True)
class DropoutModel:
    """Markov on/off presence model for group members.

    A member is present (reports a position and stays with the group) or
    absent; absences last ``1..max_gap`` time units.  The model yields the
    gap structure exercised by the L-consecutive and G-connected
    constraints without breaking the group's overall cohesion.
    """

    dropout_probability: float
    max_gap: int
    rng: random.Random

    def presence(self, start: int, end: int) -> list[bool]:
        """Presence flags for times ``start..end`` inclusive."""
        flags: list[bool] = []
        t = start
        while t <= end:
            if self.rng.random() < self.dropout_probability:
                gap = self.rng.randint(1, self.max_gap)
                for _ in range(min(gap, end - t + 1)):
                    flags.append(False)
                    t += 1
            else:
                flags.append(True)
                t += 1
        return flags
