"""Schema adapters for real taxi trajectory datasets (ROADMAP item 5a).

Two public corpora are close stand-ins for the paper's proprietary
Hangzhou taxi data and are widely used in the co-movement literature:

* **T-Drive** (Microsoft Research, Beijing taxis): one CSV line per GPS
  fix, ``taxi_id,datetime,longitude,latitude``, no header, per-taxi
  time-sorted (e.g. ``1,2008-02-02 15:36:08,116.51172,39.92123``).
* **Porto taxi** (ECML/PKDD 2015 challenge): one CSV row per *trip*
  with a header; ``TAXI_ID`` names the object, ``TIMESTAMP`` is the
  trip-start epoch, and ``POLYLINE`` is a JSON list of ``[lon, lat]``
  fixes sampled every 15 seconds.

Both adapters normalise to the framework's native stream shape —
integer oids, planar metre coordinates (equirectangular projection
anchored at the first fix), discretized snapshot times, per-object
``last_time`` chains — so the output feeds any Session / pipeline entry
point unchanged.  :func:`load_real_dataset` materialises a sorted
:class:`~repro.data.dataset.TrajectoryDataset` (bounded, benchmark
shape); :func:`iter_real_batches` streams columnar
:class:`~repro.model.batch.RecordBatch` chunks in file order without
materialising the file, exactly like
:func:`~repro.data.dataset.iter_csv_batches` does for the native
schema.  Committed fixture slices live under ``tests/data/fixtures/``
and drive ``examples/real_datasets.py``.
"""

from __future__ import annotations

import calendar
import csv
import json
import math
from datetime import datetime
from pathlib import Path
from typing import Iterator

from repro.data.dataset import TrajectoryDataset, link_last_times
from repro.model.batch import RecordBatch
from repro.model.records import StreamRecord

#: The real-dataset schemas the adapters understand.
REAL_SCHEMAS = ("tdrive", "porto")

#: Seconds between consecutive fixes inside one Porto ``POLYLINE``.
PORTO_SAMPLE_SECONDS = 15

#: Metres per degree of latitude (spherical mean).
_METERS_PER_DEG_LAT = 110_540.0

#: Metres per degree of longitude at the equator.
_METERS_PER_DEG_LON = 111_320.0


def _parse_tdrive_datetime(value: str) -> int:
    """A T-Drive ``YYYY-MM-DD HH:MM:SS`` stamp as UTC epoch seconds."""
    parsed = datetime.strptime(value.strip(), "%Y-%m-%d %H:%M:%S")
    return calendar.timegm(parsed.timetuple())


class _Projection:
    """Equirectangular lon/lat -> planar metres, anchored at first fix.

    The anchor latitude fixes the longitude scale, so the projection is
    deterministic per file and locally metric — sufficient for the L1
    range joins the pipeline runs (city-scale extents, not geodesy).
    """

    def __init__(self) -> None:
        """Unanchored; the first projected fix sets the anchor."""
        self._cos_lat: float | None = None

    def project(self, lon: float, lat: float) -> tuple[float, float]:
        """Planar ``(x, y)`` metres for one ``(lon, lat)`` fix."""
        if self._cos_lat is None:
            self._cos_lat = math.cos(math.radians(lat))
        return (
            lon * _METERS_PER_DEG_LON * self._cos_lat,
            lat * _METERS_PER_DEG_LAT,
        )


def _tdrive_fixes(
    path: Path,
) -> Iterator[tuple[int, int, float, float]]:
    """``(oid, epoch_seconds, lon, lat)`` per T-Drive line, file order."""
    with path.open(newline="") as handle:
        for row in csv.reader(handle):
            if not row or not row[0].strip():
                continue
            yield (
                int(row[0]),
                _parse_tdrive_datetime(row[1]),
                float(row[2]),
                float(row[3]),
            )


def _porto_fixes(
    path: Path,
) -> Iterator[tuple[int, int, float, float]]:
    """``(oid, epoch_seconds, lon, lat)`` per Porto polyline point.

    One trip row explodes into one fix per polyline entry, 15 seconds
    apart from the trip-start ``TIMESTAMP``.  Rows flagged
    ``MISSING_DATA`` and empty polylines are skipped.
    """
    with path.open(newline="") as handle:
        for row in csv.DictReader(handle):
            if row.get("MISSING_DATA", "False").strip().lower() == "true":
                continue
            polyline = json.loads(row["POLYLINE"] or "[]")
            if not polyline:
                continue
            oid = int(row["TAXI_ID"])
            start = int(row["TIMESTAMP"])
            for index, (lon, lat) in enumerate(polyline):
                yield (
                    oid,
                    start + index * PORTO_SAMPLE_SECONDS,
                    float(lon),
                    float(lat),
                )


_SCHEMA_FIXES = {"tdrive": _tdrive_fixes, "porto": _porto_fixes}

#: Default snapshot width per schema: T-Drive's mean sampling interval
#: is ~177 s (5 min buckets give near-complete snapshots); Porto is
#: fixed 15 s.
_DEFAULT_INTERVALS = {"tdrive": 300, "porto": PORTO_SAMPLE_SECONDS}


def _resolve_schema(schema: str, interval_seconds: int | None) -> int:
    if schema not in _SCHEMA_FIXES:
        raise ValueError(
            f"unknown real-dataset schema {schema!r}; known: {REAL_SCHEMAS}"
        )
    interval = (
        interval_seconds
        if interval_seconds is not None
        else _DEFAULT_INTERVALS[schema]
    )
    if interval < 1:
        raise ValueError(f"interval_seconds must be >= 1, got {interval}")
    return interval


def load_real_dataset(
    path: str | Path,
    schema: str,
    *,
    interval_seconds: int | None = None,
    name: str | None = None,
) -> TrajectoryDataset:
    """Load a real-schema CSV as a sorted :class:`TrajectoryDataset`.

    ``schema`` is ``"tdrive"`` or ``"porto"``; ``interval_seconds``
    widens the snapshot discretization (default per schema: 300 s for
    T-Drive's ~177 s sampling, 15 s for Porto's fixed polyline rate).
    Epoch times are rebased to the file's earliest fix, so snapshot
    times start at 0.  Fixes that do not advance an object's discretized
    time (duplicate reports inside one bucket) keep only the first, and
    ``last_time`` chains are rebuilt on the sorted result — the bounded
    dataset shape every benchmark and session entry point accepts.

    Raises:
        ValueError: for an unknown schema or a non-positive interval.
    """
    interval = _resolve_schema(schema, interval_seconds)
    path = Path(path)
    projection = _Projection()
    fixes = [
        (oid, epoch, *projection.project(lon, lat))
        for oid, epoch, lon, lat in _SCHEMA_FIXES[schema](path)
    ]
    origin = min((epoch for _, epoch, _, _ in fixes), default=0)
    seen: set[tuple[int, int]] = set()
    records: list[StreamRecord] = []
    for oid, epoch, x, y in fixes:
        time = (epoch - origin) // interval
        if (oid, time) in seen:
            continue
        seen.add((oid, time))
        records.append(StreamRecord(oid=oid, x=x, y=y, time=time))
    return TrajectoryDataset(
        name=name or f"{schema}:{path.stem}",
        records=link_last_times(records),
    )


def iter_real_batches(
    path: str | Path,
    schema: str,
    batch_size: int,
    *,
    interval_seconds: int | None = None,
) -> Iterator[RecordBatch]:
    """Stream a real-schema CSV as columnar batches without loading it.

    The unbounded-ingestion counterpart of :func:`load_real_dataset`,
    mirroring :func:`~repro.data.dataset.iter_csv_batches`: fixes are
    normalised lazily in file order, ``last_time`` chains are threaded
    incrementally per object, and every ``batch_size`` records one
    :class:`~repro.model.batch.RecordBatch` is emitted.  Times are
    rebased to the *first* fix of the file (not the minimum), keeping
    the pass single; a fix that does not advance its object's
    discretized time — a duplicate inside one bucket, or an
    out-of-order report — is skipped so the reassembly chains stay
    valid.  Feed the batches into a session whose ``max_delay`` covers
    the file's cross-object time skew.

    Raises:
        ValueError: for an unknown schema, a non-positive interval or a
            ``batch_size`` below 1.
    """
    interval = _resolve_schema(schema, interval_seconds)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    projection = _Projection()
    origin: int | None = None
    last_seen: dict[int, int] = {}
    chunk: list[StreamRecord] = []
    for oid, epoch, lon, lat in _SCHEMA_FIXES[schema](Path(path)):
        if origin is None:
            origin = epoch
        time = (epoch - origin) // interval
        previous = last_seen.get(oid)
        if time < 0 or (previous is not None and time <= previous):
            continue
        x, y = projection.project(lon, lat)
        chunk.append(
            StreamRecord(oid=oid, x=x, y=y, time=time, last_time=previous)
        )
        last_seen[oid] = time
        if len(chunk) >= batch_size:
            yield RecordBatch.from_records(chunk)
            chunk = []
    if chunk:
        yield RecordBatch.from_records(chunk)
