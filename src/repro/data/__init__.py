"""Datasets: synthetic stand-ins for the paper's three workloads.

Table 2 of the paper uses GeoLife (real), a proprietary Hangzhou taxi
dataset, and trajectories from the Brinkhoff network-based generator.  The
real datasets are unavailable (GeoLife's download, the proprietary taxi
data) and the original Brinkhoff tool is a Java application, so this
package provides seeded generators that reproduce the *properties* the
experiments depend on: positioning noise, sampling rate, co-moving group
structure with dropouts (so patterns exist at every constraint setting),
and background traffic (so clustering has pruning work to do).

All generators return a :class:`~repro.data.dataset.TrajectoryDataset`
and are deterministic given their seed.

For *real* public corpora, :mod:`repro.data.loaders` adapts the T-Drive
(Beijing taxi) and Porto taxi CSV schemas to the native stream shape —
bounded loading via :func:`load_real_dataset`, streaming columnar
ingestion via :func:`iter_real_batches`.
"""

from repro.data.brinkhoff import BrinkhoffConfig, generate_brinkhoff
from repro.data.corruption import (
    drop_in_transit,
    drop_records,
    duplicate_records,
    jitter_positions,
)
from repro.data.dataset import DatasetStats, TrajectoryDataset, iter_csv_batches
from repro.data.geolife import GeoLifeConfig, generate_geolife
from repro.data.loaders import (
    REAL_SCHEMAS,
    iter_real_batches,
    load_real_dataset,
)
from repro.data.groups import GroupPlan, plan_groups
from repro.data.roadnet import RoadNetwork, build_road_network
from repro.data.taxi import TaxiConfig, generate_taxi

__all__ = [
    "BrinkhoffConfig",
    "DatasetStats",
    "GeoLifeConfig",
    "GroupPlan",
    "REAL_SCHEMAS",
    "RoadNetwork",
    "TaxiConfig",
    "TrajectoryDataset",
    "build_road_network",
    "drop_in_transit",
    "drop_records",
    "duplicate_records",
    "generate_brinkhoff",
    "generate_geolife",
    "generate_taxi",
    "iter_csv_batches",
    "iter_real_batches",
    "jitter_positions",
    "load_real_dataset",
    "plan_groups",
]
