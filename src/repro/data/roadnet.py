"""Synthetic road network for the Brinkhoff-style generator.

Brinkhoff's generator moves objects over a real road graph; we build a
perturbed grid network (nodes on a jittered lattice, orthogonal edges plus
random diagonals, a few edges removed) with `networkx`, which yields the
same qualitative structure: bounded degree, metric edge lengths and
non-trivial shortest paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx


@dataclass(slots=True)
class RoadNetwork:
    """A spatial graph: node -> (x, y), edges weighted by length."""

    graph: nx.Graph

    def position(self, node) -> tuple[float, float]:
        """Coordinates ``(x, y)`` of a graph node."""
        data = self.graph.nodes[node]
        return (data["x"], data["y"])

    def random_node(self, rng: random.Random):
        """A uniformly random node (deterministic under ``rng``)."""
        nodes = sorted(self.graph.nodes)
        return nodes[rng.randrange(len(nodes))]

    def shortest_path(self, source, target) -> list:
        """Length-weighted shortest path between two nodes."""
        return nx.shortest_path(self.graph, source, target, weight="length")

    def path_points(self, path: list) -> list[tuple[float, float]]:
        """The coordinate polyline of a node path."""
        return [self.position(node) for node in path]

    @property
    def extent(self) -> float:
        """Larger side of the network's bounding box."""
        xs = [data["x"] for _, data in self.graph.nodes(data=True)]
        ys = [data["y"] for _, data in self.graph.nodes(data=True)]
        return max(max(xs) - min(xs), max(ys) - min(ys))


def build_road_network(
    side: int = 12,
    spacing: float = 800.0,
    jitter: float = 120.0,
    diagonal_fraction: float = 0.15,
    removal_fraction: float = 0.05,
    seed: int = 7,
) -> RoadNetwork:
    """Perturbed-lattice road network.

    Args:
        side: lattice dimension (side x side intersections).
        spacing: nominal intersection spacing (map units).
        jitter: positional noise applied to intersections.
        diagonal_fraction: fraction of cells receiving a diagonal road.
        removal_fraction: fraction of lattice edges removed (while keeping
            the network connected).
        seed: randomness seed.
    """
    if side < 2:
        raise ValueError(f"side must be >= 2, got {side}")
    rng = random.Random(seed)
    graph = nx.Graph()
    for row in range(side):
        for col in range(side):
            graph.add_node(
                (row, col),
                x=col * spacing + rng.uniform(-jitter, jitter),
                y=row * spacing + rng.uniform(-jitter, jitter),
            )
    def add_edge(a, b):
        ax, ay = graph.nodes[a]["x"], graph.nodes[a]["y"]
        bx, by = graph.nodes[b]["x"], graph.nodes[b]["y"]
        graph.add_edge(a, b, length=abs(ax - bx) + abs(ay - by))

    for row in range(side):
        for col in range(side):
            if col + 1 < side:
                add_edge((row, col), (row, col + 1))
            if row + 1 < side:
                add_edge((row, col), (row + 1, col))
    for row in range(side - 1):
        for col in range(side - 1):
            if rng.random() < diagonal_fraction:
                if rng.random() < 0.5:
                    add_edge((row, col), (row + 1, col + 1))
                else:
                    add_edge((row, col + 1), (row + 1, col))

    removable = [e for e in graph.edges]
    rng.shuffle(removable)
    to_remove = int(len(removable) * removal_fraction)
    for edge in removable[:to_remove]:
        graph.remove_edge(*edge)
        if not nx.is_connected(graph):
            graph.add_edge(*edge, length=_edge_length(graph, edge))
    return RoadNetwork(graph=graph)


def _edge_length(graph: nx.Graph, edge) -> float:
    a, b = edge
    return abs(graph.nodes[a]["x"] - graph.nodes[b]["x"]) + abs(
        graph.nodes[a]["y"] - graph.nodes[b]["y"]
    )


def walk_along(
    points: list[tuple[float, float]],
    speed: float,
    start_offset: float = 0.0,
) -> "RouteWalker":
    """Create a :class:`RouteWalker` over a polyline (convenience)."""
    return RouteWalker(points, speed, start_offset)


class RouteWalker:
    """Constant-speed interpolation along a polyline, one step per tick."""

    def __init__(
        self,
        points: list[tuple[float, float]],
        speed: float,
        start_offset: float = 0.0,
    ):
        if len(points) < 1:
            raise ValueError("route needs at least one point")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.points = points
        self.speed = speed
        self.distance = start_offset
        self._cumulative = [0.0]
        for (x1, y1), (x2, y2) in zip(points, points[1:]):
            self._cumulative.append(
                self._cumulative[-1] + abs(x2 - x1) + abs(y2 - y1)
            )

    @property
    def total_length(self) -> float:
        """Total polyline length in map units."""
        return self._cumulative[-1]

    @property
    def finished(self) -> bool:
        """True once the walker has reached the final point."""
        return self.distance >= self.total_length

    def step(self) -> tuple[float, float]:
        """Advance one tick and return the new position."""
        self.distance = min(self.distance + self.speed, self.total_length)
        return self.position_at(self.distance)

    def position_at(self, distance: float) -> tuple[float, float]:
        """Interpolated position at a distance along the route."""
        if distance <= 0 or len(self.points) == 1:
            return self.points[0]
        if distance >= self.total_length:
            return self.points[-1]
        # Find the segment containing `distance` (linear scan is fine for
        # the short routes the generators produce).
        for index in range(1, len(self._cumulative)):
            if distance <= self._cumulative[index]:
                seg_start = self._cumulative[index - 1]
                seg_len = self._cumulative[index] - seg_start
                fraction = (distance - seg_start) / seg_len if seg_len else 0.0
                x1, y1 = self.points[index - 1]
                x2, y2 = self.points[index]
                return (x1 + fraction * (x2 - x1), y1 + fraction * (y2 - y1))
        return self.points[-1]
