"""Brinkhoff-style network-based moving-object workload.

Reproduces the defining behaviour of the Brinkhoff generator the paper
uses for its synthetic dataset: objects move along a road network "with
random but reasonable direction and speed", one position per second.
Implanted groups share a route and (jittered) position; their members drop
out temporarily, producing the segment/gap structure pattern constraints
discriminate on.  Background objects drive independent routes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.dataset import TrajectoryDataset, link_last_times
from repro.data.groups import DropoutModel, plan_groups
from repro.data.roadnet import RoadNetwork, RouteWalker, build_road_network
from repro.model.records import StreamRecord


@dataclass(frozen=True, slots=True)
class BrinkhoffConfig:
    """Workload shape for :func:`generate_brinkhoff`.

    Attributes:
        n_objects: total number of trajectories.
        horizon: number of discretized snapshots (1 s sampling).
        group_fraction: share of objects travelling in implanted groups.
        group_size: inclusive (min, max) group cardinality.
        group_jitter: positional noise of group members around the route
            (map units; must be well below the epsilons under study).
        dropout_probability / max_gap: member absence model.
        speed: nominal travel speed per tick, randomised +-40% per object.
        network_side: road lattice dimension.
        seed: determinism seed.
    """

    n_objects: int = 200
    horizon: int = 60
    group_fraction: float = 0.5
    group_size: tuple[int, int] = (5, 12)
    group_jitter: float = 4.0
    dropout_probability: float = 0.04
    max_gap: int = 2
    speed: float = 180.0
    network_side: int = 12
    seed: int = 11


def generate_brinkhoff(
    config: BrinkhoffConfig = BrinkhoffConfig(),
    network: RoadNetwork | None = None,
) -> TrajectoryDataset:
    """Generate the Brinkhoff-like dataset (Table 2's third row, scaled)."""
    rng = random.Random(config.seed)
    net = network or build_road_network(
        side=config.network_side, seed=config.seed
    )
    records: list[StreamRecord] = []
    plans, first_background = plan_groups(
        config.n_objects,
        config.group_fraction,
        config.group_size[0],
        config.group_size[1],
        config.horizon,
        rng,
    )
    dropout = DropoutModel(
        dropout_probability=config.dropout_probability,
        max_gap=config.max_gap,
        rng=rng,
    )

    for plan in plans:
        route = _random_route(net, rng, min_nodes=6)
        walker = RouteWalker(route, speed=config.speed * rng.uniform(0.8, 1.2))
        positions = _roll_positions(walker, plan.start_time, plan.end_time)
        for oid in plan.member_ids:
            presence = dropout.presence(plan.start_time, plan.end_time)
            for offset, present in enumerate(presence):
                if not present:
                    continue
                t = plan.start_time + offset
                x, y = positions[offset]
                records.append(
                    StreamRecord(
                        oid=oid,
                        x=x + rng.uniform(-config.group_jitter, config.group_jitter),
                        y=y + rng.uniform(-config.group_jitter, config.group_jitter),
                        time=t,
                    )
                )

    for oid in range(first_background, config.n_objects):
        route = _random_route(net, rng, min_nodes=4)
        walker = RouteWalker(route, speed=config.speed * rng.uniform(0.6, 1.4))
        start = rng.randint(1, max(1, config.horizon // 4))
        for t in range(start, config.horizon + 1):
            x, y = walker.step()
            records.append(StreamRecord(oid=oid, x=x, y=y, time=t))
            if walker.finished:
                # Pick a new destination and keep driving (continuous
                # movement, as in the original generator).
                walker = RouteWalker(
                    _random_route(net, rng, min_nodes=3),
                    speed=config.speed * rng.uniform(0.6, 1.4),
                )
    return TrajectoryDataset(name="Brinkhoff", records=link_last_times(records))


def _random_route(
    net: RoadNetwork, rng: random.Random, min_nodes: int
) -> list[tuple[float, float]]:
    """A shortest path between two random nodes, re-drawn until long enough."""
    for _ in range(32):
        source = net.random_node(rng)
        target = net.random_node(rng)
        if source == target:
            continue
        path = net.shortest_path(source, target)
        if len(path) >= min_nodes:
            return net.path_points(path)
    return net.path_points(net.shortest_path(source, target))


def _roll_positions(
    walker: RouteWalker, start: int, end: int
) -> list[tuple[float, float]]:
    """Shared group positions for each time in ``[start, end]``."""
    positions = []
    for _ in range(start, end + 1):
        positions.append(walker.step())
    return positions
