"""Stream corruption utilities for failure-injection testing.

Real GPS feeds lose fixes, duplicate transmissions, and jitter positions.
These helpers inject such faults into a record stream deterministically so
tests (and users evaluating robustness) can observe the system's defined
behaviour: lost records shrink snapshots, duplicates are idempotent,
jitter degrades clustering gracefully, and chain-consistent relabelling
keeps the synchronisation operator sound.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.data.dataset import link_last_times
from repro.model.records import StreamRecord


def drop_records(
    records: Sequence[StreamRecord],
    fraction: float,
    rng: random.Random,
) -> list[StreamRecord]:
    """Lose a fraction of reports uniformly at random.

    The survivors' ``last_time`` chains are re-linked so they remain
    consistent — modelling loss at the *source* (fix never taken).  Loss in
    *transit* (chain gap visible to the sync operator) is modelled by
    :func:`drop_in_transit`.
    """
    if not 0 <= fraction < 1:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    kept = [r for r in records if rng.random() >= fraction]
    return link_last_times(kept)


def drop_in_transit(
    records: Sequence[StreamRecord],
    fraction: float,
    rng: random.Random,
) -> list[StreamRecord]:
    """Lose records *after* chaining: survivors still reference them.

    The synchronisation operator will block on the missing predecessors
    until its watermark passes or flush is called — the behaviour under
    genuine network loss.
    """
    if not 0 <= fraction < 1:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    return [r for r in records if rng.random() >= fraction]


def duplicate_records(
    records: Sequence[StreamRecord],
    fraction: float,
    rng: random.Random,
) -> list[StreamRecord]:
    """Retransmit a fraction of records (duplicates arrive immediately
    after the original, as with at-least-once delivery)."""
    if not 0 <= fraction < 1:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    out: list[StreamRecord] = []
    for record in records:
        out.append(record)
        if rng.random() < fraction:
            out.append(record)
    return out


def jitter_positions(
    records: Sequence[StreamRecord],
    magnitude: float,
    rng: random.Random,
) -> list[StreamRecord]:
    """Add uniform positional noise of the given magnitude per axis."""
    if magnitude < 0:
        raise ValueError(f"magnitude must be >= 0, got {magnitude}")
    return [
        StreamRecord(
            oid=r.oid,
            x=r.x + rng.uniform(-magnitude, magnitude),
            y=r.y + rng.uniform(-magnitude, magnitude),
            time=r.time,
            last_time=r.last_time,
        )
        for r in records
    ]
