"""GeoLife-like workload: anchor-based personal movement.

GeoLife records multi-year personal GPS traces sampled every 1-5 seconds.
The generator models each person as trips between personal *anchor*
locations (home, work, leisure) drawn around shared city hotspots, sampled
once per discretized second, plus implanted co-travelling groups
(commuter carpools) that exercise pattern detection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.dataset import TrajectoryDataset, link_last_times
from repro.data.groups import DropoutModel, plan_groups
from repro.data.roadnet import RouteWalker
from repro.model.records import StreamRecord


@dataclass(frozen=True, slots=True)
class GeoLifeConfig:
    """Workload shape for :func:`generate_geolife`.

    Attributes mirror :class:`~repro.data.brinkhoff.BrinkhoffConfig` where
    applicable; hotspots model the shared city structure of GeoLife.
    """

    n_objects: int = 200
    horizon: int = 60
    group_fraction: float = 0.45
    group_size: tuple[int, int] = (5, 12)
    group_jitter: float = 3.0
    dropout_probability: float = 0.05
    max_gap: int = 2
    n_hotspots: int = 8
    city_extent: float = 9000.0
    anchor_spread: float = 350.0
    speed: float = 140.0
    pause_probability: float = 0.15
    seed: int = 23


def generate_geolife(config: GeoLifeConfig = GeoLifeConfig()) -> TrajectoryDataset:
    """Generate the GeoLife-like dataset (Table 2's first row, scaled)."""
    rng = random.Random(config.seed)
    hotspots = [
        (
            rng.uniform(0, config.city_extent),
            rng.uniform(0, config.city_extent),
        )
        for _ in range(config.n_hotspots)
    ]

    def personal_anchor() -> tuple[float, float]:
        hx, hy = hotspots[rng.randrange(len(hotspots))]
        return (
            hx + rng.gauss(0, config.anchor_spread),
            hy + rng.gauss(0, config.anchor_spread),
        )

    records: list[StreamRecord] = []
    plans, first_background = plan_groups(
        config.n_objects,
        config.group_fraction,
        config.group_size[0],
        config.group_size[1],
        config.horizon,
        rng,
    )
    dropout = DropoutModel(
        dropout_probability=config.dropout_probability,
        max_gap=config.max_gap,
        rng=rng,
    )

    # Carpool groups: shared multi-anchor itinerary.
    for plan in plans:
        itinerary = [personal_anchor() for _ in range(rng.randint(3, 5))]
        positions = _itinerary_positions(
            itinerary,
            plan.start_time,
            plan.end_time,
            config.speed * rng.uniform(0.85, 1.15),
            config.pause_probability,
            rng,
        )
        for oid in plan.member_ids:
            presence = dropout.presence(plan.start_time, plan.end_time)
            for offset, present in enumerate(presence):
                if not present:
                    continue
                x, y = positions[offset]
                records.append(
                    StreamRecord(
                        oid=oid,
                        x=x + rng.uniform(-config.group_jitter, config.group_jitter),
                        y=y + rng.uniform(-config.group_jitter, config.group_jitter),
                        time=plan.start_time + offset,
                    )
                )

    # Background: independent people with their own anchors.
    for oid in range(first_background, config.n_objects):
        itinerary = [personal_anchor() for _ in range(rng.randint(2, 4))]
        start = rng.randint(1, max(1, config.horizon // 5))
        positions = _itinerary_positions(
            itinerary,
            start,
            config.horizon,
            config.speed * rng.uniform(0.6, 1.4),
            config.pause_probability,
            rng,
        )
        for offset, (x, y) in enumerate(positions):
            records.append(
                StreamRecord(oid=oid, x=x, y=y, time=start + offset)
            )
    return TrajectoryDataset(name="GeoLife", records=link_last_times(records))


def _itinerary_positions(
    anchors: list[tuple[float, float]],
    start: int,
    end: int,
    speed: float,
    pause_probability: float,
    rng: random.Random,
) -> list[tuple[float, float]]:
    """Positions per tick while cycling through the anchor itinerary.

    At each anchor the person may pause (dwell) for a few ticks, which
    creates the stationary clusters typical of personal traces.
    """
    positions: list[tuple[float, float]] = []
    leg = 0
    walker = RouteWalker([anchors[0], anchors[1 % len(anchors)]], speed)
    pause_left = 0
    for _ in range(start, end + 1):
        if pause_left > 0:
            pause_left -= 1
            positions.append(positions[-1] if positions else anchors[0])
            continue
        position = walker.step()
        positions.append(position)
        if walker.finished:
            if rng.random() < pause_probability:
                pause_left = rng.randint(1, 3)
            leg += 1
            source = anchors[leg % len(anchors)]
            target = anchors[(leg + 1) % len(anchors)]
            walker = RouteWalker([source, target], speed)
    return positions
