"""Taxi-like workload: city-grid trips at 5-second sampling.

The paper's second dataset is a proprietary Hangzhou taxi trace (one
trajectory = one taxi's trace over a month, sampled every 5 s).  The
generator models taxis on a Manhattan street grid driving successive
random trips (L-shaped paths between pickup and dropoff), plus implanted
taxi convoys (e.g. airport queues, arterial-road platoons) that provide
co-movement structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.dataset import TrajectoryDataset, link_last_times
from repro.data.groups import DropoutModel, plan_groups
from repro.data.roadnet import RouteWalker
from repro.model.records import StreamRecord


@dataclass(frozen=True, slots=True)
class TaxiConfig:
    """Workload shape for :func:`generate_taxi`."""

    n_objects: int = 200
    horizon: int = 60
    group_fraction: float = 0.4
    group_size: tuple[int, int] = (5, 10)
    group_jitter: float = 5.0
    dropout_probability: float = 0.05
    max_gap: int = 2
    city_extent: float = 12000.0
    block: float = 400.0
    speed: float = 300.0  # per 5 s tick
    seed: int = 37


def generate_taxi(config: TaxiConfig = TaxiConfig()) -> TrajectoryDataset:
    """Generate the Taxi-like dataset (Table 2's second row, scaled)."""
    rng = random.Random(config.seed)

    def snap(value: float) -> float:
        """Snap to the street grid."""
        return round(value / config.block) * config.block

    def random_corner() -> tuple[float, float]:
        return (
            snap(rng.uniform(0, config.city_extent)),
            snap(rng.uniform(0, config.city_extent)),
        )

    def manhattan_route(
        source: tuple[float, float], target: tuple[float, float]
    ) -> list[tuple[float, float]]:
        """L-shaped path: drive along x first or y first at random."""
        if rng.random() < 0.5:
            corner = (target[0], source[1])
        else:
            corner = (source[0], target[1])
        return [source, corner, target]

    records: list[StreamRecord] = []
    plans, first_background = plan_groups(
        config.n_objects,
        config.group_fraction,
        config.group_size[0],
        config.group_size[1],
        config.horizon,
        rng,
    )
    dropout = DropoutModel(
        dropout_probability=config.dropout_probability,
        max_gap=config.max_gap,
        rng=rng,
    )

    for plan in plans:
        # A convoy drives a long multi-leg route together.
        waypoints = [random_corner()]
        for _ in range(rng.randint(2, 4)):
            waypoints.extend(manhattan_route(waypoints[-1], random_corner())[1:])
        walker = RouteWalker(waypoints, speed=config.speed * rng.uniform(0.9, 1.1))
        positions = [walker.step() for _ in range(plan.start_time, plan.end_time + 1)]
        for oid in plan.member_ids:
            presence = dropout.presence(plan.start_time, plan.end_time)
            for offset, present in enumerate(presence):
                if not present:
                    continue
                x, y = positions[offset]
                records.append(
                    StreamRecord(
                        oid=oid,
                        x=x + rng.uniform(-config.group_jitter, config.group_jitter),
                        y=y + rng.uniform(-config.group_jitter, config.group_jitter),
                        time=plan.start_time + offset,
                    )
                )

    for oid in range(first_background, config.n_objects):
        position = random_corner()
        walker = RouteWalker(
            manhattan_route(position, random_corner()),
            speed=config.speed * rng.uniform(0.7, 1.3),
        )
        start = rng.randint(1, max(1, config.horizon // 4))
        for t in range(start, config.horizon + 1):
            x, y = walker.step()
            records.append(StreamRecord(oid=oid, x=x, y=y, time=t))
            if walker.finished:
                walker = RouteWalker(
                    manhattan_route((x, y), random_corner()),
                    speed=config.speed * rng.uniform(0.7, 1.3),
                )
    return TrajectoryDataset(name="Taxi", records=link_last_times(records))
