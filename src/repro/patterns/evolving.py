"""Evolving-group detection: θ-continuous groups with drifting members.

Strict co-movement fixes the member set for the whole pattern lifetime;
real fleets exhibit *evolving* groups — vehicles join and leave while
the group itself persists (PAPERS.md, "Online Discovery of Evolving
Groups over Massive-Scale Trajectory Streams").  This module relaxes
membership with a **Jaccard-continuity threshold θ**: a group alive with
members :math:`O_{t-1}` continues into snapshot :math:`t` as cluster
:math:`C` when

.. math:: J(O_{t-1}, C) = |O_{t-1} \\cap C| / |O_{t-1} \\cup C| \\ge θ

and :math:`|C| \\ge M`.  Matching is one-to-one and greedy by descending
Jaccard (deterministic tie-break on member sets), so each group follows
the cluster most similar to it and each cluster extends at most one
group.  A matched group whose membership changed emits
:class:`~repro.session.events.GroupEvolved` with the join/leave deltas;
a group surviving K consecutive snapshots is confirmed once per lifetime
as a :class:`~repro.session.events.PatternConfirmed` (its membership at
confirmation time over its full interval); formations and dissolutions
reuse the existing :class:`~repro.session.events.ConvoyDelta` shape.

θ = 1 degenerates to fixed membership (the strict/convoy case); lower θ
admits proportionally more drift per snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar, Sequence

from repro.model.pattern import CoMovementPattern
from repro.model.timeseq import TimeSequence
from repro.patterns.base import PatternFamily
from repro.session.events import (
    ConvoyDelta,
    GroupEvolved,
    PatternConfirmed,
    PatternEvent,
)


@dataclass(frozen=True, slots=True)
class EvolvingGroup:
    """One live evolving group: current members and its interval so far."""

    members: frozenset[int]
    start: int
    last: int
    confirmed: bool = False

    @property
    def duration(self) -> int:
        """Consecutive snapshots survived, drift included."""
        return self.last - self.start + 1

    def to_pattern(self) -> CoMovementPattern:
        """The group as a pattern: current members over its interval."""
        return CoMovementPattern.of(
            self.members, TimeSequence(range(self.start, self.last + 1))
        )

    def sort_key(self) -> tuple:
        """Deterministic ordering key (oldest first, then members)."""
        return (self.start, tuple(sorted(self.members)))


def jaccard(a: frozenset[int], b: frozenset[int]) -> float:
    """Jaccard similarity of two member sets (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


class EvolvingGroupTracker(PatternFamily):
    """Online θ-continuity tracking over the cluster stream.

    Args:
        constraints: the CP constraint tuple; ``m`` gates cluster
            significance and ``k`` the confirmation duration (``l`` and
            ``g`` do not apply — continuity is strictly consecutive).
        theta: the Jaccard-continuity threshold in ``(0, 1]``.
    """

    name: ClassVar[str] = "evolving"

    def __init__(self, constraints, *, theta: float = 0.5):
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.m = constraints.m
        self.k = constraints.k
        self.theta = theta
        self._groups: list[EvolvingGroup] = []
        self._last_time: int | None = None

    def on_snapshot(self, time, snapshot, forming, fresh) -> list[PatternEvent]:
        """Match live groups to ``snapshot``'s clusters; emit the deltas."""
        dissolved: list[EvolvingGroup] = []
        if self._last_time is not None and time != self._last_time + 1:
            # A time jump breaks continuity for every open group.
            dissolved.extend(self._groups)
            self._groups = []
        self._last_time = time

        clusters = sorted(
            {
                frozenset(members)
                for members in (snapshot.clusters.values() if snapshot else ())
                if len(members) >= self.m
            },
            key=lambda c: tuple(sorted(c)),
        )

        pairs = [
            (jaccard(group.members, cluster), gi, ci)
            for gi, group in enumerate(self._groups)
            for ci, cluster in enumerate(clusters)
            if jaccard(group.members, cluster) >= self.theta
        ]
        pairs.sort(
            key=lambda p: (
                -p[0],
                self._groups[p[1]].sort_key(),
                tuple(sorted(clusters[p[2]])),
            )
        )
        matched_groups: dict[int, int] = {}
        matched_clusters: set[int] = set()
        for _, gi, ci in pairs:
            if gi in matched_groups or ci in matched_clusters:
                continue
            matched_groups[gi] = ci
            matched_clusters.add(ci)

        confirmed: list[PatternConfirmed] = []
        evolved: list[GroupEvolved] = []
        survivors: list[EvolvingGroup] = []
        for gi, group in enumerate(self._groups):
            ci = matched_groups.get(gi)
            if ci is None:
                dissolved.append(group)
                continue
            members = clusters[ci]
            joined = frozenset(members - group.members)
            left = frozenset(group.members - members)
            group = replace(group, members=members, last=time)
            if joined or left:
                evolved.append(
                    GroupEvolved(
                        time=time,
                        members=members,
                        joined=joined,
                        left=left,
                        duration=group.duration,
                    )
                )
            if not group.confirmed and group.duration >= self.k:
                group = replace(group, confirmed=True)
                confirmed.append(
                    PatternConfirmed(time=time, pattern=group.to_pattern())
                )
            survivors.append(group)

        formed: list[frozenset[int]] = []
        for ci, cluster in enumerate(clusters):
            if ci in matched_clusters:
                continue
            formed.append(cluster)
            group = EvolvingGroup(cluster, time, time)
            if not group.confirmed and group.duration >= self.k:
                group = replace(group, confirmed=True)
                confirmed.append(
                    PatternConfirmed(time=time, pattern=group.to_pattern())
                )
            survivors.append(group)
        self._groups = sorted(survivors, key=EvolvingGroup.sort_key)

        events: list[PatternEvent] = []
        events.extend(
            sorted(confirmed, key=lambda e: sorted(e.pattern.objects))
        )
        events.extend(sorted(evolved, key=lambda e: sorted(e.members)))
        events.extend(self._delta(time, formed, dissolved))
        return events

    def finish(self, time: int) -> list[PatternEvent]:
        """End of stream: every open group dissolves at ``time``."""
        dissolved, self._groups = self._groups, []
        return list(self._delta(time, [], dissolved))

    def _delta(
        self,
        time: int,
        formed: list[frozenset[int]],
        dissolved: list[EvolvingGroup],
    ) -> tuple[ConvoyDelta, ...]:
        """One ``ConvoyDelta`` describing the membership churn, if any."""
        ended = [
            group.to_pattern()
            for group in sorted(dissolved, key=EvolvingGroup.sort_key)
            if group.duration >= self.k
        ]
        if not formed and not dissolved:
            return ()
        return (
            ConvoyDelta(
                time=time,
                formed=tuple(sorted(formed, key=sorted)),
                dissolved=tuple(
                    sorted(
                        (group.members for group in dissolved), key=sorted
                    )
                ),
                ended=tuple(ended),
                active=len(self._groups),
            ),
        )

    def snapshot_state(self) -> dict:
        """Open groups and the tracker clock as plain data."""
        return {
            "groups": [
                (
                    tuple(sorted(g.members)),
                    g.start,
                    g.last,
                    g.confirmed,
                )
                for g in self._groups
            ],
            "last_time": self._last_time,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._groups = [
            EvolvingGroup(frozenset(members), start, last, bool(confirmed))
            for members, start, last, confirmed in payload["groups"]
        ]
        self._last_time = payload["last_time"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: open evolving groups."""
        return {"evolving_groups": len(self._groups)}
