"""Online co-movement prediction: scoring forming candidates before K.

FBA windows and VBA bit strings confirm a pattern only once K snapshots
accumulate — monitors that want to *act early* (dispatch, pre-position,
alert) need the candidates scored while still forming (PAPERS.md,
"Online Co-movement Pattern Prediction in Mobility Data").  The scorer
has two parts:

* :class:`PersistenceModel` — a per-object Bernoulli persistence
  estimate learnt online from the cluster stream: :math:`p_o` is the
  observed fraction of snapshots where object *o*, clustered at
  :math:`t`, is clustered again at :math:`t+1`.  Counts are exact (no
  smoothing), so a population that always persists reaches
  :math:`p_o = 1` — the property the probability-1 invariant tests.
* :class:`PredictiveFamily` — consumes the forming-candidate
  descriptors the enumeration stage exports (``(anchor, oid, start,
  ones, remaining)``; shipped through the process backend's reply
  protocol when isolated) and scores each candidate pair's probability
  of reaching K:

  .. math:: P(\\text{confirm}) = \\Big(\\prod_{o \\in \\{a, o'\\}}
            p_o\\Big)^{\\,\\max(0,\\,K - \\text{ones})}

  i.e. every member must persist independently for each of the
  remaining snapshots.  Candidates whose container cannot absorb the
  remaining snapshots (``remaining`` < needed) are unreachable and
  skipped.  Each reachable candidate clearing ``min_probability`` emits
  one :class:`~repro.session.events.PatternForming` event per snapshot
  with its length, probability and lead time.

Prediction precision is accounted online: a freshly confirmed pattern
counts as *predicted* when some earlier ``PatternForming`` event named
a subset of its objects; the counters surface through the telemetry
hub (``repro_patterns_predicted_total`` / ``..._unpredicted_total``).
"""

from __future__ import annotations

from typing import ClassVar, Sequence

from repro.patterns.base import FormingCandidate, PatternFamily
from repro.session.events import PatternEvent, PatternForming


class PersistenceModel:
    """Exact online per-object persistence counts over cluster snapshots."""

    def __init__(self) -> None:
        self._counts: dict[int, list[int]] = {}
        self._previous: frozenset[int] = frozenset()

    def observe(self, clustered: frozenset[int]) -> None:
        """Advance one snapshot: ``clustered`` is the clustered oid set."""
        for oid in self._previous:
            entry = self._counts.setdefault(oid, [0, 0])
            entry[1] += 1
            if oid in clustered:
                entry[0] += 1
        self._previous = clustered

    def probability(self, oid: int) -> float:
        """``p_o``: observed one-step persistence (0.5 when unobserved)."""
        entry = self._counts.get(oid)
        if entry is None or entry[1] == 0:
            return 0.5
        return entry[0] / entry[1]

    def snapshot_state(self) -> dict:
        """Counts and the previous clustered set as plain data."""
        return {
            "counts": sorted(
                (oid, persisted, total)
                for oid, (persisted, total) in self._counts.items()
            ),
            "previous": sorted(self._previous),
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._counts = {
            oid: [persisted, total]
            for oid, persisted, total in payload["counts"]
        }
        self._previous = frozenset(payload["previous"])

    def tracked_objects(self) -> int:
        """Number of objects with at least one observed transition."""
        return len(self._counts)


class PredictiveFamily(PatternFamily):
    """Score live partial matches by probability of reaching K snapshots.

    Args:
        constraints: the CP constraint tuple (``k`` is the horizon).
        min_probability: emission threshold — candidates scoring below
            it are tracked by the model but not emitted (0.0 emits every
            reachable candidate).
    """

    name: ClassVar[str] = "predictive"
    needs_forming_state: ClassVar[bool] = True

    def __init__(self, constraints, *, min_probability: float = 0.0):
        if not 0.0 <= min_probability <= 1.0:
            raise ValueError(
                f"min_probability must be in [0, 1], got {min_probability}"
            )
        self.k = constraints.k
        self.min_probability = min_probability
        self.model = PersistenceModel()
        self._predicted: dict[tuple[int, ...], int] = {}
        self._forming_total = 0
        self._predicted_total = 0
        self._unpredicted_total = 0

    def on_snapshot(
        self,
        time: int,
        snapshot,
        forming: Sequence[FormingCandidate],
        fresh,
    ) -> list[PatternEvent]:
        """Update the model, settle fresh confirmations, score candidates."""
        clustered = frozenset(
            oid
            for members in (snapshot.clusters.values() if snapshot else ())
            for oid in members
        )
        self.model.observe(clustered)

        for pattern in fresh:
            objects = frozenset(pattern.objects)
            hit = any(
                frozenset(pair) <= objects and predicted_at < time
                for pair, predicted_at in self._predicted.items()
            )
            if hit:
                self._predicted_total += 1
            else:
                self._unpredicted_total += 1

        best: dict[tuple[int, ...], tuple[float, int, int]] = {}
        for anchor, oid, start, ones, remaining in forming:
            needed = max(0, self.k - ones)
            if 0 <= remaining < needed:
                continue  # the container closes before K is reachable
            probability = 1.0 if needed == 0 else (
                (self.model.probability(anchor) * self.model.probability(oid))
                ** needed
            )
            if probability < self.min_probability:
                continue
            key = tuple(sorted((anchor, oid)))
            candidate = (probability, ones, needed)
            current = best.get(key)
            if (
                current is None
                or candidate[0] > current[0]
                or (candidate[0] == current[0] and candidate[1] > current[1])
            ):
                best[key] = candidate

        events: list[PatternEvent] = []
        for key in sorted(best):
            probability, ones, needed = best[key]
            self._forming_total += 1
            self._predicted.setdefault(key, time)
            events.append(
                PatternForming(
                    time=time,
                    oids=frozenset(key),
                    length=ones,
                    probability=probability,
                    lead=needed,
                )
            )
        return events

    def snapshot_state(self) -> dict:
        """Model counts, predicted pairs and precision counters."""
        return {
            "model": self.model.snapshot_state(),
            "predicted": sorted(
                (list(pair), predicted_at)
                for pair, predicted_at in self._predicted.items()
            ),
            "counters": {
                "forming_total": self._forming_total,
                "predicted_total": self._predicted_total,
                "unpredicted_total": self._unpredicted_total,
            },
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self.model.restore_state(payload["model"])
        self._predicted = {
            tuple(pair): predicted_at
            for pair, predicted_at in payload["predicted"]
        }
        counters = payload["counters"]
        self._forming_total = counters["forming_total"]
        self._predicted_total = counters["predicted_total"]
        self._unpredicted_total = counters["unpredicted_total"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: tracked objects and remembered predictions."""
        return {
            "persistence_objects": self.model.tracked_objects(),
            "predicted_pairs": len(self._predicted),
        }

    def metrics(self) -> dict[str, int]:
        """Monotonic counters for the telemetry hub."""
        return {
            "repro_patterns_forming_total": self._forming_total,
            "repro_patterns_predicted_total": self._predicted_total,
            "repro_patterns_unpredicted_total": self._unpredicted_total,
        }
