"""The pattern-family contract: session components behind a registry axis.

A :class:`PatternFamily` is a *master-side* component the session hosts
next to the convoy tracker: after each snapshot is fully processed it
receives the cluster view (``pipeline.last_cluster_snapshot``, shipped
identically by every backend), the forming-candidate descriptors (only
when the family declares :attr:`PatternFamily.needs_forming_state`) and
the snapshot's freshly confirmed patterns, and returns the extra typed
events the family contributes to the stream.  Because families never
touch worker-side state directly, one implementation runs bit-identically
on the serial, parallel and process backends.

Families implement the OperatorState contract (``snapshot_state`` /
``restore_state`` / ``state_metrics``) so their state rides session
checkpoints, and expose :meth:`PatternFamily.metrics` for the telemetry
hub's prediction-precision counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.pattern import CoMovementPattern
    from repro.model.snapshot import ClusterSnapshot
    from repro.session.events import PatternEvent

#: One live partial match as plain data, shipped from the enumeration
#: stage (through the process backend's reply protocol when isolated):
#: ``(anchor, oid, start, ones, remaining)`` — the candidate pair, the
#: time its bit string opened, its current trailing run of consecutive
#: present-snapshots, and how many further snapshots its container can
#: still absorb (``-1`` when unbounded, as for VBA strings).
FormingCandidate = tuple[int, int, int, int, int]


class PatternFamily(ABC):
    """What a pattern family consumes and emits, snapshot by snapshot."""

    #: Registry name of the family (mirrors the spec name).
    name: ClassVar[str] = "family"
    #: True when :meth:`on_snapshot` needs forming-candidate descriptors;
    #: the session only round-trips the enumeration stage (a worker
    #: protocol exchange on the process backend) for families that ask.
    needs_forming_state: ClassVar[bool] = False

    @abstractmethod
    def on_snapshot(
        self,
        time: int,
        snapshot: "ClusterSnapshot | None",
        forming: Sequence[FormingCandidate],
        fresh: Sequence["CoMovementPattern"],
    ) -> list["PatternEvent"]:
        """Consume one fully processed snapshot; returns family events.

        ``snapshot`` is the pipeline's last cluster snapshot (``None``
        when clustering produced no snapshot for ``time``), ``forming``
        the descriptors of live partial matches (empty unless
        :attr:`needs_forming_state`), ``fresh`` the patterns first
        confirmed while processing ``time``.
        """

    def finish(self, time: int) -> list["PatternEvent"]:
        """End of stream at ``time``; returns the family's final events."""
        return []

    def snapshot_state(self) -> dict:
        """The family's state as plain serialisable data."""
        return {}

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting entries for ``SessionResult.state_memory``."""
        return {}

    def metrics(self) -> dict[str, int]:
        """Monotonic counters for the telemetry hub (may be empty)."""
        return {}


class StrictFamily(PatternFamily):
    """The default family: the paper's semantics, no extra events.

    Exists so the ``pattern_family`` axis is total — selecting
    ``"strict"`` constructs a real (inert) plugin — while the session
    skips hosting it entirely for zero per-snapshot overhead.
    """

    name: ClassVar[str] = "strict"

    def on_snapshot(self, time, snapshot, forming, fresh):
        """Strict detection adds nothing beyond the pipeline's events."""
        return []
