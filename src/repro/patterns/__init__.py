"""Pattern families: relaxed and predictive views over the cluster stream.

The paper's detector confirms strict CP(M, K, L, G) patterns — fixed
membership over K of L consecutive snapshots.  This package generalises
*what counts as a pattern* behind the ``pattern_family`` registry axis
while leaving the strict pipeline untouched:

* :mod:`repro.patterns.base` — the :class:`PatternFamily` contract (a
  master-side session component consuming cluster snapshots and, for
  predictive families, forming-candidate descriptors) and the no-op
  ``strict`` default;
* :mod:`repro.patterns.evolving` — θ-continuous evolving groups whose
  membership may drift between consecutive snapshots
  (:class:`EvolvingGroupTracker`, emitting ``GroupEvolved``);
* :mod:`repro.patterns.prediction` — the online per-object persistence
  model and confirmation-probability scorer
  (:class:`PredictiveFamily`, emitting ``PatternForming``).

Families are selected through ``ICPEConfig.pattern_family`` /
``SessionBuilder.patterns(...)`` / the CLI ``--pattern-family`` flag and
run identically on all three execution backends: they consume only
master-side state (the last cluster snapshot and the forming
descriptors the process backend ships through its reply protocol).
See ``docs/PATTERNS.md`` for semantics and event schemas.
"""

from repro.patterns.base import PatternFamily, StrictFamily
from repro.patterns.evolving import EvolvingGroup, EvolvingGroupTracker
from repro.patterns.prediction import PersistenceModel, PredictiveFamily

__all__ = [
    "EvolvingGroup",
    "EvolvingGroupTracker",
    "PatternFamily",
    "PersistenceModel",
    "PredictiveFamily",
    "StrictFamily",
]
