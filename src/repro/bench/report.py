"""Fixed-width report rendering for benchmark sweeps.

Each ``benchmarks/bench_figXX_*.py`` module prints its figure's series
through these helpers and appends them to ``benchmarks/results/`` so that
``EXPERIMENTS.md`` can reference concrete measured numbers.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, Mapping, Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def _format_cell(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n(no data)") if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {col: _format_cell(row.get(col, "")) for col in columns} for row in rows
    ]
    widths = {
        col: max(len(col), *(len(row[col]) for row in rendered))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(f"{col:>{widths[col]}}" for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for row in rendered:
        lines.append("  ".join(f"{row[col]:>{widths[col]}}" for col in columns))
    return "\n".join(lines)


def write_report(name: str, content: str) -> Path:
    """Persist a figure's series under ``benchmarks/results/<name>.txt``.

    Prints the path it wrote, so every bench run states where its results
    artifact landed (``benchmarks/results/`` is gitignored except for the
    deliberately committed reports — see ``docs/BENCHMARKS.md``).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    print(f"[bench] report written to {path}")
    return path
