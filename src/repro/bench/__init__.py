"""Benchmark harness: parameters, sweep runners and report formatting.

Each figure/table of the paper's evaluation (Section 7) has a runner here
and a regenerating module under ``benchmarks/``; ``EXPERIMENTS.md`` records
paper-vs-measured outcomes.  Beyond the paper's simulated-cluster sweeps,
:mod:`repro.bench.backend_workload` and the backend-comparison runner
measure *real* wall-clock scalability of the parallel execution backend.
"""

from repro.bench.params import BenchParams, PAPER_TABLE3, SCALED_TABLE3
from repro.bench.backend_workload import (
    BackendSweepPoint,
    build_workload_job,
    run_backend_sweep,
)
from repro.bench.harness import (
    BackendPoint,
    ClusteringPoint,
    DetectionPoint,
    EnumerationPoint,
    average_detection_delay,
    build_clustering_job,
    build_clustering_runtimes,
    clustering_join_settings,
    earliest_confirmable,
    run_backend_comparison,
    run_clustering_point,
    run_detection_point,
    run_enumeration_point,
    run_node_sweep,
)
from repro.bench.report import format_table, write_report
from repro.bench.sparkline import series_block, sparkline

__all__ = [
    "BackendPoint",
    "BackendSweepPoint",
    "BenchParams",
    "ClusteringPoint",
    "DetectionPoint",
    "EnumerationPoint",
    "PAPER_TABLE3",
    "SCALED_TABLE3",
    "average_detection_delay",
    "build_clustering_job",
    "build_clustering_runtimes",
    "build_workload_job",
    "clustering_join_settings",
    "earliest_confirmable",
    "format_table",
    "run_backend_comparison",
    "run_backend_sweep",
    "run_clustering_point",
    "run_detection_point",
    "run_enumeration_point",
    "run_node_sweep",
    "series_block",
    "sparkline",
    "write_report",
]
