"""Terminal sparklines: render benchmark series as inline curves.

The paper's figures are line/bar charts; in a text-only environment the
closest faithful artefact is a sparkline per (dataset, method) series,
which makes trends (monotone growth, U-shapes, crossovers) visible in the
``benchmarks/results`` files without plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode block sparkline of a numeric series.

    NaNs render as spaces; a constant series renders mid-height.
    """
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for value in values:
        if math.isnan(value):
            chars.append(" ")
        elif span == 0:
            chars.append(BARS[len(BARS) // 2])
        else:
            index = int((value - lo) / span * (len(BARS) - 1))
            chars.append(BARS[index])
    return "".join(chars)


def series_block(
    rows: Iterable[Mapping[str, object]],
    group_by: Sequence[str],
    x: str,
    y: str,
    title: str | None = None,
) -> str:
    """Group rows, order each group by ``x`` and sparkline its ``y``.

    Example output::

        latency_ms vs eps_pct
          Brinkhoff/GDC  ▁▃▂▄▃█
          Brinkhoff/RJC  ▁▁▅▆▅▅
    """
    groups: dict[tuple, list[tuple[float, float]]] = {}
    for row in rows:
        key = tuple(str(row[field]) for field in group_by)
        groups.setdefault(key, []).append(
            (float(row[x]), float(row[y]))  # type: ignore[arg-type]
        )
    lines = [title or f"{y} vs {x}"]
    width = max((len("/".join(key)) for key in groups), default=0)
    for key in sorted(groups):
        series = [value for _, value in sorted(groups[key])]
        lines.append(f"  {'/'.join(key):<{width}}  {sparkline(series)}")
    return "\n".join(lines)
