"""A synthetic workload isolating execution-backend scalability.

The ICPE operators are pure Python, so on a stock (GIL) CPython build
their work serialises across threads and the parallel backend can only
match — not beat — the serial one on a single machine.  This module
provides a workload whose per-subtask work has the *shape* that real
distributed stages have and that a worker pool genuinely accelerates:

* a **CPU kernel** (``hashlib.pbkdf2_hmac``) — C-level compute that
  releases the GIL, so on a multi-core host the parallel backend runs
  subtask kernels on different cores simultaneously;
* a **stall** (``time.sleep``) — standing in for the exchange /
  state-backend / sink waits every distributed stage has, which the
  parallel backend overlaps across subtasks even on a single core.

Both backends run the *identical* job over the identical elements; the
sweep asserts output equality and reports measured wall-clock speedup.
"""

from __future__ import annotations

import hashlib
import time as _time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.streaming.dataflow import Operator
from repro.streaming.environment import Job, StreamEnvironment
from repro.streaming.runtime import ParallelBackend, SerialBackend


class StallingHashOperator(Operator):
    """Buffers its bucket, then burns CPU and stalls at the batch trigger.

    Deterministic: the digest emitted for a batch depends only on the
    subtask's bucket contents and the batch context, so serial and
    parallel execution produce byte-identical outputs.
    """

    def __init__(self, cpu_iterations: int, stall_seconds: float):
        self.cpu_iterations = cpu_iterations
        self.stall_seconds = stall_seconds
        self._buffer: list[Any] = []
        self._index = 0

    def open(self, subtask_index: int, parallelism: int) -> None:
        """Remember the subtask index (part of the emitted record)."""
        self._index = subtask_index

    def process(self, element: Any) -> Iterable[Any]:
        """Collect one element into the batch buffer."""
        self._buffer.append(element)
        return ()

    def end_batch(self, ctx: Any) -> Iterable[tuple[int, int, str]]:
        """Kernel + stall over the buffered batch; emit its digest."""
        payload = repr((ctx, self._buffer)).encode("utf-8")
        digest = hashlib.pbkdf2_hmac(
            "sha256", payload, b"repro-backend-sweep", self.cpu_iterations
        )
        if self.stall_seconds > 0:
            _time.sleep(self.stall_seconds)
        count = len(self._buffer)
        self._buffer.clear()
        yield (self._index, count, digest.hex())


def build_workload_job(
    parallelism: int,
    cpu_iterations: int,
    stall_seconds: float,
    backend=None,
) -> Job:
    """One keyed stage of :class:`StallingHashOperator` subtasks."""
    env = StreamEnvironment()
    (
        env.source()
        .key_by(lambda element: element, name="hash-stall")
        .process(
            lambda: StallingHashOperator(cpu_iterations, stall_seconds),
            parallelism=parallelism,
        )
    )
    return env.compile(backend=backend)


@dataclass(frozen=True, slots=True)
class BackendSweepPoint:
    """One backend's measurement over the synthetic workload."""

    backend: str
    workers: int
    wall_seconds: float
    speedup_vs_serial: float
    digest: str


def _drive(job: Job, batches: int, elements_per_batch: int) -> tuple[float, str]:
    combined = hashlib.sha256()
    started = _time.perf_counter()
    for batch in range(batches):
        elements = [
            batch * elements_per_batch + offset
            for offset in range(elements_per_batch)
        ]
        outputs, _works = job.run(elements, ctx=batch)
        combined.update(repr(outputs).encode("utf-8"))
    wall = _time.perf_counter() - started
    job.close()
    return wall, combined.hexdigest()


def run_backend_sweep(
    parallelism: int = 4,
    batches: int = 6,
    elements_per_batch: int = 32,
    cpu_iterations: int = 20_000,
    stall_seconds: float = 0.02,
    workers: int | None = None,
) -> list[BackendSweepPoint]:
    """Measure serial vs parallel wall clock on the synthetic workload.

    Returns one point per backend (serial first); raises
    :class:`RuntimeError` if the two backends' output streams differ —
    equality is asserted over a digest of every emitted element in order.
    """
    pool_size = workers or parallelism
    runs = [
        ("serial", 1, SerialBackend()),
        ("parallel", pool_size, ParallelBackend(max_workers=pool_size)),
    ]
    points: list[BackendSweepPoint] = []
    serial_wall: float | None = None
    digests: dict[str, str] = {}
    for name, used_workers, backend in runs:
        job = build_workload_job(
            parallelism, cpu_iterations, stall_seconds, backend=backend
        )
        try:
            wall, digest = _drive(job, batches, elements_per_batch)
        finally:
            backend.close()  # sweep-owned instance; job.close() borrows
        digests[name] = digest
        if serial_wall is None:
            serial_wall = wall
        points.append(
            BackendSweepPoint(
                backend=name,
                workers=used_workers,
                wall_seconds=wall,
                speedup_vs_serial=serial_wall / wall if wall > 0 else 1.0,
                digest=digest,
            )
        )
    if digests["serial"] != digests["parallel"]:
        raise RuntimeError(
            "serial and parallel backends emitted different output streams"
        )
    return points
