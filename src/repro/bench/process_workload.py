"""A three-backend sweep over a distributed-shape two-stage workload.

Companion to :mod:`repro.bench.backend_workload`, extended for the
process backend.  The process backend rebuilds operators inside each
worker from a picklable :class:`~repro.streaming.runtime.GraphSpec`, so
the job builder here is a module-level function (the lambda factories in
:func:`~repro.bench.backend_workload.build_workload_job` cannot cross a
spawn boundary).

The workload is two keyed stages of
:class:`~repro.bench.backend_workload.StallingHashOperator` — a
GIL-releasing CPU kernel plus an exchange/state-backend stall per
subtask per unit, the shape real distributed stages have.  A worker pool
(threads *or* processes) overlaps the stalls across subtasks even on a
single core, which is what the sweep measures; all backends must emit
byte-identical output streams, asserted via a running digest.
"""

from __future__ import annotations

import hashlib
import time as _time
from dataclasses import dataclass
from typing import Mapping

from repro.bench.backend_workload import StallingHashOperator
from repro.streaming.environment import Job, StreamEnvironment
from repro.streaming.runtime import (
    GraphSpec,
    ParallelBackend,
    ProcessBackend,
    SerialBackend,
)


def build_stall_environment(
    parallelism: int, cpu_iterations: int, stall_seconds: float
) -> StreamEnvironment:
    """Two chained keyed stages of stalling-hash subtasks.

    Module-level on purpose: ``GraphSpec(build_stall_environment, args)``
    pickles this function by reference, so spawned workers re-import it
    and rebuild identical operator instances shared-nothing.
    """
    env = StreamEnvironment()
    (
        env.source()
        .key_by(lambda element: element, name="hash-stall")
        .process(
            lambda: StallingHashOperator(cpu_iterations, stall_seconds),
            parallelism=parallelism,
        )
        # Second hop re-keys on the upstream subtask index, exercising a
        # real keyed exchange between stages under every backend.
        .key_by(lambda element: element[0], name="fold")
        .process(
            lambda: StallingHashOperator(cpu_iterations, stall_seconds),
            parallelism=parallelism,
        )
    )
    return env


@dataclass(frozen=True, slots=True)
class ProcessSweepPoint:
    """One backend/pool-size measurement over the two-stage workload.

    ``stage_busy_seconds`` sums each stage's per-subtask busy time from
    the :class:`~repro.streaming.runtime.StageWork` ledger — under the
    process backend these are measured *inside* the workers, so the
    breakdown shows where pool time actually went.
    """

    backend: str
    workers: int
    wall_seconds: float
    speedup_vs_serial: float
    digest: str
    stage_busy_seconds: Mapping[str, float]


def _drive(
    job: Job, batches: int, elements_per_batch: int
) -> tuple[float, str, dict[str, float]]:
    """Run the job over deterministic batches; wall, digest, busy map."""
    combined = hashlib.sha256()
    stage_busy: dict[str, float] = {}
    started = _time.perf_counter()
    for batch in range(batches):
        elements = [
            batch * elements_per_batch + offset
            for offset in range(elements_per_batch)
        ]
        outputs, works = job.run(elements, ctx=batch)
        combined.update(repr(outputs).encode("utf-8"))
        for work in works:
            stage_busy[work.name] = stage_busy.get(work.name, 0.0) + sum(
                work.busy_seconds
            )
    wall = _time.perf_counter() - started
    job.close()
    return wall, combined.hexdigest(), stage_busy


def run_process_sweep(
    parallelism: int = 8,
    batches: int = 4,
    elements_per_batch: int = 32,
    cpu_iterations: int = 1_000,
    stall_seconds: float = 0.02,
    process_workers: tuple[int, ...] = (1, 2, 4),
    parallel_workers: int | None = None,
) -> list[ProcessSweepPoint]:
    """Measure serial vs parallel vs process backends on one workload.

    Row order: serial (the speedup baseline), parallel threads at
    ``parallel_workers`` (default: the largest process pool), then one
    process row per pool size in ``process_workers``.  Worker spawn and
    graph warm-up happen at compile time, before the timer starts — the
    sweep measures steady-state execution, not pool start-up.  Raises
    :class:`RuntimeError` if any backend's output stream digest differs
    from serial's.
    """
    thread_pool = parallel_workers or max(process_workers)
    spec = GraphSpec(
        build_stall_environment, (parallelism, cpu_iterations, stall_seconds)
    )
    runs: list[tuple[str, int, object]] = [
        ("serial", 1, SerialBackend()),
        ("parallel", thread_pool, ParallelBackend(max_workers=thread_pool)),
    ]
    runs += [
        ("process", workers, ProcessBackend(max_workers=workers))
        for workers in process_workers
    ]
    points: list[ProcessSweepPoint] = []
    serial_wall: float | None = None
    serial_digest: str | None = None
    for name, workers, backend in runs:
        env = build_stall_environment(
            parallelism, cpu_iterations, stall_seconds
        )
        # bind_graph + worker warm-up run inside compile(), off the clock.
        job = env.compile(backend=backend, graph_spec=spec)
        try:
            wall, digest, stage_busy = _drive(
                job, batches, elements_per_batch
            )
        finally:
            backend.close()  # sweep-owned instance; job.close() borrows
        if serial_wall is None:
            serial_wall, serial_digest = wall, digest
        if digest != serial_digest:
            raise RuntimeError(
                f"backend {name!r} (workers={workers}) emitted a different "
                "output stream than 'serial'"
            )
        points.append(
            ProcessSweepPoint(
                backend=name,
                workers=workers,
                wall_seconds=wall,
                speedup_vs_serial=serial_wall / wall if wall > 0 else 1.0,
                digest=digest,
                stage_busy_seconds=stage_busy,
            )
        )
    return points
