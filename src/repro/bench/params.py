"""Table 3: parameter ranges and defaults.

``PAPER_TABLE3`` reproduces the paper's values verbatim (defaults in
bold there).  ``SCALED_TABLE3`` is the laptop-scale mapping actually used
by the benchmark defaults: the paper's datasets have 1e5-5e5 snapshots and
up to 2e4 trajectories; ours default to dozens of snapshots and hundreds
of trajectories, so the temporal constraints (K, L, G) and significance M
scale down proportionally while the percentage-based spatial parameters
(epsilon, lg) keep the paper's values.  ``EXPERIMENTS.md`` documents the
mapping per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class ParamRange:
    """One sweep row of Table 3."""

    name: str
    values: tuple
    default: object

    def __post_init__(self) -> None:
        if self.default not in self.values:
            raise ValueError(
                f"{self.name}: default {self.default!r} not in {self.values!r}"
            )


@dataclass(frozen=True, slots=True)
class BenchParams:
    """A Table 3 instantiation (paper-true or scaled)."""

    grid_pct: ParamRange
    epsilon_pct: ParamRange
    m: ParamRange
    k: ParamRange
    l: ParamRange
    g: ParamRange
    object_ratio: ParamRange
    nodes: ParamRange
    min_pts: int

    def rows(self) -> list[ParamRange]:
        """The sweep rows in Table 3's display order."""
        return [
            self.grid_pct,
            self.epsilon_pct,
            self.m,
            self.k,
            self.l,
            self.g,
            self.object_ratio,
            self.nodes,
        ]


PAPER_TABLE3 = BenchParams(
    grid_pct=ParamRange(
        "grid cell width lg (%)", (0.2, 0.4, 0.8, 1.6, 3.2, 6.4), 1.6
    ),
    epsilon_pct=ParamRange(
        "distance threshold eps (%)",
        (0.02, 0.04, 0.06, 0.08, 0.10, 0.12),
        0.06,
    ),
    m=ParamRange("min objects M", (5, 10, 15, 20, 25), 15),
    k=ParamRange("min duration K", (120, 150, 180, 210, 240), 180),
    l=ParamRange("min local duration L", (10, 20, 30, 40, 50), 30),
    g=ParamRange("max gap G", (10, 20, 30, 40, 50), 30),
    object_ratio=ParamRange(
        "ratio of objects Or", (0.1, 0.2, 0.4, 0.6, 0.8, 1.0), 1.0
    ),
    nodes=ParamRange("machine number N", (1, 2, 4, 6, 8, 10), 10),
    min_pts=10,
)

SCALED_TABLE3 = BenchParams(
    grid_pct=ParamRange(
        "grid cell width lg (%)", (0.2, 0.4, 0.8, 1.6, 3.2, 6.4), 1.6
    ),
    epsilon_pct=ParamRange(
        "distance threshold eps (%)",
        (0.02, 0.04, 0.06, 0.08, 0.10, 0.12),
        0.06,
    ),
    m=ParamRange("min objects M", (3, 4, 5, 6, 7), 5),
    k=ParamRange("min duration K", (6, 8, 10, 12, 14), 10),
    l=ParamRange("min local duration L", (1, 2, 3, 4, 5), 2),
    g=ParamRange("max gap G", (1, 2, 3, 4, 5), 2),
    object_ratio=ParamRange(
        "ratio of objects Or", (0.1, 0.2, 0.4, 0.6, 0.8, 1.0), 1.0
    ),
    nodes=ParamRange("machine number N", (1, 2, 4, 6, 8, 10), 10),
    min_pts=5,
)


def table3_text(params: BenchParams, title: str) -> str:
    """Render a Table 3 instantiation as fixed-width text."""
    lines = [title, "-" * len(title)]
    width = max(len(row.name) for row in params.rows())
    for row in params.rows():
        cells = ", ".join(
            f"[{v}]" if v == row.default else str(v) for v in row.values
        )
        lines.append(f"{row.name:<{width}}  {cells}")
    lines.append(f"{'minPts (fixed)':<{width}}  {params.min_pts}")
    return "\n".join(lines)
