"""Sweep runners for the paper's experiments.

Three measurement modes, matching what each figure isolates:

* clustering-only (Figs. 10-11): the clustering phase of the dataflow
  (GridAllocate -> GridQuery -> GridSync/DBSCAN) per method, scored by the
  distributed cost model.  SRJ is the GR-index join without Lemmas 1-2;
  GDC is grid DBSCAN "extended to Flink": epsilon-width cells, full 3x3
  replication, linear in-cell scan — which is why its partition count
  explodes, exactly the behaviour the paper attributes to it;
* full detection (Figs. 12-14): the ICPE pipeline with per-subtask busy
  accounting scored by the cluster cost model.  The *latency* the paper
  reports for B/F/V is the detection response time — how long after a
  pattern becomes confirmable the system reports it — which is the
  quantity VBA trades away for throughput; we measure it in snapshot
  units via :func:`detection_delay_snapshots`;
* enumeration-only (Fig. 15): BA/FBA/VBA over a pre-clustered stream
  ("clustering omitted as its performance is not affected by the
  constraints" — Section 7.3).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace

from repro.cluster.rjc import ClusteringConfig, RJCClusterer
from repro.core.config import ICPEConfig
from repro.core.icpe import ICPEPipeline, describe_clustering_stages
from repro.data.dataset import TrajectoryDataset
from repro.enumeration.base import PatternCollector
from repro.enumeration.baseline import BAEnumerator, PartitionTooLargeError
from repro.enumeration.fba import FBAEnumerator
from repro.enumeration.partition import PartitionRouter
from repro.enumeration.vba import VBAEnumerator
from repro.geometry.distance import l1_distance
from repro.model.constraints import PatternConstraints
from repro.model.pattern import CoMovementPattern
from repro.model.snapshot import ClusterSnapshot
from repro.model.timeseq import TimeSequence
from repro.streaming.cluster import ClusterModel, ClusterRun
from repro.streaming.dataflow import StageRuntime
from repro.streaming.environment import Job, StreamEnvironment

CLUSTERING_METHODS = ("RJC", "SRJ", "GDC")
ENUMERATORS = ("B", "F", "V")

_ENUM_NAME = {"B": "baseline", "F": "fba", "V": "vba"}


def registered_strategy_names(
    kind: str, reference: str | None = None
) -> tuple[str, ...]:
    """Sweepable plugin names of one strategy axis, reference first.

    Reads the plugin registry (so entry-point plugins join sweeps
    automatically), keeps only plugins whose runtime requirements are
    met on this host, and moves ``reference`` — the row speedups are
    measured against — to the front when present.  The backend / kernel
    comparison runners use this as their default instead of hardcoded
    name lists.
    """
    from repro.registry import default_registry

    names = list(default_registry().available_names(kind))
    if reference is not None and reference in names:
        names.remove(reference)
        names.insert(0, reference)
    return tuple(names)


# --------------------------------------------------------------------- points


@dataclass(frozen=True, slots=True)
class ClusteringPoint:
    """One (method, parameter) sample of Figs. 10-11."""

    method: str
    epsilon_pct: float
    grid_pct: float
    avg_latency_ms: float
    throughput_tps: float
    clusters: int


@dataclass(frozen=True, slots=True)
class DetectionPoint:
    """One (method, parameter) sample of Figs. 12-14.

    ``avg_latency_ms`` is the cost-model per-snapshot processing latency;
    ``avg_delay_snapshots`` is the detection response time in snapshot
    units (how long after a pattern became confirmable it was reported) —
    the paper's F-vs-V latency story.
    """

    method: str
    parameter: str
    value: float
    avg_latency_ms: float
    throughput_tps: float
    avg_cluster_size: float
    patterns: int
    avg_delay_snapshots: float = 0.0
    completed: bool = True


@dataclass(frozen=True, slots=True)
class EnumerationPoint:
    """One (algorithm, constraint) sample of Fig. 15."""

    method: str
    parameter: str
    value: int
    avg_latency_ms: float
    throughput_tps: float
    patterns: int
    avg_delay_snapshots: float = 0.0
    completed: bool = True


# ------------------------------------------------------------ response time


def earliest_confirmable(
    pattern: CoMovementPattern, constraints: PatternConstraints
) -> int:
    """First stream time at which the pattern's witness became valid.

    The shortest prefix of the witness sequence satisfying (K, L, G) marks
    the moment an ideal online detector could have reported the pattern.
    """
    times = pattern.times.times
    for index in range(len(times)):
        prefix = TimeSequence(times[: index + 1])
        if constraints.sequence_valid(prefix):
            return times[index]
    return times[-1]


def average_detection_delay(
    detections: list[tuple[int, CoMovementPattern]],
    constraints: PatternConstraints,
) -> float:
    """Mean (emission time - earliest confirmable time) in snapshot units."""
    if not detections:
        return 0.0
    total = sum(
        emit_time - earliest_confirmable(pattern, constraints)
        for emit_time, pattern in detections
    )
    return total / len(detections)


# ---------------------------------------------------------------- clustering


def clustering_join_settings(
    method: str, epsilon: float, cell_width: float
) -> dict:
    """Join-stage settings realising each Fig. 10 method on the dataflow.

    * RJC — the paper's method: lg cells, both lemmas, local R-trees.
    * SRJ — full-region replication, build-then-query, post-hoc dedup.
    * GDC — grid DBSCAN on Flink: epsilon-width cells (hence the partition
      explosion), full 3x3-block replication, linear in-cell scan.
    """
    if method == "RJC":
        return dict(
            cell_width=cell_width, lemma1=True, lemma2=True,
            local_index="rtree", dedup=False,
        )
    if method == "SRJ":
        return dict(
            cell_width=cell_width, lemma1=False, lemma2=False,
            local_index="rtree", dedup=True,
        )
    if method == "GDC":
        return dict(
            cell_width=epsilon, lemma1=False, lemma2=False,
            local_index="linear", dedup=True,
        )
    raise ValueError(f"unknown clustering method {method!r}")


def build_clustering_job(
    method: str,
    epsilon: float,
    cell_width: float,
    min_pts: int,
    allocate_parallelism: int = 8,
    query_parallelism: int = 16,
    backend=None,
) -> Job:
    """The clustering phase of the job graph for one method.

    Described through the same :func:`describe_clustering_stages` helper
    the full ICPE pipeline uses — the bench provably measures the
    pipeline's topology — and compiled onto ``backend`` (default serial).
    """
    settings = clustering_join_settings(method, epsilon, cell_width)
    env = StreamEnvironment()
    describe_clustering_stages(
        env.source(),
        epsilon=epsilon,
        cell_width=settings["cell_width"],
        min_pts=min_pts,
        significance=2,
        metric=l1_distance,
        lemma1=settings["lemma1"],
        lemma2=settings["lemma2"],
        local_index=settings["local_index"],
        dedup=settings["dedup"],
        allocate_parallelism=allocate_parallelism,
        query_parallelism=query_parallelism,
    )
    return env.compile(backend=backend)


def build_clustering_runtimes(
    method: str,
    epsilon: float,
    cell_width: float,
    min_pts: int,
    allocate_parallelism: int = 8,
    query_parallelism: int = 16,
) -> list[StageRuntime]:
    """Legacy view: the instantiated runtimes of :func:`build_clustering_job`."""
    return build_clustering_job(
        method,
        epsilon,
        cell_width,
        min_pts,
        allocate_parallelism=allocate_parallelism,
        query_parallelism=query_parallelism,
    ).runtimes


def run_clustering_point(
    dataset: TrajectoryDataset,
    method: str,
    epsilon_pct: float,
    grid_pct: float,
    min_pts: int,
    n_nodes: int = 10,
) -> ClusteringPoint:
    """Measure one clustering configuration over the whole dataset.

    Latency/throughput come from the distributed cost model over the
    measured per-subtask busy times — the setting the paper's Fig. 10-11
    numbers describe (an 11-node Flink cluster).
    """
    epsilon = dataset.resolve_percentage(epsilon_pct)
    cell_width = dataset.resolve_percentage(grid_pct)
    job = build_clustering_job(method, epsilon, cell_width, min_pts)
    run = ClusterRun(model=ClusterModel(n_nodes=n_nodes))
    for snapshot in dataset.snapshots():
        _outputs, works = job.run(snapshot.points(), ctx=snapshot.time)
        run.record(works)
    cluster_operator = job.runtimes[-1].subtasks[0]
    return ClusteringPoint(
        method=method,
        epsilon_pct=epsilon_pct,
        grid_pct=grid_pct,
        avg_latency_ms=run.average_latency_ms(),
        throughput_tps=run.throughput_tps(),
        clusters=cluster_operator.clusters_formed,
    )


# ----------------------------------------------------------------- detection


def detection_config(
    dataset: TrajectoryDataset,
    constraints: PatternConstraints,
    enumerator: str,
    epsilon_pct: float,
    grid_pct: float,
    min_pts: int,
    n_nodes: int = 10,
    slots_per_node: int = 24,
    backend: str = "serial",
    parallel_workers: int | None = None,
) -> ICPEConfig:
    """ICPE configuration resolved against a dataset's extent.

    ``slots_per_node`` is the per-node parallel capacity of the simulated
    cluster.  The node-scalability sweep (Fig. 14) uses a small value so
    that subtasks contend on few nodes and spread with many — the regime
    the paper's (much heavier per-subtask) workloads are in.
    ``backend`` selects the execution backend actually running the job
    graph (measured, not simulated, parallelism).
    """
    return ICPEConfig(
        epsilon=dataset.resolve_percentage(epsilon_pct),
        cell_width=dataset.resolve_percentage(grid_pct),
        min_pts=min_pts,
        constraints=constraints,
        enumerator=_ENUM_NAME[enumerator],
        cluster=ClusterModel(n_nodes=n_nodes, cores_per_node=slots_per_node),
        backend=backend,
        parallel_workers=parallel_workers,
    )


def run_detection_point(
    dataset: TrajectoryDataset,
    config: ICPEConfig,
    method: str,
    parameter: str,
    value: float,
    keep_works: bool = False,
) -> tuple[DetectionPoint, ICPEPipeline | None]:
    """Run the full pipeline once; returns the sample and the pipeline.

    BA configurations that exceed the subset cap return a ``completed=
    False`` sample — the paper's "B cannot run" outcome in Fig. 12.
    """
    pipeline = ICPEPipeline(config, keep_works=keep_works)
    try:
        for snapshot in dataset.snapshots():
            pipeline.process_snapshot(snapshot)
        pipeline.finish()
    except PartitionTooLargeError:
        pipeline.close()
        return (
            DetectionPoint(
                method=method,
                parameter=parameter,
                value=value,
                avg_latency_ms=float("nan"),
                throughput_tps=float("nan"),
                avg_cluster_size=pipeline.average_cluster_size(),
                patterns=0,
                completed=False,
            ),
            None,
        )
    meter = pipeline.meter
    return (
        DetectionPoint(
            method=method,
            parameter=parameter,
            value=value,
            avg_latency_ms=meter.average_latency_ms(),
            throughput_tps=meter.throughput_tps(),
            avg_cluster_size=pipeline.average_cluster_size(),
            patterns=len(pipeline.collector),
            avg_delay_snapshots=average_detection_delay(
                pipeline.collector.detections, config.constraints
            ),
            completed=True,
        ),
        pipeline,
    )


def run_node_sweep(
    dataset: TrajectoryDataset,
    config: ICPEConfig,
    method: str,
    nodes: tuple[int, ...],
) -> list[DetectionPoint]:
    """Fig. 14: one execution re-scored under every cluster size N."""
    point, pipeline = run_detection_point(
        dataset, config, method, "N", float(config.cluster.n_nodes),
        keep_works=True,
    )
    if pipeline is None:
        return [replace(point, parameter="N", value=float(n)) for n in nodes]
    delay = average_detection_delay(
        pipeline.collector.detections, config.constraints
    )
    out: list[DetectionPoint] = []
    for n in nodes:
        meter = pipeline.rescore(replace(config.cluster, n_nodes=n))
        out.append(
            DetectionPoint(
                method=method,
                parameter="N",
                value=float(n),
                avg_latency_ms=meter.average_latency_ms(),
                throughput_tps=meter.throughput_tps(),
                avg_cluster_size=pipeline.average_cluster_size(),
                patterns=len(pipeline.collector),
                avg_delay_snapshots=delay,
            )
        )
    return out


# ------------------------------------------------------------ backend sweep


@dataclass(frozen=True, slots=True)
class BackendPoint:
    """One execution-backend sample of the measured wall-clock sweep.

    Unlike :class:`DetectionPoint`, whose latency/throughput come from the
    *simulated* cluster cost model, ``wall_seconds`` here is real measured
    wall-clock time of the whole run under the named backend.
    """

    backend: str
    wall_seconds: float
    snapshots: int
    patterns: int
    speedup_vs_serial: float = 1.0


def _pattern_signature(pipeline: ICPEPipeline) -> frozenset:
    return frozenset(
        (pattern.objects, tuple(pattern.times.times))
        for pattern in pipeline.patterns
    )


def _timed_pipeline_run(
    dataset: TrajectoryDataset, config: ICPEConfig
) -> tuple[ICPEPipeline, float]:
    """Run the full pipeline over a dataset; returns it and wall seconds."""
    pipeline = ICPEPipeline(config)
    started = _time.perf_counter()
    try:
        for snapshot in dataset.snapshots():
            pipeline.process_snapshot(snapshot)
        pipeline.finish()
    finally:
        pipeline.close()
    return pipeline, _time.perf_counter() - started


def _require_equal_signatures(
    signatures: dict[str, frozenset], baseline: str, axis: str
) -> None:
    """Raise unless every variant produced the baseline's pattern set.

    Output equality across strategy variants (backends, kernels) is part
    of their contract; a benchmark that silently compared different
    answers would be meaningless.
    """
    reference = signatures[baseline]
    for name, signature in signatures.items():
        if signature != reference:
            raise RuntimeError(
                f"{axis} {name!r} produced a different pattern set than "
                f"{baseline!r}: {len(signature)} vs {len(reference)} patterns"
            )


def run_backend_comparison(
    dataset: TrajectoryDataset,
    config: ICPEConfig,
    backends: tuple[str, ...] | None = None,
    parallel_workers: int | None = None,
) -> list[BackendPoint]:
    """Run the full ICPE pipeline under each backend; measure wall clock.

    ``backends=None`` sweeps every registered, available backend plugin
    (serial first).  The first backend in ``backends`` is the speedup
    baseline.  Raises :class:`RuntimeError` if any two backends disagree
    on the detected pattern set.
    """
    if backends is None:
        backends = registered_strategy_names("backend", reference="serial")
    points: list[BackendPoint] = []
    signatures: dict[str, frozenset] = {}
    baseline_wall: float | None = None
    for name in backends:
        pipeline, wall = _timed_pipeline_run(
            dataset,
            replace(config, backend=name, parallel_workers=parallel_workers),
        )
        signatures[name] = _pattern_signature(pipeline)
        if baseline_wall is None:
            baseline_wall = wall
        points.append(
            BackendPoint(
                backend=name,
                wall_seconds=wall,
                snapshots=pipeline.meter.snapshots,
                patterns=len(pipeline.collector),
                speedup_vs_serial=baseline_wall / wall if wall > 0 else 1.0,
            )
        )
    _require_equal_signatures(signatures, backends[0], "backend")
    return points


# -------------------------------------------------------------- kernel sweep


@dataclass(frozen=True, slots=True)
class KernelPoint:
    """One clustering-kernel sample of the measured wall-clock sweep.

    ``wall_seconds`` is real measured wall-clock time (like
    :class:`BackendPoint`, not the simulated cost model);
    ``speedup_vs_python`` is measured against the ``python`` reference
    row, which every kernel sweep must therefore include.
    """

    kernel: str
    workload: str
    wall_seconds: float
    snapshots: int
    clusters: int
    patterns: int
    speedup_vs_python: float = 1.0


def _require_python_reference(kernels: tuple[str, ...]) -> None:
    """Kernel sweeps report ``speedup_vs_python``, so the reference row
    must be part of the sweep for the field to mean what it says."""
    if "python" not in kernels:
        raise ValueError(
            "kernel sweeps measure speedup_vs_python and must include "
            f"the 'python' reference kernel, got {kernels!r}"
        )


def run_kernel_clustering_comparison(
    dataset: TrajectoryDataset,
    epsilon_pct: float,
    grid_pct: float,
    min_pts: int,
    kernels: tuple[str, ...] | None = None,
) -> list[KernelPoint]:
    """Clustering-only kernel sweep over a Fig. 10-style workload.

    ``kernels=None`` sweeps every registered, available clustering
    kernel (the ``python`` reference first).  Runs the RJC clustering
    phase snapshot by snapshot under each kernel strategy and measures
    wall-clock time.  Raises :class:`RuntimeError` if any two kernels
    disagree on any snapshot's cluster set — identical clusters are part
    of the kernel contract, and a speedup over a different answer would
    be meaningless.
    """
    if kernels is None:
        kernels = registered_strategy_names(
            "clustering_kernel", reference="python"
        )
    _require_python_reference(kernels)
    epsilon = dataset.resolve_percentage(epsilon_pct)
    cell_width = dataset.resolve_percentage(grid_pct)
    snapshots = list(dataset.snapshots())
    outcomes: dict[str, list] = {}
    measured: list[tuple[str, float, int]] = []
    for name in kernels:
        clusterer = RJCClusterer(
            ClusteringConfig(
                epsilon=epsilon,
                min_pts=min_pts,
                cell_width=cell_width,
                kernel=name,
            )
        )
        started = _time.perf_counter()
        clustered = [clusterer.cluster(snapshot) for snapshot in snapshots]
        wall = _time.perf_counter() - started
        outcomes[name] = [
            (snap.time, tuple(sorted(snap.clusters.items())))
            for snap in clustered
        ]
        measured.append(
            (name, wall, sum(len(snap.clusters) for snap in clustered))
        )
    baseline_wall = dict((name, wall) for name, wall, _ in measured)["python"]
    points = [
        KernelPoint(
            kernel=name,
            workload="clustering",
            wall_seconds=wall,
            snapshots=len(snapshots),
            clusters=clusters,
            patterns=0,
            speedup_vs_python=baseline_wall / wall if wall > 0 else 1.0,
        )
        for name, wall, clusters in measured
    ]
    reference = outcomes[kernels[0]]
    for name, outcome in outcomes.items():
        if outcome != reference:
            raise RuntimeError(
                f"kernel {name!r} produced different cluster sets than "
                f"{kernels[0]!r} on the same snapshots"
            )
    return points


def _run_pipeline_kernel_sweep(
    dataset: TrajectoryDataset,
    config: ICPEConfig,
    kernels: tuple[str, ...],
    select_kernel,
    axis: str,
) -> list[KernelPoint]:
    """Shared full-pipeline sweep over one kernel strategy axis.

    ``select_kernel(config, name)`` returns the config running under the
    named strategy; ``axis`` labels the strategy in error messages.  The
    ``python`` reference row is required (it anchors the speedups) and
    every variant must reproduce the reference pattern set.
    """
    _require_python_reference(kernels)
    signatures: dict[str, frozenset] = {}
    runs: list[tuple[str, float, object]] = []
    for name in kernels:
        pipeline, wall = _timed_pipeline_run(
            dataset, select_kernel(config, name)
        )
        signatures[name] = _pattern_signature(pipeline)
        runs.append((name, wall, pipeline))
    baseline_wall = dict((name, wall) for name, wall, _ in runs)["python"]
    points = [
        KernelPoint(
            kernel=name,
            workload=f"icpe/{pipeline.backend_name}",
            wall_seconds=wall,
            snapshots=pipeline.meter.snapshots,
            clusters=pipeline.clusters_formed,
            patterns=len(pipeline.collector),
            speedup_vs_python=baseline_wall / wall if wall > 0 else 1.0,
        )
        for name, wall, pipeline in runs
    ]
    _require_equal_signatures(signatures, kernels[0], axis)
    return points


def run_kernel_comparison(
    dataset: TrajectoryDataset,
    config: ICPEConfig,
    kernels: tuple[str, ...] | None = None,
) -> list[KernelPoint]:
    """Full-pipeline kernel sweep: measured wall clock + pattern equality.

    ``kernels=None`` sweeps every registered, available clustering
    kernel (reference first).  Runs the complete ICPE detection pipeline
    (whatever backend ``config`` selects) once per kernel strategy.
    Raises :class:`RuntimeError` if any two kernels disagree on the
    detected pattern set.
    """
    if kernels is None:
        kernels = registered_strategy_names(
            "clustering_kernel", reference="python"
        )
    return _run_pipeline_kernel_sweep(
        dataset, config, kernels, ICPEConfig.with_kernel, "kernel"
    )


# ------------------------------------------------------- enum kernel sweep


def run_enum_kernel_comparison(
    dataset: TrajectoryDataset,
    config: ICPEConfig,
    kernels: tuple[str, ...] | None = None,
) -> list[KernelPoint]:
    """Full-pipeline enumeration-kernel sweep: wall clock + equality.

    ``kernels=None`` sweeps every registered, available enumeration
    kernel (reference first).  Runs the complete ICPE detection pipeline
    (whatever backend and clustering kernel ``config`` selects) once per
    enumeration-kernel strategy.  Raises :class:`RuntimeError` if any
    two kernels disagree on the detected pattern set.
    """
    if kernels is None:
        kernels = registered_strategy_names(
            "enumeration_kernel", reference="python"
        )
    return _run_pipeline_kernel_sweep(
        dataset,
        config,
        kernels,
        ICPEConfig.with_enum_kernel,
        "enumeration kernel",
    )


def run_enum_kernel_enumeration_comparison(
    cluster_snapshots: list[ClusterSnapshot],
    constraints: PatternConstraints,
    enumerator: str,
    kernels: tuple[str, ...] | None = None,
    vba_candidate_retention: int | None = None,
) -> list[KernelPoint]:
    """Enumeration-only kernel sweep over a pre-clustered stream.

    ``kernels=None`` sweeps every registered, available enumeration
    kernel (reference first).  The enumeration-phase counterpart of
    :func:`run_kernel_clustering_comparison`: clustering is taken out of
    the measurement (Section 7.3's methodology) and each kernel strategy
    hosts the whole anchor population in a single subtask — the regime a
    batched kernel is built for.  Raises :class:`RuntimeError` if any two
    kernels disagree on the detected pattern set.
    """
    from repro.enumeration.kernels import make_enumeration_kernel

    if kernels is None:
        kernels = registered_strategy_names(
            "enumeration_kernel", reference="python"
        )
    _require_python_reference(kernels)
    measured: list[tuple[str, float, int]] = []
    signatures: dict[str, frozenset] = {}
    for name in kernels:
        kernel = make_enumeration_kernel(
            name,
            enumerator=enumerator,
            constraints=constraints,
            vba_candidate_retention=vba_candidate_retention,
        )
        router = PartitionRouter(constraints.m)
        collector = PatternCollector()
        started = _time.perf_counter()
        for snapshot in cluster_snapshots:
            collector.offer(
                snapshot.time,
                kernel.on_snapshot(snapshot.time, list(router.route(snapshot))),
            )
        final_time = cluster_snapshots[-1].time if cluster_snapshots else 0
        collector.offer(final_time, kernel.finish())
        wall = _time.perf_counter() - started
        signatures[name] = frozenset(
            (pattern.objects, tuple(pattern.times.times))
            for pattern in collector.patterns()
        )
        measured.append((name, wall, len(collector)))
    baseline_wall = dict((name, wall) for name, wall, _ in measured)["python"]
    points = [
        KernelPoint(
            kernel=name,
            workload=f"enum/{enumerator}",
            wall_seconds=wall,
            snapshots=len(cluster_snapshots),
            clusters=sum(len(s.clusters) for s in cluster_snapshots),
            patterns=patterns,
            speedup_vs_python=baseline_wall / wall if wall > 0 else 1.0,
        )
        for name, wall, patterns in measured
    ]
    _require_equal_signatures(signatures, kernels[0], "enumeration kernel")
    return points


# --------------------------------------------------------------- enumeration


def precluster(
    dataset: TrajectoryDataset,
    epsilon_pct: float,
    grid_pct: float,
    min_pts: int,
) -> list[ClusterSnapshot]:
    """Cluster a dataset once (input for enumeration-only sweeps)."""
    epsilon = dataset.resolve_percentage(epsilon_pct)
    cell_width = dataset.resolve_percentage(grid_pct)
    clusterer = RJCClusterer(
        ClusteringConfig(epsilon=epsilon, min_pts=min_pts, cell_width=cell_width)
    )
    return [clusterer.cluster(snapshot) for snapshot in dataset.snapshots()]


def run_enumeration_point(
    cluster_snapshots: list[ClusterSnapshot],
    constraints: PatternConstraints,
    method: str,
    parameter: str,
    value: int,
    ba_max_partition_size: int = 18,
) -> EnumerationPoint:
    """Measure one enumerator over a pre-clustered stream (Fig. 15)."""
    factories = {
        "B": lambda a: BAEnumerator(
            a, constraints, max_partition_size=ba_max_partition_size
        ),
        "F": lambda a: FBAEnumerator(a, constraints),
        "V": lambda a: VBAEnumerator(a, constraints),
    }
    factory = factories[method]
    router = PartitionRouter(constraints.m)
    enumerators: dict[int, object] = {}
    collector = PatternCollector()
    per_snapshot: list[float] = []
    try:
        for snapshot in cluster_snapshots:
            t0 = _time.perf_counter()
            for anchor, members in router.route(snapshot):
                enumerator = enumerators.get(anchor)
                if enumerator is None:
                    enumerator = enumerators[anchor] = factory(anchor)
                collector.offer(
                    snapshot.time, enumerator.on_partition(snapshot.time, members)
                )
            per_snapshot.append(_time.perf_counter() - t0)
        t0 = _time.perf_counter()
        final_time = cluster_snapshots[-1].time if cluster_snapshots else 0
        for anchor in sorted(enumerators):
            collector.offer(final_time, enumerators[anchor].finish())
        per_snapshot.append(_time.perf_counter() - t0)
    except PartitionTooLargeError:
        return EnumerationPoint(
            method=method,
            parameter=parameter,
            value=value,
            avg_latency_ms=float("nan"),
            throughput_tps=float("nan"),
            patterns=0,
            completed=False,
        )
    total = sum(per_snapshot)
    count = max(1, len(cluster_snapshots))
    return EnumerationPoint(
        method=method,
        parameter=parameter,
        value=value,
        avg_latency_ms=1000.0 * total / count,
        throughput_tps=count / total if total > 0 else 0.0,
        patterns=len(collector),
        avg_delay_snapshots=average_detection_delay(
            collector.detections, constraints
        ),
    )
