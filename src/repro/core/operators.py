"""ICPE's dataflow operators (the boxes of Fig. 3 and Fig. 5).

Four stages, mirroring the paper's Flink job:

1. **AllocateOperator** — GridAllocate: each location becomes one data
   object plus Lemma-1 query objects (keyed by trajectory id upstream).
2. **QueryOperator** — GridQuery: keyed by grid cell; per snapshot, each
   cell runs the Lemma-2 query-during-build join and emits neighbour pairs.
3. **ClusterOperator** — GridSync + DBSCAN + id-based partitioning: single
   subtask collects the neighbour stream, forms the cluster snapshot, and
   emits ``(time, anchor, members)`` partition records (Lemma 3 applied).
4. **EnumerateOperator** — keyed by anchor id; hosts one BA/FBA/VBA state
   machine per anchor and emits co-movement patterns.

Two stages have batched kernel variants selected by configuration:
:class:`KernelClusterOperator` collapses allocate/query/cluster into one
vectorized clustering stage, and :class:`BatchedEnumerateOperator` runs a
whole enumerate subtask through a batched enumeration kernel.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.enumeration.base import AnchorEnumerator
from repro.enumeration.kernels.base import EnumerationKernel
from repro.enumeration.kernels.python_ref import anchor_enumerator_factory
from repro.enumeration.partition import id_partitions
from repro.cluster.dbscan import dbscan_from_pairs
from repro.index.grid import GridKey
from repro.index.gridobject import GridObject
from repro.join.allocate import allocate_location
from repro.join.query import CellJoiner
from repro.model.batch import SnapshotBatch
from repro.model.snapshot import ClusterSnapshot
from repro.streaming.dataflow import Operator

PartitionRecord = tuple[int, int, frozenset[int]]  # (time, anchor, members)


class AllocateOperator(Operator):
    """GridAllocate (Algorithm 1) over ``(oid, x, y)`` location elements."""

    def __init__(self, cell_width: float, epsilon: float, lemma1: bool = True):
        self.cell_width = cell_width
        self.epsilon = epsilon
        self.lemma1 = lemma1

    def process(self, element: tuple[int, float, float]) -> Iterable[GridObject]:
        """Replicate one location into its grid objects (Algorithm 1)."""
        oid, x, y = element
        yield from allocate_location(
            oid, x, y, self.cell_width, self.epsilon, lemma1=self.lemma1
        )


class QueryOperator(Operator):
    """GridQuery (Algorithm 2): per-cell join inside one keyed subtask.

    One subtask hosts many cells (hash routing); GridObjects are buffered
    per cell during the snapshot and joined at the end-of-batch trigger,
    at which point the per-snapshot GR-index fragments are discarded —
    matching the paper's build-per-snapshot, no-maintenance design.
    """

    def __init__(self, joiner: CellJoiner):
        self.joiner = joiner
        self._cells: dict[GridKey, list[GridObject]] = {}

    def process(self, element: GridObject) -> Iterable[Any]:
        """Buffer a grid object under its cell until the snapshot trigger."""
        self._cells.setdefault(element.key, []).append(element)
        return ()

    def end_batch(self, ctx: Any) -> Iterable[tuple[int, int]]:
        """Join every buffered cell (Algorithm 2) and emit neighbour pairs."""
        pairs: list[tuple[int, int]] = []
        for key in sorted(self._cells):
            pairs.extend(self.joiner.join(self._cells[key]))
        self._cells.clear()
        return pairs

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: per-snapshot GR-index fragments buffered."""
        return {"buffered_cells": len(self._cells)}


class ClusterOperator(Operator):
    """GridSync + DBSCAN + id-based partitioning (single collecting subtask)."""

    def __init__(self, min_pts: int, significance: int, dedup: bool = False):
        self.min_pts = min_pts
        self.significance = significance
        self.dedup = dedup
        self._pairs: list[tuple[int, int]] = []
        self.last_cluster_snapshot: ClusterSnapshot | None = None
        self.clusters_formed = 0
        self.cluster_size_sum = 0

    def process(self, element: tuple[int, int]) -> Iterable[Any]:
        """Collect one neighbour pair (the GridSync role)."""
        self._pairs.append(element)
        return ()

    def end_batch(self, ctx: Any) -> Iterable[PartitionRecord]:
        """DBSCAN the collected pairs and emit id-based partition records."""
        time = int(ctx)
        pairs = set(self._pairs) if self.dedup else self._pairs
        oids = {oid for pair in pairs for oid in pair}
        result = dbscan_from_pairs(oids, pairs, self.min_pts)
        self._pairs.clear()
        snapshot = result.to_snapshot(time)
        self._account(snapshot)
        return [
            (time, anchor, members)
            for anchor, members in sorted(
                id_partitions(snapshot, self.significance).items()
            )
        ]

    def _account(self, snapshot: ClusterSnapshot) -> None:
        """Fold one snapshot into the bounded cluster aggregates.

        Counts and a size sum replace the old unbounded per-cluster size
        list: ``average_cluster_size`` only ever needed the ratio, and a
        never-ending session must not grow a list per snapshot.
        """
        self.last_cluster_snapshot = snapshot
        self.clusters_formed += len(snapshot.clusters)
        self.cluster_size_sum += sum(
            len(members) for members in snapshot.clusters.values()
        )

    def snapshot_state(self) -> dict:
        """Cluster aggregates plus the last emitted cluster snapshot."""
        return {
            "clusters_formed": self.clusters_formed,
            "cluster_size_sum": self.cluster_size_sum,
            "last_snapshot": self.last_cluster_snapshot,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self.clusters_formed = payload["clusters_formed"]
        self.cluster_size_sum = payload["cluster_size_sum"]
        self.last_cluster_snapshot = payload["last_snapshot"]
        self._pairs.clear()

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: buffered pairs and lifetime cluster counts."""
        return {
            "buffered_pairs": len(self._pairs),
            "clusters_formed": self.clusters_formed,
        }


class KernelClusterOperator(Operator):
    """Whole-snapshot clustering through a vectorized kernel strategy.

    Replaces the three-stage GridAllocate -> GridQuery -> GridSync/DBSCAN
    chain when a vectorized kernel (e.g. ``numpy``) is selected: the single
    subtask buffers the snapshot's raw ``(oid, x, y)`` locations and, at
    the snapshot trigger, runs the kernel over packed arrays — grid
    bucketing, the epsilon join and the DBSCAN labeling all happen inside
    the kernel.  It emits exactly the same id-based partition records as
    :class:`ClusterOperator`, so enumeration and every downstream consumer
    are oblivious to the strategy swap.
    """

    def __init__(self, kernel, significance: int):
        self.kernel = kernel
        self.significance = significance
        self._points: list[tuple[int, float, float]] = []
        self._blocks: list[SnapshotBatch] = []
        self.last_cluster_snapshot: ClusterSnapshot | None = None
        self.clusters_formed = 0
        self.cluster_size_sum = 0

    def process(
        self, element: tuple[int, float, float]
    ) -> Iterable[Any]:
        """Buffer one raw location until the snapshot trigger."""
        self._points.append(element)
        return ()

    def process_batch(self, batch: SnapshotBatch) -> Iterable[Any]:
        """Buffer one columnar envelope whole until the snapshot trigger.

        The columnar hand-off of the batch data plane: the envelope's
        columns go to the kernel as arrays at the trigger — no per-point
        tuples are ever materialised on this path.
        """
        self._blocks.append(batch)
        return ()

    def end_batch(self, ctx: Any) -> Iterable[PartitionRecord]:
        """Cluster the buffered snapshot and emit id-based partitions.

        At ``min_pts == 1`` singleton clusters are dropped to match
        :class:`ClusterOperator` exactly: the reference stage derives its
        oid set from the neighbour-pair stream, so an isolated point never
        reaches it — while DBSCAN proper makes every isolated point a
        singleton core at that density.  At ``min_pts >= 2`` singletons
        are *kept*: they are always pair-connected there (a core point
        whose border neighbours all attach to smaller-id cores elsewhere),
        so the reference stage sees and emits them too.
        """
        time = int(ctx)
        result = self._cluster_buffered()
        groups = result.clusters.values()
        if self.kernel.min_pts == 1:
            groups = [members for members in groups if len(members) >= 2]
        snapshot = ClusterSnapshot.from_groups(time, groups)
        self._account(snapshot)
        return [
            (time, anchor, members)
            for anchor, members in sorted(
                id_partitions(snapshot, self.significance).items()
            )
        ]

    _account = ClusterOperator._account

    def snapshot_state(self) -> dict:
        """Cluster aggregates plus the last emitted cluster snapshot."""
        return {
            "clusters_formed": self.clusters_formed,
            "cluster_size_sum": self.cluster_size_sum,
            "last_snapshot": self.last_cluster_snapshot,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self.clusters_formed = payload["clusters_formed"]
        self.cluster_size_sum = payload["cluster_size_sum"]
        self.last_cluster_snapshot = payload["last_snapshot"]
        self._points.clear()
        self._blocks.clear()

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: buffered locations and cluster counts."""
        return {
            "buffered_points": len(self._points),
            "buffered_blocks": len(self._blocks),
            "clusters_formed": self.clusters_formed,
        }

    def _cluster_buffered(self):
        """Cluster whatever the snapshot buffered, preferring columns.

        A snapshot arriving purely as columnar envelopes goes to the
        kernel's ``cluster_columns`` entry (concatenated arrays, no row
        boxing); mixed or row-only buffers fall back to the row form.
        One envelope per snapshot is the normal case — the cluster
        stage is unkeyed, so the exchange passes the batch whole.
        """
        blocks, self._blocks = self._blocks, []
        if blocks and not self._points:
            if len(blocks) == 1:
                block = blocks[0]
                result = self.kernel.cluster_columns(
                    block.oids, block.xs, block.ys
                )
            else:
                result = self.kernel.cluster_columns(
                    *_concat_columns(blocks)
                )
            return result
        points = self._points
        self._points = []
        for block in blocks:
            points.extend(block.rows())
        return self.kernel.cluster(points)


def _concat_columns(blocks: list[SnapshotBatch]):
    """Concatenate the columns of several envelopes (rare multi-block path)."""
    if blocks[0].backing == "numpy":
        import numpy as np

        return (
            np.concatenate([b.oids for b in blocks]),
            np.concatenate([b.xs for b in blocks]),
            np.concatenate([b.ys for b in blocks]),
        )
    oids: list[int] = []
    xs: list[float] = []
    ys: list[float] = []
    for block in blocks:
        oids.extend(block.oids)
        xs.extend(block.xs)
        ys.extend(block.ys)
    return oids, xs, ys


class EnumerateOperator(Operator):
    """Hosts per-anchor enumerators; emits co-movement patterns."""

    def __init__(self, factory: Callable[[int], AnchorEnumerator]):
        self.factory = factory
        self._enumerators: dict[int, AnchorEnumerator] = {}
        self._received: set[int] = set()

    def process(self, element: PartitionRecord) -> Iterable[Any]:
        """Route one partition record to its anchor's enumerator."""
        time, anchor, members = element
        enumerator = self._enumerators.get(anchor)
        if enumerator is None:
            enumerator = self._enumerators[anchor] = self.factory(anchor)
        self._received.add(anchor)
        return enumerator.on_partition(time, members)

    def end_batch(self, ctx: Any) -> Iterable[Any]:
        """Absence tick: anchors with open state but no partition this time."""
        if ctx is None:
            self._received.clear()
            return ()
        time = int(ctx)
        out: list[Any] = []
        for anchor, enumerator in self._enumerators.items():
            if anchor in self._received or enumerator.is_idle():
                continue
            out.extend(enumerator.on_partition(time, frozenset()))
        self._received.clear()
        return out

    def finish(self) -> Iterable[Any]:
        """Flush every hosted enumerator at end of stream."""
        out: list[Any] = []
        for anchor in sorted(self._enumerators):
            out.extend(self._enumerators[anchor].finish())
        return out

    def protected_oids(self) -> frozenset[int]:
        """Union of every hosted enumerator's shed-protected oids."""
        protected: set[int] = set()
        for enumerator in self._enumerators.values():
            protected.update(enumerator.protected_oids())
        return frozenset(protected)

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Sorted concatenation of every hosted enumerator's descriptors."""
        out: list[tuple[int, int, int, int, int]] = []
        for anchor in sorted(self._enumerators):
            out.extend(self._enumerators[anchor].forming_candidates())
        return tuple(sorted(out))

    def snapshot_state(self) -> dict:
        """Per-anchor enumerator payloads, keyed by anchor id."""
        return {
            "anchors": {
                anchor: self._enumerators[anchor].snapshot_state()
                for anchor in sorted(self._enumerators)
            }
        }

    def restore_state(self, payload: dict) -> None:
        """Rebuild each anchor's enumerator through the factory, then
        hand it its captured payload."""
        self._enumerators = {}
        for anchor, sub_payload in payload["anchors"].items():
            enumerator = self.factory(anchor)
            enumerator.restore_state(sub_payload)
            self._enumerators[anchor] = enumerator
        self._received = set()

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: hosted anchors plus summed enumerator metrics."""
        metrics = {"anchors": len(self._enumerators)}
        for enumerator in self._enumerators.values():
            for key, value in enumerator.state_metrics().items():
                metrics[key] = metrics.get(key, 0) + value
        return metrics


class BatchedEnumerateOperator(Operator):
    """Whole-subtask enumeration through a batched kernel strategy.

    Replaces :class:`EnumerateOperator` when a vectorized enumeration
    kernel (e.g. ``numpy``) is selected: the subtask buffers its
    snapshot's partition records and, at the snapshot trigger, hands them
    to the kernel in one batch — membership bitmaps, candidate screening
    and Lemma-7 closing all happen inside the kernel across every hosted
    anchor at once.  Per anchor, the emitted pattern stream is identical
    to the reference operator's (shared exact predicates and combination
    growth); only the interleaving across anchors within one snapshot may
    differ, which is output-invariant because a pattern's smallest object
    id is its anchor.
    """

    def __init__(self, kernel: EnumerationKernel):
        self.kernel = kernel
        self._records: list[PartitionRecord] = []

    def process(self, element: PartitionRecord) -> Iterable[Any]:
        """Buffer one partition record until the snapshot trigger."""
        self._records.append(element)
        return ()

    def end_batch(self, ctx: Any) -> Iterable[Any]:
        """Hand the snapshot's records to the kernel in one batch.

        A ctx-less trigger keeps the buffer intact: the records belong
        to a snapshot whose time has not been announced yet, and
        dropping them would silently diverge from the reference
        operator (which processes records eagerly).
        """
        if ctx is None:
            return ()
        records, self._records = self._records, []
        return self.kernel.on_snapshot(
            int(ctx), [(anchor, members) for _time, anchor, members in records]
        )

    def finish(self) -> Iterable[Any]:
        """Flush the kernel's state at end of stream."""
        return self.kernel.finish()

    def protected_oids(self) -> frozenset[int]:
        """Shed-protected oids, delegated to the enumeration kernel."""
        return self.kernel.protected_oids()

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Forming descriptors, delegated to the enumeration kernel."""
        return self.kernel.forming_candidates()

    def snapshot_state(self) -> dict:
        """The kernel's payload plus any records buffered pre-trigger."""
        return {
            "kernel": self.kernel.snapshot_state(),
            "records": list(self._records),
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self.kernel.restore_state(payload["kernel"])
        self._records = list(payload["records"])

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: kernel metrics plus the pre-trigger buffer."""
        metrics = dict(self.kernel.state_metrics())
        metrics["buffered_records"] = len(self._records)
        return metrics


def make_enumerator_factory(
    config,
) -> Callable[[int], AnchorEnumerator]:
    """Build the per-anchor enumerator factory from an :class:`ICPEConfig`."""
    return anchor_enumerator_factory(
        config.enumerator,
        config.constraints,
        ba_max_partition_size=config.ba_max_partition_size,
        vba_candidate_retention=config.vba_candidate_retention,
    )
