"""The ICPE pipeline: Indexed Clustering and Pattern Enumeration (Fig. 3).

``ICPEPipeline`` executes the four-stage topology per snapshot, collecting
per-stage busy times, the simulated distributed latency/throughput (via
the cluster cost model) and the deduplicated pattern results.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.config import ICPEConfig
from repro.core.operators import (
    AllocateOperator,
    ClusterOperator,
    EnumerateOperator,
    QueryOperator,
    make_enumerator_factory,
)
from repro.enumeration.base import PatternCollector
from repro.join.query import CellJoiner
from repro.model.pattern import CoMovementPattern
from repro.model.snapshot import Snapshot
from repro.streaming.cluster import ClusterModel
from repro.streaming.dataflow import (
    KeyedStage,
    StageWork,
    Topology,
    finish_all,
    run_unit,
)
from repro.streaming.metrics import LatencyThroughputMeter, SnapshotTiming


class ICPEPipeline:
    """Snapshot-in, patterns-out execution of the ICPE job graph."""

    def __init__(self, config: ICPEConfig, keep_works: bool = False):
        """``keep_works``: retain every snapshot's per-stage busy times so
        the run can be re-scored under different cluster models (the Fig. 14
        node sweep re-uses one execution for all N)."""
        self.config = config
        self.collector = PatternCollector()
        self.meter = LatencyThroughputMeter()
        self.keep_works = keep_works
        self.works_history: list[list[StageWork]] = []
        self._cluster_model: ClusterModel = config.cluster
        self._runtimes = self._build_topology().build()
        self._finished = False
        self._last_time: int | None = None
        # Exposed for the harness: average cluster size (Figs. 12-13).
        self._cluster_operator: ClusterOperator | None = None
        for runtime in self._runtimes:
            for subtask in runtime.subtasks:
                if isinstance(subtask, ClusterOperator):
                    self._cluster_operator = subtask

    def _build_topology(self) -> Topology:
        cfg = self.config
        joiner_factory = lambda: QueryOperator(
            CellJoiner(
                epsilon=cfg.epsilon,
                metric=cfg.clustering_config().join_config().metric,
                lemma2=cfg.lemma2,
                local_index=cfg.local_index,
                lemma1=cfg.lemma1,
                rtree_fanout=cfg.rtree_fanout,
            )
        )
        enumerator_factory = make_enumerator_factory(cfg)
        topology = Topology()
        topology.add(
            KeyedStage(
                name="allocate",
                operator_factory=lambda: AllocateOperator(
                    cfg.cell_width, cfg.epsilon, lemma1=cfg.lemma1
                ),
                parallelism=cfg.allocate_parallelism,
                key_fn=lambda element: element[0],  # trajectory id
            )
        )
        topology.add(
            KeyedStage(
                name="query",
                operator_factory=joiner_factory,
                parallelism=cfg.query_parallelism,
                key_fn=lambda go: go.key,  # grid cell
            )
        )
        topology.add(
            KeyedStage(
                name="cluster",
                operator_factory=lambda: ClusterOperator(
                    min_pts=cfg.min_pts,
                    significance=cfg.constraints.m,
                    dedup=not (cfg.lemma1 and cfg.lemma2),
                ),
                parallelism=1,
                key_fn=None,
            )
        )
        topology.add(
            KeyedStage(
                name="enumerate",
                operator_factory=lambda: EnumerateOperator(enumerator_factory),
                parallelism=cfg.enumerate_parallelism,
                key_fn=lambda record: record[1],  # anchor id
            )
        )
        return topology

    # ------------------------------------------------------------------ drive

    def process_snapshot(self, snapshot: Snapshot) -> list[CoMovementPattern]:
        """Run one snapshot through the pipeline; returns *new* patterns."""
        if self._finished:
            raise RuntimeError("pipeline already finished")
        if self._last_time is not None and snapshot.time <= self._last_time:
            raise ValueError(
                f"snapshots must arrive in ascending time order: "
                f"{snapshot.time} after {self._last_time}"
            )
        self._last_time = snapshot.time
        outputs, works = run_unit(
            self._runtimes, snapshot.points(), ctx=snapshot.time
        )
        patterns = [p for p in outputs if isinstance(p, CoMovementPattern)]
        fresh_count = self.collector.offer(snapshot.time, patterns)
        self._record_timing(snapshot, works, fresh_count)
        return self.collector.patterns()[-fresh_count:] if fresh_count else []

    def finish(self) -> list[CoMovementPattern]:
        """End of stream: flush windows and open bit strings."""
        if self._finished:
            return []
        self._finished = True
        outputs, _works = finish_all(self._runtimes)
        patterns = [p for p in outputs if isinstance(p, CoMovementPattern)]
        time = self._last_time if self._last_time is not None else 0
        fresh_count = self.collector.offer(time, patterns)
        return self.collector.patterns()[-fresh_count:] if fresh_count else []

    def run(self, snapshots: Iterable[Snapshot]) -> PatternCollector:
        """Convenience: process a bounded snapshot stream to completion."""
        for snapshot in snapshots:
            self.process_snapshot(snapshot)
        self.finish()
        return self.collector

    # ------------------------------------------------------------------ stats

    def _record_timing(
        self, snapshot: Snapshot, works: list[StageWork], fresh: int
    ) -> None:
        model = self._cluster_model
        if self.keep_works:
            self.works_history.append(works)
        self.meter.record(
            SnapshotTiming(
                time=snapshot.time,
                latency_seconds=model.snapshot_latency_seconds(works),
                bottleneck_seconds=model.bottleneck_seconds(works),
                locations=len(snapshot),
                patterns_emitted=fresh,
            )
        )

    def rescore(self, model: ClusterModel) -> LatencyThroughputMeter:
        """Re-derive metrics under a different cluster model.

        Requires ``keep_works=True``; used by the Fig. 14 node sweep so a
        single execution yields the whole N series.
        """
        if not self.keep_works:
            raise RuntimeError("pipeline was not constructed with keep_works")
        meter = LatencyThroughputMeter()
        for index, works in enumerate(self.works_history):
            original = self.meter.timings[index]
            meter.record(
                SnapshotTiming(
                    time=original.time,
                    latency_seconds=model.snapshot_latency_seconds(works),
                    bottleneck_seconds=model.bottleneck_seconds(works),
                    locations=original.locations,
                    patterns_emitted=original.patterns_emitted,
                )
            )
        return meter

    def average_cluster_size(self) -> float:
        """Mean size of the clusters formed so far (Figs. 12-13 curves)."""
        operator = self._cluster_operator
        if operator is None or not operator.cluster_sizes:
            return 0.0
        return sum(operator.cluster_sizes) / len(operator.cluster_sizes)

    @property
    def patterns(self) -> list[CoMovementPattern]:
        """Every distinct pattern detected so far."""
        return self.collector.patterns()
