"""The ICPE pipeline: Indexed Clustering and Pattern Enumeration (Fig. 3).

``ICPEPipeline`` describes the four-stage topology through the fluent
:class:`~repro.streaming.environment.StreamEnvironment` builder — the same
path any user dataflow takes — compiles it onto the configured execution
backend (serial, parallel or process), and executes it per snapshot,
collecting
per-stage busy times, the simulated distributed latency/throughput (via
the cluster cost model) and the deduplicated pattern results.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.config import ICPEConfig
from repro.core.operators import (
    AllocateOperator,
    BatchedEnumerateOperator,
    ClusterOperator,
    EnumerateOperator,
    KernelClusterOperator,
    QueryOperator,
    make_enumerator_factory,
)
from repro.enumeration.base import PatternCollector
from repro.enumeration.kernels import make_enumeration_kernel
from repro.join.query import CellJoiner
from repro.kernels import make_kernel
from repro.model.batch import SnapshotBatch
from repro.model.pattern import CoMovementPattern
from repro.model.snapshot import ClusterSnapshot, Snapshot
from repro.streaming.cluster import ClusterModel
from repro.streaming.dataflow import SpanRecord, StageWork
from repro.state.codec import decode_payload, digest_of
from repro.streaming.environment import DataStream, Job, StreamEnvironment
from repro.streaming.metrics import LatencyThroughputMeter, SnapshotTiming
from repro.streaming.runtime import GraphSpec, resolve_backend

#: Cluster-state view when no cluster aggregates are available (yet).
_EMPTY_CLUSTER_STATE = {
    "clusters_formed": 0,
    "cluster_size_sum": 0,
    "last_snapshot": None,
}


def describe_clustering_stages(
    stream: DataStream,
    *,
    epsilon: float,
    cell_width: float,
    min_pts: int,
    significance: int,
    metric,
    lemma1: bool,
    lemma2: bool,
    local_index: str,
    dedup: bool,
    allocate_parallelism: int,
    query_parallelism: int,
    rtree_fanout: int = 16,
    kernel: str = "python",
    metric_name: str = "l1",
) -> DataStream:
    """Append the clustering phase of the ICPE job graph to a stream.

    With the default ``python`` kernel, the three reference stages —
    GridAllocate keyed by trajectory id, GridQuery keyed by grid cell, and
    the single-subtask GridSync/DBSCAN collector — are described here
    once, shared by :meth:`ICPEPipeline.build_environment` and the bench
    harness's clustering-only sweeps (Figs. 10-11), so both provably
    execute the same topology.

    With a vectorized kernel (``"numpy"``), the whole phase collapses
    into one :class:`~repro.core.operators.KernelClusterOperator` stage
    that clusters the packed snapshot inside the kernel and emits the
    identical partition records — the strategy swap is invisible to
    enumeration and composes with either execution backend.
    """
    if kernel != "python":
        kernel_name = kernel
        return stream.process(
            lambda: KernelClusterOperator(
                make_kernel(
                    kernel_name,
                    epsilon=epsilon,
                    min_pts=min_pts,
                    cell_width=cell_width,
                    metric_name=metric_name,
                    lemma1=lemma1,
                    lemma2=lemma2,
                    local_index=local_index,
                    rtree_fanout=rtree_fanout,
                ),
                significance=significance,
            ),
            parallelism=1,
            name="cluster",
        )
    joiner_factory = lambda: QueryOperator(
        CellJoiner(
            epsilon=epsilon,
            metric=metric,
            lemma2=lemma2,
            local_index=local_index,
            lemma1=lemma1,
            rtree_fanout=rtree_fanout,
        )
    )
    return (
        stream
        .key_by(lambda element: element[0], name="allocate")  # trajectory id
        .process(
            lambda: AllocateOperator(cell_width, epsilon, lemma1=lemma1),
            parallelism=allocate_parallelism,
        )
        .key_by(lambda go: go.key, name="query")  # grid cell
        .process(joiner_factory, parallelism=query_parallelism)
        .process(
            lambda: ClusterOperator(
                min_pts=min_pts, significance=significance, dedup=dedup
            ),
            parallelism=1,
            name="cluster",
        )
    )


def describe_enumeration_stage(
    stream: DataStream, config: ICPEConfig
) -> DataStream:
    """Append the enumeration phase (PED) of the ICPE job graph.

    With the default ``python`` enumeration kernel, the stage hosts one
    BA / FBA / VBA state machine per anchor
    (:class:`~repro.core.operators.EnumerateOperator`); with a vectorized
    kernel (``"numpy"``), the whole subtask runs through one batched
    :class:`~repro.core.operators.BatchedEnumerateOperator` that packs
    every hosted anchor's membership bit strings into contiguous arrays —
    emitting the identical per-anchor pattern stream either way.  The
    keyed exchange (anchor id) and the stage parallelism are the same for
    both strategies, so the kernel choice composes with either execution
    backend and either clustering kernel.
    """
    keyed = stream.key_by(lambda record: record[1], name="enumerate")
    if config.enumeration_kernel == "python":
        enumerator_factory = make_enumerator_factory(config)
        return keyed.process(
            lambda: EnumerateOperator(enumerator_factory),
            parallelism=config.enumerate_parallelism,
        )
    return keyed.process(
        lambda: BatchedEnumerateOperator(
            make_enumeration_kernel(
                config.enumeration_kernel,
                enumerator=config.enumerator,
                constraints=config.constraints,
                ba_max_partition_size=config.ba_max_partition_size,
                vba_candidate_retention=config.vba_candidate_retention,
            )
        ),
        parallelism=config.enumerate_parallelism,
    )


def build_icpe_graph(config: ICPEConfig):
    """The ICPE job graph for a config (module-level, hence picklable).

    The builder behind the :class:`~repro.streaming.runtime.GraphSpec`
    every pipeline binds to its backend: process-isolated backends pickle
    ``(build_icpe_graph, (config,))`` to each worker, which calls it after
    spawn to instantiate its own operator state — the config is a frozen
    plain-data dataclass, so the spec crosses the process boundary even
    though the stage factories themselves are closures.
    """
    return ICPEPipeline.build_environment(config).graph()


class ICPEPipeline:
    """Snapshot-in, patterns-out execution of the ICPE job graph."""

    def __init__(self, config: ICPEConfig, keep_works: bool = False):
        """``keep_works``: retain every snapshot's per-stage busy times so
        the run can be re-scored under different cluster models (the Fig. 14
        node sweep re-uses one execution for all N)."""
        self.config = config
        self.collector = PatternCollector()
        self.meter = LatencyThroughputMeter()
        self.keep_works = keep_works
        self.works_history: list[list[StageWork]] = []
        self._cluster_model: ClusterModel = config.cluster
        self._backend = resolve_backend(
            config.backend, max_workers=config.parallel_workers
        )
        self._job: Job = self.build_environment(config).compile(
            backend=self._backend,
            graph_spec=GraphSpec(build_icpe_graph, (config,)),
        )
        self._runtimes = self._job.runtimes
        self._finished = False
        self._last_time: int | None = None
        #: Incremental-capture cache: last seen digest and encoded payload
        #: per (stage, subtask) — unchanged operators reuse these bytes.
        self._state_digests: dict[tuple[str, int], str] = {}
        self._state_payloads: dict[tuple[str, int], bytes] = {}
        #: Cluster-state fetch cache for process-isolated backends,
        #: keyed on the snapshot count at fetch time.
        self._cluster_state_cache: tuple[int, dict] | None = None
        #: Protected-set fetch cache (load shedding), same keying.
        self._protected_cache: tuple[int, frozenset[int]] | None = None
        #: Forming-candidate fetch cache (pattern prediction), same keying.
        self._forming_cache: tuple[int, tuple] | None = None
        #: Per-stage busy times of the most recent snapshot, for the
        #: SLO controller's stage sampling.
        self.last_works: list[StageWork] = []
        #: Tracing spans of the most recent unit of work (stage order,
        #: subtask order within each stage — identical on every backend).
        self.last_spans: list[SpanRecord] = []
        self._cluster_final_state: dict | None = None
        # Exposed for the harness: average cluster size (Figs. 12-13).
        self._cluster_operator: ClusterOperator | KernelClusterOperator | None
        self._cluster_operator = None
        for runtime in self._runtimes:
            for subtask in runtime.subtasks:
                if isinstance(subtask, (ClusterOperator, KernelClusterOperator)):
                    self._cluster_operator = subtask

    @staticmethod
    def build_environment(config: ICPEConfig) -> StreamEnvironment:
        """Describe the ICPE job graph (Fig. 3) on a stream environment.

        The four stages — GridAllocate keyed by trajectory id, GridQuery
        keyed by grid cell, the single-subtask GridSync/DBSCAN collector,
        and enumeration keyed by anchor id — are built through the same
        fluent API any user topology uses, so the pipeline and ad-hoc
        environments share one :class:`JobGraph` construction path.
        """
        cfg = config
        env = StreamEnvironment()
        describe_enumeration_stage(
            describe_clustering_stages(
                env.source(),
                epsilon=cfg.epsilon,
                cell_width=cfg.cell_width,
                min_pts=cfg.min_pts,
                significance=cfg.constraints.m,
                metric=cfg.clustering_config().join_config().metric,
                lemma1=cfg.lemma1,
                lemma2=cfg.lemma2,
                local_index=cfg.local_index,
                dedup=not (cfg.lemma1 and cfg.lemma2),
                allocate_parallelism=cfg.allocate_parallelism,
                query_parallelism=cfg.query_parallelism,
                rtree_fanout=cfg.rtree_fanout,
                kernel=cfg.clustering_kernel,
                metric_name=cfg.metric_name,
            ),
            cfg,
        )
        return env

    # ------------------------------------------------------------------ drive

    def process_snapshot(
        self, snapshot: Snapshot | SnapshotBatch
    ) -> list[CoMovementPattern]:
        """Run one snapshot through the pipeline; returns *new* patterns.

        Accepts the object form or the columnar
        :class:`~repro.model.batch.SnapshotBatch` of the batch data
        plane; a columnar snapshot enters the job graph as one envelope
        (split per destination by the keyed exchange) when the execution
        backend declares batch-ingest support, and as per-row elements
        otherwise — the pattern output is identical either way.
        """
        if self._finished:
            raise RuntimeError("pipeline already finished")
        if self._last_time is not None and snapshot.time <= self._last_time:
            raise ValueError(
                f"snapshots must arrive in ascending time order: "
                f"{snapshot.time} after {self._last_time}"
            )
        self._last_time = snapshot.time
        if isinstance(snapshot, SnapshotBatch) and getattr(
            self._backend, "supports_batch_ingest", False
        ):
            elements: list = [snapshot]
        else:
            elements = snapshot.points()
        outputs, works = self._job.run(elements, ctx=snapshot.time)
        self.last_spans = self._drain_spans()
        patterns = [p for p in outputs if isinstance(p, CoMovementPattern)]
        fresh_count = self.collector.offer(snapshot.time, patterns)
        self._record_timing(snapshot, works, fresh_count)
        return self.collector.patterns()[-fresh_count:] if fresh_count else []

    def finish(self) -> list[CoMovementPattern]:
        """End of stream: flush windows and open bit strings."""
        if self._finished:
            return []
        self._finished = True
        outputs, _works = self._job.finish()
        self.last_spans = self._drain_spans()
        if getattr(self._backend, "supports_process_isolation", False):
            # The workers are about to go away; keep their final cluster
            # aggregates readable for post-run instrumentation.
            try:
                self._cluster_final_state = self._fetch_cluster_state()
            except RuntimeError:  # pragma: no cover - dead worker
                pass
        self.close()
        patterns = [p for p in outputs if isinstance(p, CoMovementPattern)]
        time = self._last_time if self._last_time is not None else 0
        fresh_count = self.collector.offer(time, patterns)
        return self.collector.patterns()[-fresh_count:] if fresh_count else []

    def close(self) -> None:
        """Release backend resources (the parallel worker pool).

        The pipeline created its backend from the config, so it owns it
        and closes it directly.  Idempotent; called automatically by
        :meth:`finish`, and by the bench harness when a run aborts early.
        """
        self._backend.close()

    def run(self, snapshots: Iterable[Snapshot]) -> PatternCollector:
        """Convenience: process a bounded snapshot stream to completion."""
        for snapshot in snapshots:
            self.process_snapshot(snapshot)
        self.finish()
        return self.collector

    # ------------------------------------------------------------------ stats

    def _drain_spans(self) -> list[SpanRecord]:
        """Collect the unit's spans from every stage, canonically ordered.

        Stage order, then subtask index, with unit spans before finish
        spans.  The parallel backend appends spans in thread-completion
        order and the process backend in worker-reply order; sorting the
        per-stage drain makes the stream identical to the serial
        backend's by construction.
        """
        spans: list[SpanRecord] = []
        for runtime in self._runtimes:
            drained = runtime.drain_spans()
            drained.sort(key=lambda s: (s.subtask, s.kind != "unit"))
            spans.extend(drained)
        return spans

    def _record_timing(
        self, snapshot: Snapshot, works: list[StageWork], fresh: int
    ) -> None:
        model = self._cluster_model
        self.last_works = works
        if self.keep_works:
            self.works_history.append(works)
        self.meter.record(
            SnapshotTiming(
                time=snapshot.time,
                latency_seconds=model.snapshot_latency_seconds(works),
                bottleneck_seconds=model.bottleneck_seconds(works),
                locations=len(snapshot),
                patterns_emitted=fresh,
            )
        )

    def rescore(self, model: ClusterModel) -> LatencyThroughputMeter:
        """Re-derive metrics under a different cluster model.

        Requires ``keep_works=True``; used by the Fig. 14 node sweep so a
        single execution yields the whole N series.
        """
        if not self.keep_works:
            raise RuntimeError("pipeline was not constructed with keep_works")
        meter = LatencyThroughputMeter()
        for index, works in enumerate(self.works_history):
            original = self.meter.timings[index]
            meter.record(
                SnapshotTiming(
                    time=original.time,
                    latency_seconds=model.snapshot_latency_seconds(works),
                    bottleneck_seconds=model.bottleneck_seconds(works),
                    locations=original.locations,
                    patterns_emitted=original.patterns_emitted,
                )
            )
        return meter

    def average_cluster_size(self) -> float:
        """Mean size of the clusters formed so far (Figs. 12-13 curves).

        Works under every backend: in-process backends read the live
        master-side cluster operator; a process-isolated backend fetches
        the owning worker's aggregates through the reply protocol's
        ``state`` command (cached per processed snapshot, final values
        retained past :meth:`finish`).
        """
        state = self._cluster_state()
        if not state["clusters_formed"]:
            return 0.0
        return state["cluster_size_sum"] / state["clusters_formed"]

    @property
    def clusters_formed(self) -> int:
        """Total number of clusters formed across processed snapshots."""
        return self._cluster_state()["clusters_formed"]

    @property
    def job(self) -> Job:
        """The compiled job (graph + backend + runtimes) executing ICPE."""
        return self._job

    @property
    def backend_name(self) -> str:
        """Name of the execution backend running the job graph."""
        return self._backend.name

    @property
    def kernel_name(self) -> str:
        """Name of the snapshot-clustering kernel strategy in use."""
        return self.config.clustering_kernel

    @property
    def enumeration_kernel_name(self) -> str:
        """Name of the pattern-enumeration kernel strategy in use."""
        return self.config.enumeration_kernel

    @property
    def last_cluster_snapshot(self) -> ClusterSnapshot | None:
        """Clusters of the most recently processed snapshot (any backend)."""
        return self._cluster_state()["last_snapshot"]

    @property
    def patterns(self) -> list[CoMovementPattern]:
        """Every distinct pattern detected so far."""
        return self.collector.patterns()

    # ------------------------------------------------------------ cluster state

    def _cluster_state(self) -> dict:
        """The cluster stage's aggregates, wherever the live operator is."""
        if getattr(self._backend, "supports_process_isolation", False):
            if self._finished:
                return self._cluster_final_state or _EMPTY_CLUSTER_STATE
            return self._fetch_cluster_state()
        operator = self._cluster_operator
        if operator is None:
            return _EMPTY_CLUSTER_STATE
        return {
            "clusters_formed": operator.clusters_formed,
            "cluster_size_sum": operator.cluster_size_sum,
            "last_snapshot": operator.last_cluster_snapshot,
        }

    def _fetch_cluster_state(self) -> dict:
        """Fetch the cluster subtask's payload from its owning worker.

        One round-trip per processed snapshot at most: the result is
        cached against the snapshot count, so repeated reads (the convoy
        tracker plus the harness) reuse it.
        """
        marker = self.meter.snapshots
        if (
            self._cluster_state_cache is not None
            and self._cluster_state_cache[0] == marker
        ):
            return self._cluster_state_cache[1]
        runtime = next(
            (r for r in self._runtimes if r.stage.name == "cluster"), None
        )
        if runtime is None:  # pragma: no cover - graph without clustering
            return _EMPTY_CLUSTER_STATE
        state = dict(_EMPTY_CLUSTER_STATE)
        for _index, _digest, data in self._backend.collect_states(runtime):
            payload = decode_payload(data)
            state["clusters_formed"] += payload["clusters_formed"]
            state["cluster_size_sum"] += payload["cluster_size_sum"]
            if payload["last_snapshot"] is not None:
                state["last_snapshot"] = payload["last_snapshot"]
        self._cluster_state_cache = (marker, state)
        return state

    # --------------------------------------------------------------- shedding

    def protected_oids(self) -> frozenset[int]:
        """Oids inside a forming pattern anywhere in the enumeration stage.

        The union over every enumerate subtask of the objects its open
        FBA windows / unclosed VBA bit strings depend on — the records
        the pattern-aware shed policy must not drop.  Works under every
        backend: in-process backends walk the live operator instances,
        the process backend round-trips a ``protected`` command through
        the worker reply protocol.  Cached per processed snapshot (the
        set only changes when a snapshot is processed); empty once the
        pipeline has finished.
        """
        if self._finished:
            return frozenset()
        marker = self.meter.snapshots
        if (
            self._protected_cache is not None
            and self._protected_cache[0] == marker
        ):
            return self._protected_cache[1]
        runtime = next(
            (r for r in self._runtimes if r.stage.name == "enumerate"), None
        )
        protected: frozenset[int] = frozenset()
        if runtime is not None:
            merged: set[int] = set()
            for _index, oids in self._backend.collect_protected(runtime):
                merged.update(oids)
            protected = frozenset(merged)
        self._protected_cache = (marker, protected)
        return protected

    # ------------------------------------------------------------- prediction

    def forming_candidates(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Forming-candidate descriptors across the enumeration stage.

        The sorted concatenation over every enumerate subtask of its
        ``(anchor, oid, start, ones, remaining)`` descriptors (see
        :data:`repro.patterns.base.FormingCandidate`) — the prediction
        scorer's input.  Works under every backend: in-process backends
        walk the live operator instances, the process backend
        round-trips a ``forming`` command through the worker reply
        protocol.  Cached per processed snapshot; empty once the
        pipeline has finished.  Anchors never collide across subtasks,
        so the sorted merge is backend-invariant.
        """
        if self._finished:
            return ()
        marker = self.meter.snapshots
        if (
            self._forming_cache is not None
            and self._forming_cache[0] == marker
        ):
            return self._forming_cache[1]
        runtime = next(
            (r for r in self._runtimes if r.stage.name == "enumerate"), None
        )
        forming: tuple[tuple[int, int, int, int, int], ...] = ()
        if runtime is not None:
            merged: list[tuple[int, int, int, int, int]] = []
            for _index, descriptors in self._backend.collect_forming(runtime):
                merged.extend(descriptors)
            forming = tuple(sorted(merged))
        self._forming_cache = (marker, forming)
        return forming

    # ------------------------------------------------------------- checkpoints

    @property
    def supports_checkpoint(self) -> bool:
        """Whether the configured backend can capture operator state."""
        return bool(getattr(self._backend, "supports_checkpoint", False))

    def collect_operator_states(
        self,
    ) -> tuple[dict[tuple[str, int], bytes], int, int]:
        """Capture every stage's operator state for a checkpoint.

        Incremental: each stateful subtask's payload digest is compared
        against the previous capture, and unchanged operators reuse the
        cached bytes instead of re-serialising (process workers answer
        with the digest only).  Returns ``(states, captured, reused)``
        where ``states`` maps ``(stage_name, subtask_index)`` to encoded
        payload bytes.
        """
        if not self.supports_checkpoint:
            raise RuntimeError(
                f"backend {self._backend.name!r} does not support "
                "checkpointing (supports_checkpoint is False)"
            )
        if self._finished:
            raise RuntimeError("pipeline already finished")
        states: dict[tuple[str, int], bytes] = {}
        captured = reused = 0
        for runtime in self._runtimes:
            stage = runtime.stage.name
            known = {
                index: digest
                for (name, index), digest in self._state_digests.items()
                if name == stage
            }
            for index, digest, data in self._backend.collect_states(
                runtime, known
            ):
                key = (stage, index)
                if data is None:
                    data = self._state_payloads[key]
                    reused += 1
                else:
                    captured += 1
                self._state_digests[key] = digest
                self._state_payloads[key] = data
                states[key] = data
        return states, captured, reused

    def restore_operator_states(
        self, states: dict[tuple[str, int], bytes]
    ) -> None:
        """Restore a checkpoint's operator payloads into the job graph.

        Also seeds the incremental-capture cache, so the first checkpoint
        taken after a restore reuses every still-unchanged payload.
        """
        if not self.supports_checkpoint:
            raise RuntimeError(
                f"backend {self._backend.name!r} does not support "
                "checkpointing (supports_checkpoint is False)"
            )
        by_stage: dict[str, list[tuple[int, bytes]]] = {}
        for (stage, index), data in states.items():
            by_stage.setdefault(stage, []).append((index, data))
        known_stages = {runtime.stage.name for runtime in self._runtimes}
        unknown = sorted(set(by_stage) - known_stages)
        if unknown:
            raise ValueError(
                f"checkpoint carries state for stages {unknown} that are "
                f"not part of this pipeline ({sorted(known_stages)}); was "
                "it taken under a different kernel configuration?"
            )
        for runtime in self._runtimes:
            payloads = by_stage.get(runtime.stage.name)
            if payloads:
                self._backend.restore_states(runtime, sorted(payloads))
        for key, data in states.items():
            self._state_digests[key] = digest_of(data)
            self._state_payloads[key] = data
        self._cluster_state_cache = None
        self._protected_cache = None
        self._forming_cache = None

    def state_metrics(self) -> dict[str, dict[str, int]]:
        """Per-component memory accounting across the whole pipeline.

        One entry per stage (subtask metrics summed), plus the
        master-side collector and meter.  Stage metrics require a
        checkpoint-capable backend and a running job; after
        :meth:`finish` only the master-side components report.
        """
        metrics: dict[str, dict[str, int]] = {}
        if self.supports_checkpoint and not self._finished:
            for runtime in self._runtimes:
                merged: dict[str, int] = {}
                for _index, sub in self._backend.collect_metrics(runtime):
                    for key, value in sub.items():
                        merged[key] = merged.get(key, 0) + value
                if merged:
                    metrics[runtime.stage.name] = merged
        metrics["collector"] = self.collector.state_metrics()
        metrics["meter"] = self.meter.state_metrics()
        return metrics
