"""Online convoy tracking: a live view of currently co-travelling groups.

BA/FBA/VBA report CP(M, K, L, G) patterns after windows complete or bit
strings close.  Applications such as accident-response (the paper's
real-time motivation) also want the *current* groups.  For the strictly
consecutive case (convoy: L = K, G = 1) the intersection-based CMC scheme
of Jeung et al. [17] — the paper's reference for density-based convoys —
maintains exactly the maximal groups alive at each time:

* every cluster of the new snapshot opens a fresh candidate;
* every existing candidate extends by intersecting with each cluster
  (keeping intersections of at least M members);
* dominated candidates (member subset with no longer history) are pruned;
* a candidate that fails to extend expires, and is reported if its
  lifetime reached K.

``ConvoyTracker.active(min_duration)`` exposes the live view; expired and
flushed convoys are emitted as :class:`~repro.model.pattern.CoMovementPattern`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.pattern import CoMovementPattern
from repro.model.snapshot import ClusterSnapshot
from repro.model.timeseq import TimeSequence


@dataclass(frozen=True, slots=True)
class ConvoyCandidate:
    """A group seen in every snapshot of ``[start, end]``."""

    members: frozenset[int]
    start: int
    end: int

    @property
    def duration(self) -> int:
        """Number of consecutive snapshots the group has survived."""
        return self.end - self.start + 1

    def to_pattern(self) -> CoMovementPattern:
        """The candidate as a :class:`CoMovementPattern` over its interval."""
        return CoMovementPattern.of(
            self.members, TimeSequence(range(self.start, self.end + 1))
        )


class ConvoyTracker:
    """Exact online tracking of maximal convoys (CP(M, K, K, 1))."""

    def __init__(self, m: int, k: int):
        if m < 2:
            raise ValueError(f"M must be >= 2, got {m}")
        if k < 1:
            raise ValueError(f"K must be >= 1, got {k}")
        self.m = m
        self.k = k
        self._candidates: list[ConvoyCandidate] = []
        self._last_time: int | None = None

    def on_snapshot(self, snapshot: ClusterSnapshot) -> list[CoMovementPattern]:
        """Consume one cluster snapshot; returns convoys that just ended."""
        if self._last_time is not None and snapshot.time <= self._last_time:
            raise ValueError(
                f"snapshots must be ascending: {snapshot.time} after "
                f"{self._last_time}"
            )
        consecutive = (
            self._last_time is None or snapshot.time == self._last_time + 1
        )
        expired: list[ConvoyCandidate] = []
        if not consecutive:
            # A time jump breaks every open candidate (G = 1).
            expired.extend(self._candidates)
            self._candidates = []
        self._last_time = snapshot.time

        clusters = [
            frozenset(members) for members in snapshot.clusters.values()
        ]
        fresh: list[ConvoyCandidate] = []
        for candidate in self._candidates:
            extended = False
            for cluster in clusters:
                joint = candidate.members & cluster
                if len(joint) >= self.m:
                    fresh.append(
                        ConvoyCandidate(joint, candidate.start, snapshot.time)
                    )
                    if joint == candidate.members:
                        extended = True
            if not extended:
                expired.append(candidate)
        for cluster in clusters:
            if len(cluster) >= self.m:
                fresh.append(
                    ConvoyCandidate(cluster, snapshot.time, snapshot.time)
                )
        self._candidates = _prune_dominated(fresh)
        return self._report(expired)

    def finish(self) -> list[CoMovementPattern]:
        """End of stream: report all qualifying open candidates."""
        out = self._report(self._candidates)
        self._candidates = []
        return out

    def snapshot_state(self) -> dict:
        """Open candidates and the tracker clock as plain data."""
        return {
            "candidates": [
                (tuple(sorted(c.members)), c.start, c.end)
                for c in self._candidates
            ],
            "last_time": self._last_time,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._candidates = [
            ConvoyCandidate(frozenset(members), start, end)
            for members, start, end in payload["candidates"]
        ]
        self._last_time = payload["last_time"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: open convoy candidates."""
        return {"convoy_candidates": len(self._candidates)}

    def active(self, min_duration: int = 1) -> list[ConvoyCandidate]:
        """The live view: open groups with at least ``min_duration`` ticks."""
        return sorted(
            (c for c in self._candidates if c.duration >= min_duration),
            key=lambda c: (-c.duration, sorted(c.members)),
        )

    def _report(self, expired: list[ConvoyCandidate]) -> list[CoMovementPattern]:
        qualifying = [c for c in expired if c.duration >= self.k]
        return [c.to_pattern() for c in _prune_dominated(qualifying)]


def _prune_dominated(candidates: list[ConvoyCandidate]) -> list[ConvoyCandidate]:
    """Drop candidates whose members and lifetime another candidate covers."""
    kept: list[ConvoyCandidate] = []
    ordered = sorted(
        candidates, key=lambda c: (-len(c.members), c.start, -c.end)
    )
    for candidate in ordered:
        dominated = any(
            candidate.members <= other.members
            and other.start <= candidate.start
            and candidate.end <= other.end
            and (
                candidate.members != other.members
                or (other.start, other.end) != (candidate.start, candidate.end)
            )
            for other in kept
        )
        if not dominated:
            kept.append(candidate)
    return kept


def maximal_convoys_offline(
    snapshots: list[ClusterSnapshot], m: int, k: int
) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Reference: maximal convoys by exhaustive enumeration (test oracle).

    A convoy (O, T) is maximal when no other convoy has a superset of
    members over a superset interval.
    """
    from repro.enumeration.oracle import enumerate_all_patterns
    from repro.model.constraints import convoy as convoy_constraints

    raw = enumerate_all_patterns(snapshots, convoy_constraints(m, k))
    entries: list[tuple[frozenset[int], tuple[int, ...]]] = []
    for objects, sequences in raw.items():
        for sequence in sequences:
            entries.append((objects, sequence.times))
    maximal = set()
    for objects, times in entries:
        dominated = any(
            objects <= other_objects
            and set(times) <= set(other_times)
            and (objects, times) != (other_objects, other_times)
            for other_objects, other_times in entries
        )
        if not dominated:
            maximal.add((tuple(sorted(objects)), times))
    return maximal
