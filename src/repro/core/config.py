"""Configuration of the ICPE framework.

Bundles every knob of Table 3 (grid cell width, distance threshold, the
four pattern constraints), the DBSCAN density, the enumerator selection
(B / F / V of Figs. 12-14), ablation switches, and the simulated cluster
shape (N nodes of Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.rjc import ClusteringConfig
from repro.model.constraints import PatternConstraints
from repro.registry import default_registry
from repro.streaming.cluster import ClusterModel


@dataclass(frozen=True, slots=True)
class ICPEConfig:
    """Full configuration of a pattern-detection run.

    Attributes:
        epsilon: DBSCAN / range-join distance threshold.
        cell_width: GR-index grid cell width (``lg``).
        min_pts: DBSCAN density threshold (the paper fixes 10).
        constraints: the CP(M, K, L, G) pattern constraints.
        enumerator: ``"baseline"``, ``"fba"`` or ``"vba"``.
        metric_name: distance metric (paper: L1).
        allocate_parallelism: subtasks of the GridAllocate stage.
        query_parallelism: subtasks of the GridQuery stage (cells are
            hashed onto these, Flink key-group style).
        enumerate_parallelism: subtasks of the enumeration stage (anchor
            trajectories hashed onto these).
        rtree_fanout: local R-tree node capacity.
        lemma1 / lemma2 / local_index: ablation switches (paper: on/rtree).
        max_delay: bounded-delay guarantee for time synchronisation.
        trajectory_ttl: optional bound on time-sync state — a trajectory
            idle for more than this many time units behind the watermark
            is evicted, and a later reappearance is treated as a fresh
            object (None = keep every chain forever).  Must exceed
            ``max_delay``.
        cluster: the simulated cluster (nodes, cores, exchange cost).
        ba_max_partition_size: BA's subset-materialisation cap.
        vba_candidate_retention: optional eviction horizon for VBA's
            global candidate list (None = paper semantics, keep all).
        backend: execution backend running the job graph — ``"serial"``
            (sequential, deterministic, default), ``"parallel"``
            (thread-pool concurrency; identical results, measured
            wall-clock busy times) or ``"process"`` (shared-nothing
            worker processes with shared-memory columnar exchanges;
            identical results, no GIL contention between subtasks).
        parallel_workers: worker-pool size for the parallel and process
            backends (``None`` = one worker per usable core, at least 4).
        clustering_kernel: snapshot-clustering kernel strategy —
            ``"python"`` (the reference object path, default) or
            ``"numpy"`` (vectorized array kernel; identical cluster and
            pattern sets, requires the optional NumPy dependency).
            Composable with either execution backend.
        enumeration_kernel: pattern-enumeration kernel strategy —
            ``"python"`` (reference per-anchor state machines, default)
            or ``"numpy"`` (batched membership bitmaps across every
            anchor of a subtask; identical pattern sets, requires the
            optional NumPy dependency and a bit-compression enumerator,
            i.e. ``fba`` or ``vba``).  Composable with either execution
            backend and either clustering kernel.
        shed_policy: load-shedding policy applied to completed snapshots
            before clustering — ``"none"`` (default, no shedding),
            ``"random"`` (uniform Bernoulli drops) or ``"pattern_aware"``
            (drops only records of objects outside every live partial
            match; see :mod:`repro.shedding`).  Dropping happens after
            time synchronisation so the reassembly chains and the
            bounded-delay watermark are never disturbed.
        shed_rate: target fraction of snapshot records to shed
            (``0 <= rate < 1``).  The starting rate when a latency
            target drives the controller, the fixed rate otherwise.
        shed_seed: seed of the shed policy's drop RNG (deterministic
            shedding per seed; differential tests rely on it).
        target_p99_ms: optional latency SLO — when set, the
            :class:`~repro.shedding.controller.SLOController` adapts the
            shed rate toward this p99 per-snapshot latency with
            hysteresis (``None`` = hold ``shed_rate`` fixed).
        checkpoint_every_records: automatic-checkpoint cadence by record
            count — a session with a checkpoint directory saves a new
            checkpoint once at least this many records have been
            ingested since the last save (and a new watermark exists).
            ``None`` disables the record cadence.
        checkpoint_every_seconds: automatic-checkpoint cadence by wall
            clock — saves once this many seconds have elapsed since the
            last save (and a new watermark exists).  ``None`` disables
            the time cadence.  Both cadences may be set; whichever
            fires first triggers the save.
        pattern_family: the pattern-family axis — ``"strict"`` (default,
            the paper's exact semantics, zero overhead), ``"evolving"``
            (θ-continuous groups with drifting membership, emitting
            ``GroupEvolved`` events; see :mod:`repro.patterns.evolving`)
            or ``"predictive"`` (online confirmation-probability scoring
            of live partial matches, emitting ``PatternForming`` events;
            requires a forming-state enumerator, i.e. ``fba`` / ``vba``;
            see :mod:`repro.patterns.prediction`).
        evolving_theta: Jaccard-continuity threshold θ of the evolving
            family, in ``(0, 1]`` — a live group continues into a
            cluster only when their member Jaccard similarity reaches θ
            (1.0 degenerates to fixed membership).
        prediction_min_probability: emission threshold of the predictive
            family, in ``[0, 1]`` — forming candidates scoring below it
            are not emitted (0.0 emits every reachable candidate).

    Every strategy field (``enumerator``, ``backend``,
    ``clustering_kernel``, ``enumeration_kernel``, ``shed_policy``,
    ``pattern_family``)
    accepts any name
    registered on the plugin registry — built-ins or third-party plugins
    discovered via the ``repro.plugins`` entry-point group — and invalid
    cross-axis combinations are rejected declaratively from the
    registered capability metadata.  For a fluent streaming front end
    over this configuration, see :class:`repro.session.Session`.
    """

    epsilon: float
    cell_width: float
    min_pts: int
    constraints: PatternConstraints
    enumerator: str = "fba"
    metric_name: str = "l1"
    allocate_parallelism: int = 8
    query_parallelism: int = 16
    enumerate_parallelism: int = 16
    rtree_fanout: int = 16
    lemma1: bool = True
    lemma2: bool = True
    local_index: str = "rtree"
    max_delay: int = 0
    trajectory_ttl: int | None = None
    cluster: ClusterModel = field(default_factory=ClusterModel)
    ba_max_partition_size: int = 20
    vba_candidate_retention: int | None = None
    backend: str = "serial"
    parallel_workers: int | None = None
    clustering_kernel: str = "python"
    enumeration_kernel: str = "python"
    shed_policy: str = "none"
    shed_rate: float = 0.0
    shed_seed: int = 0
    target_p99_ms: float | None = None
    checkpoint_every_records: int | None = None
    checkpoint_every_seconds: float | None = None
    pattern_family: str = "strict"
    evolving_theta: float = 0.5
    prediction_min_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive: {self.epsilon}")
        if self.cell_width <= 0:
            raise ValueError(f"cell_width must be positive: {self.cell_width}")
        if self.min_pts < 1:
            raise ValueError(f"min_pts must be >= 1: {self.min_pts}")
        for name in (
            "allocate_parallelism",
            "query_parallelism",
            "enumerate_parallelism",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1: {self.parallel_workers}"
            )
        if self.trajectory_ttl is not None and (
            self.trajectory_ttl <= self.max_delay
        ):
            raise ValueError(
                f"trajectory_ttl must be > max_delay ({self.max_delay}): "
                f"{self.trajectory_ttl}"
            )
        if not 0.0 <= self.shed_rate < 1.0:
            raise ValueError(
                f"shed_rate must be in [0, 1): {self.shed_rate}"
            )
        if self.target_p99_ms is not None and self.target_p99_ms <= 0:
            raise ValueError(
                f"target_p99_ms must be positive: {self.target_p99_ms}"
            )
        if (
            self.checkpoint_every_records is not None
            and self.checkpoint_every_records < 1
        ):
            raise ValueError(
                "checkpoint_every_records must be >= 1: "
                f"{self.checkpoint_every_records}"
            )
        if (
            self.checkpoint_every_seconds is not None
            and self.checkpoint_every_seconds <= 0
        ):
            raise ValueError(
                "checkpoint_every_seconds must be positive: "
                f"{self.checkpoint_every_seconds}"
            )
        if not 0.0 < self.evolving_theta <= 1.0:
            raise ValueError(
                f"evolving_theta must be in (0, 1]: {self.evolving_theta}"
            )
        if not 0.0 <= self.prediction_min_probability <= 1.0:
            raise ValueError(
                "prediction_min_probability must be in [0, 1]: "
                f"{self.prediction_min_probability}"
            )
        # Strategy names and their cross-axis combinations are validated
        # against the plugin registry: unknown names and invalid
        # capability pairs (e.g. a bitmap-batching enumeration kernel
        # with a non-bitmap enumerator) raise ValueError subclasses.
        default_registry().validate_selection(
            backend=self.backend,
            clustering_kernel=self.clustering_kernel,
            enumeration_kernel=self.enumeration_kernel,
            enumerator=self.enumerator,
            shed_policy=self.shed_policy,
            pattern_family=self.pattern_family,
        )

    def clustering_config(self) -> ClusteringConfig:
        """The clustering-phase view of this configuration."""
        return ClusteringConfig(
            epsilon=self.epsilon,
            min_pts=self.min_pts,
            cell_width=self.cell_width,
            metric_name=self.metric_name,
            rtree_fanout=self.rtree_fanout,
            lemma1=self.lemma1,
            lemma2=self.lemma2,
            local_index=self.local_index,
            kernel=self.clustering_kernel,
        )

    def with_nodes(self, n_nodes: int) -> "ICPEConfig":
        """Copy with a different simulated cluster size (Fig. 14 sweeps)."""
        return replace(
            self,
            cluster=replace(self.cluster, n_nodes=n_nodes),
        )

    def with_enumerator(self, enumerator: str) -> "ICPEConfig":
        """Copy with a different enumeration engine."""
        return replace(self, enumerator=enumerator)

    def with_backend(
        self, backend: str, parallel_workers: int | None = None
    ) -> "ICPEConfig":
        """Copy with a different execution backend (and pool size)."""
        return replace(
            self, backend=backend, parallel_workers=parallel_workers
        )

    def with_kernel(self, clustering_kernel: str) -> "ICPEConfig":
        """Copy with a different snapshot-clustering kernel strategy."""
        return replace(self, clustering_kernel=clustering_kernel)

    def with_enum_kernel(self, enumeration_kernel: str) -> "ICPEConfig":
        """Copy with a different pattern-enumeration kernel strategy."""
        return replace(self, enumeration_kernel=enumeration_kernel)

    def with_shedding(
        self,
        shed_policy: str,
        shed_rate: float = 0.0,
        target_p99_ms: float | None = None,
    ) -> "ICPEConfig":
        """Copy with a different load-shedding configuration."""
        return replace(
            self,
            shed_policy=shed_policy,
            shed_rate=shed_rate,
            target_p99_ms=target_p99_ms,
        )

    def with_patterns(
        self,
        pattern_family: str,
        evolving_theta: float = 0.5,
        prediction_min_probability: float = 0.0,
    ) -> "ICPEConfig":
        """Copy with a different pattern-family configuration."""
        return replace(
            self,
            pattern_family=pattern_family,
            evolving_theta=evolving_theta,
            prediction_min_probability=prediction_min_probability,
        )
