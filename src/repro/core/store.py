"""Queryable store of detected patterns.

Downstream applications (future-movement prediction, trajectory
compression, LBS — the paper's Section 1 motivations) need more than an
emission stream: they ask "which groups contain object o?", "which
patterns were active at time t?", "give me only the maximal groups".
``PatternStore`` indexes detections for those queries and merges repeated
witnesses of the same object set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.model.pattern import CoMovementPattern
from repro.model.timeseq import TimeSequence


@dataclass(slots=True)
class StoredPattern:
    """One object set with every witness sequence seen so far."""

    objects: tuple[int, ...]
    witnesses: list[TimeSequence] = field(default_factory=list)
    first_detected_at: int = 0

    @property
    def size(self) -> int:
        """Number of objects in the stored pattern."""
        return len(self.objects)

    @property
    def span(self) -> tuple[int, int]:
        """Earliest and latest witnessed co-travel times."""
        first = min(w[0] for w in self.witnesses)
        last = max(w.last for w in self.witnesses)
        return (first, last)

    def covers_time(self, time: int) -> bool:
        """Whether any witness sequence contains ``time``."""
        return any(time in w.times for w in self.witnesses)


class PatternStore:
    """Indexed collection of detected co-movement patterns."""

    def __init__(self):
        self._by_objects: dict[tuple[int, ...], StoredPattern] = {}
        self._member_index: dict[int, set[tuple[int, ...]]] = {}

    def add(self, detection_time: int, pattern: CoMovementPattern) -> bool:
        """Record one emission; returns True when the object set is new."""
        stored = self._by_objects.get(pattern.objects)
        if stored is None:
            stored = StoredPattern(
                objects=pattern.objects, first_detected_at=detection_time
            )
            self._by_objects[pattern.objects] = stored
            for oid in pattern.objects:
                self._member_index.setdefault(oid, set()).add(pattern.objects)
            fresh = True
        else:
            fresh = False
        if pattern.times not in stored.witnesses:
            stored.witnesses.append(pattern.times)
        return fresh

    def add_all(
        self, detections: Iterable[tuple[int, CoMovementPattern]]
    ) -> int:
        """Bulk insert (e.g. from ``PatternCollector.detections``)."""
        return sum(self.add(t, p) for t, p in detections)

    def __len__(self) -> int:
        return len(self._by_objects)

    def __contains__(self, objects) -> bool:
        return tuple(sorted(objects)) in self._by_objects

    def __iter__(self) -> Iterator[StoredPattern]:
        return iter(self._by_objects.values())

    def get(self, objects) -> StoredPattern | None:
        """The stored pattern for an object set, or ``None``."""
        return self._by_objects.get(tuple(sorted(objects)))

    # ----------------------------------------------------------------- queries

    def containing(self, oid: int) -> list[StoredPattern]:
        """Patterns whose object set includes ``oid``."""
        return [
            self._by_objects[key]
            for key in sorted(self._member_index.get(oid, ()))
        ]

    def active_at(self, time: int) -> list[StoredPattern]:
        """Patterns with a witness covering the given time."""
        return [p for p in self._by_objects.values() if p.covers_time(time)]

    def with_min_size(self, min_size: int) -> list[StoredPattern]:
        """Stored patterns with at least ``min_size`` members."""
        return [p for p in self._by_objects.values() if p.size >= min_size]

    def maximal(self) -> list[StoredPattern]:
        """Object sets not strictly contained in another stored set.

        The enumeration phase reports every valid subset (as the paper's
        algorithms do); applications usually want only the maximal groups.
        """
        keys = sorted(self._by_objects, key=len, reverse=True)
        maximal: list[tuple[int, ...]] = []
        kept: list[set[int]] = []
        for key in keys:
            candidate = set(key)
            if not any(candidate < other for other in kept):
                maximal.append(key)
                kept.append(candidate)
        return [self._by_objects[key] for key in sorted(maximal)]

    def companions(self, oid: int) -> dict[int, int]:
        """Co-travellers of ``oid`` with how many stored patterns they share."""
        counts: dict[int, int] = {}
        for pattern in self.containing(oid):
            for other in pattern.objects:
                if other != oid:
                    counts[other] = counts.get(other, 0) + 1
        return counts

    # ------------------------------------------------------------- export

    def to_json(self, maximal_only: bool = False, indent: int | None = None) -> str:
        """Serialise patterns as JSON (objects, witnesses, detection time)."""
        import json

        patterns = self.maximal() if maximal_only else list(self)
        payload = [
            {
                "objects": list(stored.objects),
                "witnesses": [list(w.times) for w in stored.witnesses],
                "first_detected_at": stored.first_detected_at,
            }
            for stored in sorted(patterns, key=lambda p: p.objects)
        ]
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PatternStore":
        """Rebuild a store from :meth:`to_json` output."""
        import json

        from repro.model.pattern import CoMovementPattern

        store = cls()
        for entry in json.loads(text):
            for witness in entry["witnesses"]:
                store.add(
                    entry["first_detected_at"],
                    CoMovementPattern.of(entry["objects"], witness),
                )
        return store
