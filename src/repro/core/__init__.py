"""The ICPE framework (Fig. 3): the paper's primary contribution assembled.

``ICPEPipeline`` wires discretized snapshots through indexed clustering
(GridAllocate -> GridQuery -> GridSync/DBSCAN) into id-partitioned pattern
enumeration (BA / FBA / VBA) on the streaming substrate, with per-stage
cost accounting.  The user-facing front end is the streaming Session API
(:mod:`repro.session`); ``CoMovementDetector`` remains as its
deprecation shim.
"""

from repro.core.config import ICPEConfig
from repro.core.detector import CoMovementDetector
from repro.core.icpe import ICPEPipeline
from repro.core.live import ConvoyTracker
from repro.core.presets import convoy, flock, group_pattern, platoon, swarm
from repro.core.store import PatternStore

__all__ = [
    "CoMovementDetector",
    "ConvoyTracker",
    "ICPEConfig",
    "ICPEPipeline",
    "PatternStore",
    "convoy",
    "flock",
    "group_pattern",
    "platoon",
    "swarm",
]
