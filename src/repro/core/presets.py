"""Classic co-movement pattern variants as CP(M, K, L, G) presets.

Re-exported from :mod:`repro.model.constraints`; see that module for the
mapping rationale (Section 1/2 of the paper unifies flock, convoy, group,
swarm and platoon under the single CP definition).
"""

from repro.model.constraints import (
    convoy,
    flock,
    group_pattern,
    platoon,
    swarm,
)

__all__ = ["convoy", "flock", "group_pattern", "platoon", "swarm"]
