"""High-level streaming detector: raw records in, patterns out.

``CoMovementDetector`` composes the "last time" synchronisation operator
(Section 4) with the ICPE pipeline, so callers feed possibly out-of-order
:class:`~repro.model.records.StreamRecord` items and receive newly
confirmed co-movement patterns as they are detected.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.config import ICPEConfig
from repro.core.icpe import ICPEPipeline
from repro.model.pattern import CoMovementPattern
from repro.model.records import StreamRecord
from repro.streaming.metrics import LatencyThroughputMeter
from repro.streaming.sync import TimeSyncOperator


class CoMovementDetector:
    """Real-time co-movement pattern detection over a trajectory stream."""

    def __init__(self, config: ICPEConfig):
        self.config = config
        self.pipeline = ICPEPipeline(config)
        self.sync = TimeSyncOperator(max_delay=config.max_delay)

    def feed(self, record: StreamRecord) -> list[CoMovementPattern]:
        """Accept one record; returns patterns confirmed by its arrival.

        Records may arrive out of event-time order within the configured
        ``max_delay``; the synchronisation operator assembles complete
        snapshots before any clustering happens (Definition 7's semantics
        require complete snapshots in ascending order).
        """
        fresh: list[CoMovementPattern] = []
        for snapshot in self.sync.feed(record):
            fresh.extend(self.pipeline.process_snapshot(snapshot))
        return fresh

    def feed_many(
        self, records: Iterable[StreamRecord]
    ) -> list[CoMovementPattern]:
        """Feed an iterable of records; returns all freshly confirmed patterns."""
        fresh: list[CoMovementPattern] = []
        for record in records:
            fresh.extend(self.feed(record))
        return fresh

    def finish(self) -> list[CoMovementPattern]:
        """Flush the stream end: remaining snapshots, windows, bit strings."""
        fresh: list[CoMovementPattern] = []
        for snapshot in self.sync.flush():
            fresh.extend(self.pipeline.process_snapshot(snapshot))
        fresh.extend(self.pipeline.finish())
        return fresh

    def close(self) -> None:
        """Release execution-backend resources without flushing state."""
        self.pipeline.close()

    @property
    def backend_name(self) -> str:
        """Name of the execution backend running the job graph."""
        return self.pipeline.backend_name

    @property
    def kernel_name(self) -> str:
        """Name of the snapshot-clustering kernel strategy in use."""
        return self.pipeline.kernel_name

    @property
    def enumeration_kernel_name(self) -> str:
        """Name of the pattern-enumeration kernel strategy in use."""
        return self.pipeline.enumeration_kernel_name

    @property
    def patterns(self) -> list[CoMovementPattern]:
        """Every distinct pattern detected so far."""
        return self.pipeline.patterns

    @property
    def meter(self) -> LatencyThroughputMeter:
        """Per-snapshot latency / throughput metrics."""
        return self.pipeline.meter

    def store(self):
        """Build a queryable :class:`~repro.core.store.PatternStore` from
        everything detected so far (containment / time / maximality
        queries for downstream applications)."""
        from repro.core.store import PatternStore

        store = PatternStore()
        store.add_all(self.pipeline.collector.detections)
        return store
