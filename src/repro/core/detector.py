"""Deprecated detector facade: raw records in, pattern lists out.

``CoMovementDetector`` was the public entry point before the streaming
Session API (PR 4); it is now a thin shim over
:class:`repro.session.Session` that keeps the old surface — ``feed`` /
``feed_many`` / ``finish`` returning bare
:class:`~repro.model.pattern.CoMovementPattern` lists — while emitting
a :class:`DeprecationWarning` at construction.  The shim and the
session run the identical engine (same sync operator, same pipeline),
so migrating is purely mechanical::

    # old                                  # new
    detector = CoMovementDetector(config)  session = open_session(config)
    detector.feed(record)                  session.feed(record)  # events
    detector.finish()                      session.finish()

Session ``feed`` returns typed events; the confirmed patterns are the
``.pattern`` of its ``PatternConfirmed`` events.

One sharpened edge: feeding after ``finish()`` now raises
``RuntimeError`` immediately.  The pre-Session detector had no explicit
guard there — such a feed was silently buffered and crashed later when
the next snapshot completed against the finished pipeline.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.core.config import ICPEConfig
from repro.model.pattern import CoMovementPattern
from repro.model.records import StreamRecord
from repro.session.events import PatternConfirmed
from repro.session.session import Session
from repro.streaming.metrics import LatencyThroughputMeter


class CoMovementDetector:
    """Deprecated: use :func:`repro.open_session` / :class:`Session`.

    Real-time co-movement pattern detection over a trajectory stream,
    in the pre-Session list-returning style.
    """

    def __init__(self, config: ICPEConfig):
        warnings.warn(
            "CoMovementDetector is deprecated; use repro.open_session(...) "
            "— Session.feed yields typed PatternEvents and supports sinks, "
            "live convoy tracking and context-manager lifecycle",
            DeprecationWarning,
            stacklevel=2,
        )
        self.config = config
        self._session = Session(config)

    @staticmethod
    def _patterns(events) -> list[CoMovementPattern]:
        return [
            event.pattern
            for event in events
            if isinstance(event, PatternConfirmed)
        ]

    def feed(self, record: StreamRecord) -> list[CoMovementPattern]:
        """Accept one record; returns patterns confirmed by its arrival."""
        return self._patterns(self._session.feed(record))

    def feed_many(
        self, records: Iterable[StreamRecord]
    ) -> list[CoMovementPattern]:
        """Feed an iterable of records; returns all freshly confirmed patterns."""
        return self._patterns(self._session.feed_many(records))

    def finish(self) -> list[CoMovementPattern]:
        """Flush the stream end: remaining snapshots, windows, bit strings."""
        return self._patterns(self._session.finish())

    def close(self) -> None:
        """Release execution-backend resources without flushing state."""
        self._session.close()

    @property
    def session(self) -> Session:
        """The underlying :class:`Session` (migration escape hatch)."""
        return self._session

    @property
    def pipeline(self):
        """The underlying :class:`~repro.core.icpe.ICPEPipeline`."""
        return self._session.pipeline

    @property
    def sync(self):
        """The "last time" synchronisation operator assembling snapshots."""
        return self._session._sync

    @property
    def backend_name(self) -> str:
        """Name of the execution backend running the job graph."""
        return self._session.pipeline.backend_name

    @property
    def kernel_name(self) -> str:
        """Name of the snapshot-clustering kernel strategy in use."""
        return self._session.pipeline.kernel_name

    @property
    def enumeration_kernel_name(self) -> str:
        """Name of the pattern-enumeration kernel strategy in use."""
        return self._session.pipeline.enumeration_kernel_name

    @property
    def patterns(self) -> list[CoMovementPattern]:
        """Every distinct pattern detected so far."""
        return self._session.patterns

    @property
    def meter(self) -> LatencyThroughputMeter:
        """Per-snapshot latency / throughput metrics."""
        return self._session.meter

    def store(self):
        """Build a queryable :class:`~repro.core.store.PatternStore` from
        everything detected so far (containment / time / maximality
        queries for downstream applications)."""
        return self._session.store()
