"""The N-node cluster cost model.

The paper's experiments run on 1-10 slave nodes, each with two 12-core
processors.  We execute every subtask in one Python process but account
busy time per subtask; the cost model then *schedules* those subtasks onto
``n_nodes`` simulated machines exactly as Flink's round-robin slot
placement would, and derives:

* **latency** of one snapshot — stages execute as a pipeline, so the
  snapshot's latency is the sum over stages of the slowest node's stage
  time, where a node's stage time is ``max(longest single subtask,
  node_total / cores)`` (work-conserving multiprocessing bound), plus a
  fixed per-exchange network cost;
* **throughput** — the pipeline's bottleneck: the reciprocal of the
  largest per-snapshot stage-node time.

The model deliberately reproduces the *shape* of Fig. 14 (falling latency
and rising throughput that saturate once the dominant subtask is alone on
a node); absolute values depend on the Python substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.streaming.dataflow import StageWork


@dataclass(frozen=True, slots=True)
class StageCost:
    """Distributed cost of one stage for one unit of work."""

    name: str
    slowest_node_seconds: float
    total_seconds: float


@dataclass(slots=True)
class ClusterModel:
    """Round-robin subtask placement over homogeneous nodes.

    Attributes:
        n_nodes: number of worker nodes (the paper's N, 1-10).
        cores_per_node: parallel capacity per node (paper hardware: 24).
        exchange_cost_seconds: fixed cost of one keyed exchange hop,
            modelling serialisation plus network transfer per stage.
    """

    n_nodes: int = 1
    cores_per_node: int = 24
    exchange_cost_seconds: float = 0.0002

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.cores_per_node < 1:
            raise ValueError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )

    def stage_cost(self, work: StageWork) -> StageCost:
        """Distributed execution time of one stage's unit of work."""
        node_busy = [0.0] * self.n_nodes
        node_peak = [0.0] * self.n_nodes
        for index, busy in enumerate(work.busy_seconds):
            node = index % self.n_nodes
            node_busy[node] += busy
            if busy > node_peak[node]:
                node_peak[node] = busy
        slowest = 0.0
        for node in range(self.n_nodes):
            # Work-conserving bound for parallel subtasks sharing cores.
            elapsed = max(node_peak[node], node_busy[node] / self.cores_per_node)
            if elapsed > slowest:
                slowest = elapsed
        return StageCost(
            name=work.name,
            slowest_node_seconds=slowest,
            total_seconds=sum(work.busy_seconds),
        )

    def snapshot_latency_seconds(self, works: Sequence[StageWork]) -> float:
        """Pipelined latency of one snapshot through all stages."""
        latency = 0.0
        for work in works:
            latency += self.stage_cost(work).slowest_node_seconds
            latency += self.exchange_cost_seconds
        return latency

    def bottleneck_seconds(self, works: Sequence[StageWork]) -> float:
        """Per-snapshot time of the slowest pipeline stage (throughput cap)."""
        worst = self.exchange_cost_seconds
        for work in works:
            cost = self.stage_cost(work).slowest_node_seconds
            if cost + self.exchange_cost_seconds > worst:
                worst = cost + self.exchange_cost_seconds
        return worst


@dataclass(slots=True)
class ClusterRun:
    """Accumulates per-snapshot stage works into run-level metrics."""

    model: ClusterModel
    latencies: list[float] = field(default_factory=list)
    bottlenecks: list[float] = field(default_factory=list)

    def record(self, works: Sequence[StageWork]) -> None:
        """Score one snapshot's stage works under the model."""
        self.latencies.append(self.model.snapshot_latency_seconds(works))
        self.bottlenecks.append(self.model.bottleneck_seconds(works))

    @property
    def snapshots(self) -> int:
        """Number of snapshots recorded."""
        return len(self.latencies)

    def average_latency_ms(self) -> float:
        """Mean per-snapshot pipelined latency in ms."""
        if not self.latencies:
            return 0.0
        return 1000.0 * sum(self.latencies) / len(self.latencies)

    def throughput_tps(self) -> float:
        """Snapshots per second under pipelined execution."""
        if not self.bottlenecks:
            return 0.0
        total = sum(self.bottlenecks)
        return len(self.bottlenecks) / total if total > 0 else float("inf")
