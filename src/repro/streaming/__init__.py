"""A Flink-like streaming substrate (Section 4 + the evaluation's cluster).

The paper runs ICPE on Apache Flink across 11 nodes.  This package
reproduces the pieces of that substrate the algorithms rely on:

* :mod:`repro.streaming.sync` — the "last time" synchronisation operator:
  restores per-trajectory time order under out-of-order delivery and emits
  complete snapshots in ascending time order;
* :mod:`repro.streaming.dataflow` — operators, keyed exchanges and a
  driver that executes a staged topology while accounting per-subtask busy
  time;
* :mod:`repro.streaming.cluster` — the N-node cost model turning busy
  times into the latency/throughput metrics of Section 7 (Figs. 10-15);
* :mod:`repro.streaming.shuffle` — bounded out-of-order delivery
  simulation used by tests and examples.
"""

from repro.streaming.cluster import ClusterModel, StageCost
from repro.streaming.dataflow import (
    KeyedStage,
    Operator,
    StageRuntime,
    Topology,
)
from repro.streaming.environment import Job, StreamEnvironment
from repro.streaming.metrics import LatencyThroughputMeter, SnapshotTiming
from repro.streaming.shuffle import bounded_shuffle
from repro.streaming.sync import TimeSyncOperator

__all__ = [
    "ClusterModel",
    "Job",
    "KeyedStage",
    "LatencyThroughputMeter",
    "Operator",
    "SnapshotTiming",
    "StageCost",
    "StageRuntime",
    "StreamEnvironment",
    "TimeSyncOperator",
    "Topology",
    "bounded_shuffle",
]
