"""A Flink-like streaming substrate (Section 4 + the evaluation's cluster).

The paper runs ICPE on Apache Flink across 11 nodes.  This package
reproduces the pieces of that substrate the algorithms rely on, layered
bottom-up:

* :mod:`repro.streaming.sync` — the "last time" synchronisation operator:
  restores per-trajectory time order under out-of-order delivery and emits
  complete snapshots in ascending time order;
* :mod:`repro.streaming.dataflow` — the dataflow primitives: operators,
  keyed stages, and :class:`~repro.streaming.dataflow.StageRuntime`
  (instantiated subtasks plus stable keyed routing and per-subtask
  busy-time accounting);
* :mod:`repro.streaming.hashing` — the salt-free CRC32 key hash that
  makes keyed routing reproducible across interpreter runs and identical
  between execution backends;
* :mod:`repro.streaming.runtime` — the pluggable execution runtime: the
  unified :class:`~repro.streaming.runtime.graph.JobGraph` topology
  description, the :class:`~repro.streaming.runtime.base.ExecutionBackend`
  contract, and the two shipped backends —
  :class:`~repro.streaming.runtime.serial.SerialBackend` (sequential,
  deterministic, default) and
  :class:`~repro.streaming.runtime.parallel.ParallelBackend` (worker-pool
  concurrency with batched keyed exchanges and measured wall-clock busy
  times);
* :mod:`repro.streaming.environment` — the fluent builder
  (:class:`StreamEnvironment`) that describes a topology once and compiles
  it onto any backend any number of times, yielding independent
  :class:`Job` instances;
* :mod:`repro.streaming.cluster` — the N-node cost model turning busy
  times into the latency/throughput metrics of Section 7 (Figs. 10-15);
* :mod:`repro.streaming.shuffle` — bounded out-of-order delivery
  simulation used by tests and examples.
"""

from repro.streaming.cluster import ClusterModel, StageCost
from repro.streaming.dataflow import (
    KeyedStage,
    Operator,
    StageRuntime,
    Topology,
)
from repro.streaming.environment import Job, StreamEnvironment
from repro.streaming.hashing import canonical_encode, stable_hash
from repro.streaming.metrics import LatencyThroughputMeter, SnapshotTiming
from repro.streaming.runtime import (
    ExecutionBackend,
    JobGraph,
    ParallelBackend,
    SerialBackend,
    resolve_backend,
)
from repro.streaming.shuffle import bounded_shuffle
from repro.streaming.sync import TimeSyncOperator

__all__ = [
    "ClusterModel",
    "ExecutionBackend",
    "Job",
    "JobGraph",
    "KeyedStage",
    "LatencyThroughputMeter",
    "Operator",
    "ParallelBackend",
    "SerialBackend",
    "SnapshotTiming",
    "StageCost",
    "StageRuntime",
    "StreamEnvironment",
    "TimeSyncOperator",
    "Topology",
    "bounded_shuffle",
    "canonical_encode",
    "resolve_backend",
    "stable_hash",
]
