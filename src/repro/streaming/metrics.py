"""Latency / throughput metrics (Section 7's performance measures).

The paper reports, per configuration, the *average response time per
snapshot* (latency, ms) and the *number of snapshots processed per second*
(throughput, tps).  :class:`LatencyThroughputMeter` collects per-snapshot
timings — either raw wall-clock (single process) or the cluster cost
model's distributed estimates — and produces those two numbers.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field
from statistics import mean


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Uses the same linear-interpolation-between-closest-ranks definition
    NumPy defaults to, without requiring NumPy: the tail metrics the
    SLO controller steers on must exist on pure-python installs too.
    Returns 0.0 for an empty input.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * (q / 100.0)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True, slots=True)
class SnapshotTiming:
    """Timing of one processed snapshot."""

    time: int
    latency_seconds: float
    bottleneck_seconds: float
    locations: int = 0
    patterns_emitted: int = 0


@dataclass(slots=True)
class LatencyThroughputMeter:
    """Aggregates per-snapshot timings into the paper's two metrics."""

    timings: list[SnapshotTiming] = field(default_factory=list)

    def record(self, timing: SnapshotTiming) -> None:
        """Append one snapshot's timing."""
        self.timings.append(timing)

    @property
    def snapshots(self) -> int:
        """Number of snapshots recorded."""
        return len(self.timings)

    def average_latency_ms(self) -> float:
        """Mean per-snapshot response time in milliseconds."""
        if not self.timings:
            return 0.0
        return 1000.0 * mean(t.latency_seconds for t in self.timings)

    def percentile_latency_ms(self, q: float) -> float:
        """The ``q``-th percentile per-snapshot response time (ms)."""
        return 1000.0 * percentile(
            (t.latency_seconds for t in self.timings), q
        )

    def p50_latency_ms(self) -> float:
        """Median per-snapshot response time in milliseconds."""
        return self.percentile_latency_ms(50.0)

    def p95_latency_ms(self) -> float:
        """95th-percentile per-snapshot response time in milliseconds."""
        return self.percentile_latency_ms(95.0)

    def p99_latency_ms(self) -> float:
        """99th-percentile per-snapshot response time in milliseconds."""
        return self.percentile_latency_ms(99.0)

    def throughput_tps(self) -> float:
        """Snapshots per second sustained by the pipeline bottleneck."""
        if not self.timings:
            return 0.0
        total = sum(t.bottleneck_seconds for t in self.timings)
        if total <= 0:
            return float("inf")
        return len(self.timings) / total

    def total_patterns(self) -> int:
        """Total fresh patterns across all snapshots."""
        return sum(t.patterns_emitted for t in self.timings)

    def summary(self) -> dict[str, float]:
        """The metrics as a flat dict (for reports)."""
        return {
            "snapshots": float(self.snapshots),
            "avg_latency_ms": self.average_latency_ms(),
            "p50_latency_ms": self.p50_latency_ms(),
            "p95_latency_ms": self.p95_latency_ms(),
            "p99_latency_ms": self.p99_latency_ms(),
            "throughput_tps": self.throughput_tps(),
            "patterns": float(self.total_patterns()),
        }

    def snapshot_state(self) -> dict:
        """The timing log as plain tuples."""
        return {
            "timings": [
                (
                    t.time,
                    t.latency_seconds,
                    t.bottleneck_seconds,
                    t.locations,
                    t.patterns_emitted,
                )
                for t in self.timings
            ]
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self.timings = [
            SnapshotTiming(
                time=time,
                latency_seconds=latency,
                bottleneck_seconds=bottleneck,
                locations=locations,
                patterns_emitted=patterns,
            )
            for time, latency, bottleneck, locations, patterns in payload[
                "timings"
            ]
        ]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: size of the timing log."""
        return {"timings": len(self.timings)}
