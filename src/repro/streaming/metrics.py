"""Latency / throughput metrics (Section 7's performance measures).

The paper reports, per configuration, the *average response time per
snapshot* (latency, ms) and the *number of snapshots processed per second*
(throughput, tps).  :class:`LatencyThroughputMeter` collects per-snapshot
timings — either raw wall-clock (single process) or the cluster cost
model's distributed estimates — and produces those two numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean


@dataclass(frozen=True, slots=True)
class SnapshotTiming:
    """Timing of one processed snapshot."""

    time: int
    latency_seconds: float
    bottleneck_seconds: float
    locations: int = 0
    patterns_emitted: int = 0


@dataclass(slots=True)
class LatencyThroughputMeter:
    """Aggregates per-snapshot timings into the paper's two metrics."""

    timings: list[SnapshotTiming] = field(default_factory=list)

    def record(self, timing: SnapshotTiming) -> None:
        """Append one snapshot's timing."""
        self.timings.append(timing)

    @property
    def snapshots(self) -> int:
        """Number of snapshots recorded."""
        return len(self.timings)

    def average_latency_ms(self) -> float:
        """Mean per-snapshot response time in milliseconds."""
        if not self.timings:
            return 0.0
        return 1000.0 * mean(t.latency_seconds for t in self.timings)

    def throughput_tps(self) -> float:
        """Snapshots per second sustained by the pipeline bottleneck."""
        if not self.timings:
            return 0.0
        total = sum(t.bottleneck_seconds for t in self.timings)
        if total <= 0:
            return float("inf")
        return len(self.timings) / total

    def total_patterns(self) -> int:
        """Total fresh patterns across all snapshots."""
        return sum(t.patterns_emitted for t in self.timings)

    def summary(self) -> dict[str, float]:
        """The metrics as a flat dict (for reports)."""
        return {
            "snapshots": float(self.snapshots),
            "avg_latency_ms": self.average_latency_ms(),
            "throughput_tps": self.throughput_tps(),
            "patterns": float(self.total_patterns()),
        }

    def snapshot_state(self) -> dict:
        """The timing log as plain tuples."""
        return {
            "timings": [
                (
                    t.time,
                    t.latency_seconds,
                    t.bottleneck_seconds,
                    t.locations,
                    t.patterns_emitted,
                )
                for t in self.timings
            ]
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self.timings = [
            SnapshotTiming(
                time=time,
                latency_seconds=latency,
                bottleneck_seconds=bottleneck,
                locations=locations,
                patterns_emitted=patterns,
            )
            for time, latency, bottleneck, locations, patterns in payload[
                "timings"
            ]
        ]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: size of the timing log."""
        return {"timings": len(self.timings)}
