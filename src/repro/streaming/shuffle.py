"""Bounded out-of-order delivery simulation.

Used by tests and examples to exercise the time-synchronisation operator:
takes an event-time-ordered record stream and produces a permutation in
which a record with event time ``tau`` is always delivered before any
record with event time greater than ``tau + max_delay`` — the delivery
model of a Flink source with bounded lateness.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.model.records import StreamRecord


def bounded_shuffle(
    records: Sequence[StreamRecord],
    max_delay: int,
    rng: random.Random,
    hold_probability: float = 0.5,
    max_pending: int = 256,
) -> Iterator[StreamRecord]:
    """Yield ``records`` out of order within the bounded-delay guarantee.

    Args:
        records: the stream in event-time order.
        max_delay: displacement bound in discretized time units; 0 keeps
            event times non-decreasing but still interleaves records that
            share a time.
        rng: randomness source (injected for reproducibility).
        hold_probability: chance of holding the buffer back at each step —
            higher values produce more reordering.
        max_pending: buffer cap; prevents degenerate memory use.
    """
    if max_delay < 0:
        raise ValueError(f"max_delay must be >= 0, got {max_delay}")
    if not 0.0 <= hold_probability < 1.0:
        raise ValueError(
            f"hold_probability must be in [0, 1), got {hold_probability}"
        )

    pending: list[StreamRecord] = []

    def pop_eligible() -> StreamRecord:
        oldest = min(r.time for r in pending)
        eligible = [r for r in pending if r.time <= oldest + max_delay]
        choice = rng.choice(eligible)
        pending.remove(choice)
        return choice

    for record in records:
        pending.append(record)
        while pending and (
            len(pending) > max_pending or rng.random() >= hold_probability
        ):
            yield pop_eligible()
    while pending:
        yield pop_eligible()
