"""Operators, keyed stages and the staged topology driver.

A miniature of Flink's programming model sufficient for ICPE's job graph
(Fig. 3 / Fig. 5): a topology is a list of *stages*, each stage has a
number of parallel *subtasks* hosting one operator instance each, and
records travel between stages through *keyed exchanges* (hash of the key
modulo the downstream parallelism — Flink's key-group routing).

The driver executes one *unit of work* (for ICPE: one snapshot) at a time,
measuring the busy time every subtask spends, which the cluster cost model
(:mod:`repro.streaming.cluster`) turns into distributed latency and
throughput figures.  Running the real algorithm code under measurement —
rather than simulating costs — keeps the relative comparisons between
methods meaningful.
"""

from __future__ import annotations

import time as _time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence


class Operator(ABC):
    """One parallel operator instance (a subtask's logic)."""

    def open(self, subtask_index: int, parallelism: int) -> None:
        """Called once before any element is processed."""

    @abstractmethod
    def process(self, element: Any) -> Iterable[Any]:
        """Handle one element; yield downstream elements."""

    def end_batch(self, ctx: Any) -> Iterable[Any]:
        """Per-unit-of-work trigger (ICPE: once per snapshot, ctx = time).

        Called on *every* subtask after the batch's elements, including
        subtasks that received none — operators with time-driven state
        (windows, variable bit strings) rely on the tick.
        """
        return ()

    def finish(self) -> Iterable[Any]:
        """Flush state at end of stream; yield remaining elements."""
        return ()


class FnOperator(Operator):
    """Adapter turning a plain function into a flat-map operator."""

    def __init__(self, fn: Callable[[Any], Iterable[Any]]):
        self._fn = fn

    def process(self, element: Any) -> Iterable[Any]:
        """Delegate to the wrapped function."""
        return self._fn(element)


@dataclass(slots=True)
class KeyedStage:
    """One stage of the topology.

    Attributes:
        name: stage name (appears in metrics).
        operator_factory: builds one operator instance per subtask.
        parallelism: number of subtasks.
        key_fn: maps an incoming element to its routing key; ``None``
            broadcasts every element to subtask 0 (a sink-like stage).
    """

    name: str
    operator_factory: Callable[[], Operator]
    parallelism: int
    key_fn: Callable[[Any], Hashable] | None = None

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError(
                f"stage {self.name!r}: parallelism must be >= 1, "
                f"got {self.parallelism}"
            )


@dataclass(slots=True)
class StageWork:
    """Busy time of one stage during one unit of work, per subtask."""

    name: str
    busy_seconds: list[float]
    elements_in: int
    elements_out: int

    @property
    def parallelism(self) -> int:
        """Number of subtasks measured."""
        return len(self.busy_seconds)


class StageRuntime:
    """Instantiated subtasks of one stage plus routing."""

    def __init__(self, stage: KeyedStage):
        self.stage = stage
        self.subtasks = [stage.operator_factory() for _ in range(stage.parallelism)]
        for index, subtask in enumerate(self.subtasks):
            subtask.open(index, stage.parallelism)

    def route(self, element: Any) -> int:
        """Subtask index an element is routed to."""
        if self.stage.key_fn is None:
            return 0
        return hash(self.stage.key_fn(element)) % self.stage.parallelism

    def run(
        self, elements: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], StageWork]:
        """Process one unit of work; returns outputs and busy times.

        Every subtask's ``end_batch(ctx)`` runs after its elements, even
        when it received none this batch.
        """
        buckets: list[list[Any]] = [[] for _ in self.subtasks]
        for element in elements:
            buckets[self.route(element)].append(element)
        outputs: list[Any] = []
        busy = [0.0] * len(self.subtasks)
        for index, (subtask, bucket) in enumerate(zip(self.subtasks, buckets)):
            started = _time.perf_counter()
            for element in bucket:
                outputs.extend(subtask.process(element))
            outputs.extend(subtask.end_batch(ctx))
            busy[index] += _time.perf_counter() - started
        work = StageWork(
            name=self.stage.name,
            busy_seconds=busy,
            elements_in=len(elements),
            elements_out=len(outputs),
        )
        return outputs, work

    def finish(self) -> tuple[list[Any], StageWork]:
        """Flush every subtask's state; returns outputs and busy times."""
        outputs: list[Any] = []
        busy = [0.0] * len(self.subtasks)
        for index, subtask in enumerate(self.subtasks):
            started = _time.perf_counter()
            outputs.extend(subtask.finish())
            busy[index] += _time.perf_counter() - started
        work = StageWork(
            name=self.stage.name,
            busy_seconds=busy,
            elements_in=0,
            elements_out=len(outputs),
        )
        return outputs, work


@dataclass(slots=True)
class Topology:
    """A linear chain of keyed stages (ICPE's job graph shape)."""

    stages: list[KeyedStage] = field(default_factory=list)

    def add(self, stage: KeyedStage) -> "Topology":
        """Append a stage and return the topology (chainable)."""
        self.stages.append(stage)
        return self

    def build(self) -> list[StageRuntime]:
        """Instantiate the runtimes of every stage."""
        return [StageRuntime(stage) for stage in self.stages]


def run_unit(
    runtimes: Sequence[StageRuntime], elements: Sequence[Any], ctx: Any = None
) -> tuple[list[Any], list[StageWork]]:
    """Push one unit of work (e.g. one snapshot) through every stage."""
    works: list[StageWork] = []
    current: Sequence[Any] = elements
    for runtime in runtimes:
        current, work = runtime.run(current, ctx)
        works.append(work)
    return list(current), works


def finish_all(
    runtimes: Sequence[StageRuntime],
) -> tuple[list[Any], list[StageWork]]:
    """Flush stage state at end of stream, cascading outputs downstream."""
    works: list[StageWork] = []
    carried: list[Any] = []
    for runtime in runtimes:
        if carried:
            carried, work_run = runtime.run(carried)
            flushed, work_fin = runtime.finish()
            carried = list(carried) + flushed
            busy = [
                a + b
                for a, b in zip(work_run.busy_seconds, work_fin.busy_seconds)
            ]
            works.append(
                StageWork(
                    name=runtime.stage.name,
                    busy_seconds=busy,
                    elements_in=work_run.elements_in,
                    elements_out=len(carried),
                )
            )
        else:
            carried, work = runtime.finish()
            works.append(work)
    return carried, works
