"""Operators, keyed stages and the staged-topology primitives.

A miniature of Flink's programming model sufficient for ICPE's job graph
(Fig. 3 / Fig. 5): a topology is a list of *stages*, each stage has a
number of parallel *subtasks* hosting one operator instance each, and
records travel between stages through *keyed exchanges* (a stable hash of
the key modulo the downstream parallelism — Flink's key-group routing).

This module holds the primitives: :class:`Operator`, :class:`KeyedStage`
and :class:`StageRuntime` (instantiated subtasks plus routing).  *How* a
stage's subtasks execute — sequentially in the calling thread, or
concurrently on a worker pool — is the province of the execution backends
in :mod:`repro.streaming.runtime`; both backends consume the same
``partition`` / ``run_subtask`` / ``finish_subtask`` operations defined
here, so routing and per-subtask semantics are identical by construction.

The drivers execute one *unit of work* (for ICPE: one snapshot) at a time,
measuring the busy time every subtask spends, which the cluster cost model
(:mod:`repro.streaming.cluster`) turns into distributed latency and
throughput figures.  Running the real algorithm code under measurement —
rather than simulating costs — keeps the relative comparisons between
methods meaningful.
"""

from __future__ import annotations

import time as _time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.model.batch import SnapshotBatch
from repro.streaming.hashing import stable_hash


class Operator(ABC):
    """One parallel operator instance (a subtask's logic)."""

    def open(self, subtask_index: int, parallelism: int) -> None:
        """Called once before any element is processed."""

    @abstractmethod
    def process(self, element: Any) -> Iterable[Any]:
        """Handle one element; yield downstream elements."""

    def process_batch(self, batch: SnapshotBatch) -> Iterable[Any]:
        """Handle one columnar envelope routed to this subtask.

        The default unrolls the envelope's rows through :meth:`process`,
        so every row-oriented operator is batch-transparent; columnar
        operators (the kernel clustering stage) override this to consume
        the columns wholesale and never box per-point objects.
        """
        out: list[Any] = []
        for row in batch.rows():
            out.extend(self.process(row))
        return out

    def end_batch(self, ctx: Any) -> Iterable[Any]:
        """Per-unit-of-work trigger (ICPE: once per snapshot, ctx = time).

        Called on *every* subtask after the batch's elements, including
        subtasks that received none — operators with time-driven state
        (windows, variable bit strings) rely on the tick.
        """
        return ()

    def finish(self) -> Iterable[Any]:
        """Flush state at end of stream; yield remaining elements."""
        return ()

    def snapshot_state(self) -> Any:
        """Serializable state payload, or ``None`` for stateless operators.

        The payload must be plain picklable data (dicts, tuples, ints,
        frozen model dataclasses) capturing everything :meth:`restore_state`
        needs to make a freshly ``open``-ed instance behave identically.
        Checkpoints are taken at unit-of-work boundaries, so transient
        per-unit buffers (cleared by :meth:`end_batch`) need not appear.
        """
        return None

    def restore_state(self, payload: Any) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`.

        Only invoked with payloads this operator class produced; the
        default refuses because the base class never produces one.
        """
        raise NotImplementedError(
            f"{type(self).__name__} produced no state payload to restore"
        )

    def state_metrics(self) -> dict[str, int]:
        """Per-operator memory accounting (entry counts, eviction tallies).

        Stateless operators return an empty dict; stateful ones report
        the sizes of their retained structures so sessions can surface
        per-component accounting in ``Session.result()``.
        """
        return {}


class FnOperator(Operator):
    """Adapter turning a plain function into a flat-map operator."""

    def __init__(self, fn: Callable[[Any], Iterable[Any]]):
        self._fn = fn

    def process(self, element: Any) -> Iterable[Any]:
        """Delegate to the wrapped function."""
        return self._fn(element)


def count_elements(elements: Sequence[Any]) -> int:
    """Logical element count of a unit of work (envelopes count rows).

    Keeps ``StageWork.elements_in`` comparable between the per-element
    and the batch-shaped exchange: a columnar envelope contributes its
    row count, not 1, wherever it sits in the sequence.
    """
    return sum(
        len(element) if isinstance(element, SnapshotBatch) else 1
        for element in elements
    )


class ShmEnvelope:
    """A columnar envelope in transit through a shared-memory segment.

    The picklable *token* a process backend ships through its command
    pipe in place of a :class:`~repro.model.batch.SnapshotBatch`: the
    column data already sits in a ``multiprocessing.shared_memory``
    segment, so only the segment name and the batch's layout descriptor
    (the ``meta`` dict from :meth:`SnapshotBatch.to_shm`) cross the pipe.
    The receiver attaches the segment and rebuilds the batch as
    zero-copy views via :func:`decode_exchange_elements`.
    """

    __slots__ = ("segment", "meta")

    def __init__(self, segment: str, meta: dict):
        self.segment = segment
        self.meta = meta

    def __repr__(self) -> str:
        return f"ShmEnvelope(segment={self.segment!r}, n={self.meta.get('n')})"

    def __reduce__(self):
        return (ShmEnvelope, (self.segment, self.meta))


def encode_exchange_elements(
    elements: Sequence[Any],
    allocate: Callable[[int], tuple[str, Any]],
) -> list[Any]:
    """Swap array-backed envelopes in a bucket for shared-memory tokens.

    ``allocate(nbytes)`` returns ``(segment_name, writable_buffer)`` —
    the process backend passes its segment pool's allocator.  Array-backed
    non-empty :class:`~repro.model.batch.SnapshotBatch` envelopes have
    their columns written into a fresh segment and travel as
    :class:`ShmEnvelope` tokens; everything else (plain elements,
    list-backed or empty batches) passes through unchanged and rides the
    pickle path of whatever pipe carries the bucket.
    """
    encoded: list[Any] = []
    for element in elements:
        if (
            isinstance(element, SnapshotBatch)
            and element.backing == "numpy"
            and len(element)
        ):
            name, buffer = allocate(element.shm_nbytes())
            encoded.append(ShmEnvelope(name, element.to_shm(buffer)))
        else:
            encoded.append(element)
    return encoded


def decode_exchange_elements(
    elements: Sequence[Any],
    attach: Callable[[str], Any],
) -> list[Any]:
    """Rebuild batches from the tokens :func:`encode_exchange_elements` made.

    ``attach(segment_name)`` returns the segment's buffer; the batch
    columns become zero-copy read-only views over it, so the caller must
    keep the segment mapped until the decoded elements are consumed.
    """
    decoded: list[Any] = []
    for element in elements:
        if isinstance(element, ShmEnvelope):
            decoded.append(
                SnapshotBatch.from_shm(attach(element.segment), element.meta)
            )
        else:
            decoded.append(element)
    return decoded


@dataclass(slots=True)
class KeyedStage:
    """One stage of the topology.

    Attributes:
        name: stage name (appears in metrics).
        operator_factory: builds one operator instance per subtask.
        parallelism: number of subtasks.
        key_fn: maps an incoming element to its routing key; ``None``
            broadcasts every element to subtask 0 (a sink-like stage).
    """

    name: str
    operator_factory: Callable[[], Operator]
    parallelism: int
    key_fn: Callable[[Any], Hashable] | None = None

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError(
                f"stage {self.name!r}: parallelism must be >= 1, "
                f"got {self.parallelism}"
            )


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One traced operator invocation: a subtask run over one unit.

    The telemetry span of the observability subsystem.  Recorded at the
    invocation site (:meth:`StageRuntime.run_subtask` /
    :meth:`StageRuntime.finish_subtask`), so every execution backend —
    including process workers, which ship their spans back through the
    reply protocol — produces the identical span stream for the same
    work.  ``busy_seconds`` is wall-clock and therefore the only
    non-deterministic field; everything else is event-for-event
    reproducible across backends.

    Attributes:
        stage: stage name.
        subtask: subtask index within the stage.
        time: the unit-of-work context (ICPE: snapshot time; ``None``
            for finish spans and context-free drivers).
        kind: ``"unit"`` for a batch run, ``"finish"`` for the
            end-of-stream flush.
        elements_in: logical elements routed to the subtask.
        elements_out: elements the subtask emitted.
        busy_seconds: wall time the invocation took.
    """

    stage: str
    subtask: int
    time: Any
    kind: str
    elements_in: int
    elements_out: int
    busy_seconds: float


@dataclass(slots=True)
class StageWork:
    """Busy time of one stage during one unit of work, per subtask.

    ``wall_seconds`` is the real elapsed time the stage took under the
    executing backend — for the serial backend this approximates the sum
    of the busy times, for the parallel backend it is the overlapped
    elapsed time (the quantity backend-scalability benchmarks compare).
    """

    name: str
    busy_seconds: list[float]
    elements_in: int
    elements_out: int
    wall_seconds: float = 0.0

    @property
    def parallelism(self) -> int:
        """Number of subtasks measured."""
        return len(self.busy_seconds)


class StageRuntime:
    """Instantiated subtasks of one stage plus keyed routing.

    Execution backends drive a runtime exclusively through
    :meth:`partition`, :meth:`run_subtask` and :meth:`finish_subtask`;
    the element-to-subtask assignment and the per-subtask processing
    order are therefore backend-independent.
    """

    def __init__(self, stage: KeyedStage):
        self.stage = stage
        self.subtasks = [stage.operator_factory() for _ in range(stage.parallelism)]
        for index, subtask in enumerate(self.subtasks):
            subtask.open(index, stage.parallelism)
        # Keyed streams revisit the same routing keys every snapshot
        # (trajectory ids, grid cells, anchors), so the CRC32 of a key is
        # computed once and memoised.  Spatial keys (grid cells) are
        # unbounded on a live stream, so the cache stops admitting new
        # entries at a fixed cap — past it, misses just recompute.
        self._route_cache: dict[Any, int] = {}
        #: Span buffer: every subtask invocation appends one record here
        #: (appends under the GIL, so concurrent subtask threads are
        #: safe).  Drivers drain it per unit of work; a driver that never
        #: drains hits the admission cap and only ``spans_dropped`` grows.
        self.spans: list[SpanRecord] = []
        self.spans_dropped = 0

    #: Route-cache admission cap (entries are a key plus a small int).
    _ROUTE_CACHE_LIMIT = 1 << 16

    #: Span-buffer admission cap for drivers that never drain.
    _SPAN_BUFFER_LIMIT = 1 << 16

    def _record_span(
        self,
        subtask: int,
        time: Any,
        kind: str,
        elements_in: int,
        elements_out: int,
        busy_seconds: float,
    ) -> None:
        if len(self.spans) >= self._SPAN_BUFFER_LIMIT:
            self.spans_dropped += 1
            return
        self.spans.append(
            SpanRecord(
                stage=self.stage.name,
                subtask=subtask,
                time=time,
                kind=kind,
                elements_in=elements_in,
                elements_out=elements_out,
                busy_seconds=busy_seconds,
            )
        )

    def drain_spans(self) -> list[SpanRecord]:
        """Take (and clear) the buffered spans of this runtime."""
        spans, self.spans = self.spans, []
        return spans

    def adopt_spans(self, spans: Sequence[SpanRecord]) -> None:
        """Append spans recorded elsewhere (a process worker's runtime).

        The master-side runtime of a process backend never executes
        subtasks itself; the workers' drained spans are adopted here so
        every driver reads spans from the same place regardless of
        backend.
        """
        self.spans.extend(spans)

    def route(self, element: Any) -> int:
        """Subtask index an element is routed to (stable across runs)."""
        if self.stage.key_fn is None:
            return 0
        key = self.stage.key_fn(element)
        index = self._route_cache.get(key)
        if index is None:
            index = stable_hash(key) % self.stage.parallelism
            if len(self._route_cache) < self._ROUTE_CACHE_LIMIT:
                self._route_cache[key] = index
        return index

    def partition(self, elements: Sequence[Any]) -> list[list[Any]]:
        """Bucket one batch of elements by routed subtask (keyed exchange).

        The whole batch is exchanged at once — one bucket handoff per
        subtask per unit of work, not one per element — which is what lets
        a parallel backend hand each worker its full bucket up front.
        Columnar :class:`~repro.model.batch.SnapshotBatch` envelopes are
        split into at most one sub-envelope per destination subtask (the
        batch-shaped keyed exchange) instead of being unboxed into rows.
        """
        buckets: list[list[Any]] = [[] for _ in self.subtasks]
        for element in elements:
            if isinstance(element, SnapshotBatch):
                self._partition_envelope(element, buckets)
            else:
                buckets[self.route(element)].append(element)
        return buckets

    def _partition_envelope(
        self, envelope: SnapshotBatch, buckets: list[list[Any]]
    ) -> None:
        """Split one columnar envelope by routed subtask.

        Emits one sub-envelope per destination that receives any rows;
        an unkeyed or single-subtask stage takes the envelope whole
        (zero-copy).  Row order within each sub-envelope preserves the
        envelope's order, exactly like the per-element exchange.
        """
        if self.stage.key_fn is None or self.stage.parallelism == 1:
            # Unkeyed stages broadcast to subtask 0; any key modulo a
            # parallelism of 1 is also 0 — the envelope passes whole.
            buckets[0].append(envelope)
            return
        assigned: list[list[int]] = [[] for _ in self.subtasks]
        for index, row in enumerate(envelope.rows()):
            assigned[self.route(row)].append(index)
        for subtask, indices in enumerate(assigned):
            if indices:
                buckets[subtask].append(envelope.select(indices))

    def run_subtask(
        self, index: int, bucket: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], float]:
        """Run one subtask over its bucket plus the batch trigger.

        Returns the subtask's outputs (in emission order) and its busy
        time in seconds.  Each subtask owns its operator instance, so
        distinct subtasks may run concurrently; the *same* subtask must
        never run twice at once.
        """
        subtask = self.subtasks[index]
        outputs: list[Any] = []
        started = _time.perf_counter()
        for element in bucket:
            if isinstance(element, SnapshotBatch):
                outputs.extend(subtask.process_batch(element))
            else:
                outputs.extend(subtask.process(element))
        outputs.extend(subtask.end_batch(ctx))
        busy = _time.perf_counter() - started
        self._record_span(
            index, ctx, "unit", count_elements(bucket), len(outputs), busy
        )
        return outputs, busy

    def finish_subtask(self, index: int) -> tuple[list[Any], float]:
        """Flush one subtask's state; returns outputs and busy seconds."""
        outputs: list[Any] = []
        started = _time.perf_counter()
        outputs.extend(self.subtasks[index].finish())
        busy = _time.perf_counter() - started
        self._record_span(index, None, "finish", 0, len(outputs), busy)
        return outputs, busy

    def run(
        self, elements: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], StageWork]:
        """Process one unit of work serially; returns outputs and busy times.

        Every subtask's ``end_batch(ctx)`` runs after its elements, even
        when it received none this batch.
        """
        started = _time.perf_counter()
        buckets = self.partition(elements)
        outputs: list[Any] = []
        busy = [0.0] * len(self.subtasks)
        for index, bucket in enumerate(buckets):
            out, seconds = self.run_subtask(index, bucket, ctx)
            outputs.extend(out)
            busy[index] += seconds
        work = StageWork(
            name=self.stage.name,
            busy_seconds=busy,
            elements_in=count_elements(elements),
            elements_out=len(outputs),
            wall_seconds=_time.perf_counter() - started,
        )
        return outputs, work

    def finish(self) -> tuple[list[Any], StageWork]:
        """Flush every subtask's state serially; returns outputs and times."""
        started = _time.perf_counter()
        outputs: list[Any] = []
        busy = [0.0] * len(self.subtasks)
        for index in range(len(self.subtasks)):
            out, seconds = self.finish_subtask(index)
            outputs.extend(out)
            busy[index] += seconds
        work = StageWork(
            name=self.stage.name,
            busy_seconds=busy,
            elements_in=0,
            elements_out=len(outputs),
            wall_seconds=_time.perf_counter() - started,
        )
        return outputs, work


@dataclass(slots=True)
class Topology:
    """A linear chain of keyed stages (legacy builder).

    Retained as a thin convenience over the unified
    :class:`~repro.streaming.runtime.graph.JobGraph`; new code should
    describe dataflows through
    :class:`~repro.streaming.environment.StreamEnvironment` and compile
    them onto an execution backend.
    """

    stages: list[KeyedStage] = field(default_factory=list)

    def add(self, stage: KeyedStage) -> "Topology":
        """Append a stage and return the topology (chainable)."""
        self.stages.append(stage)
        return self

    def to_graph(self):
        """The equivalent :class:`~repro.streaming.runtime.graph.JobGraph`."""
        from repro.streaming.runtime.graph import JobGraph

        return JobGraph(list(self.stages))

    def build(self) -> list[StageRuntime]:
        """Instantiate the runtimes of every stage."""
        return [StageRuntime(stage) for stage in self.stages]


def run_unit(
    runtimes: Sequence[StageRuntime],
    elements: Sequence[Any],
    ctx: Any = None,
    backend: Any = None,
) -> tuple[list[Any], list[StageWork]]:
    """Push one unit of work (e.g. one snapshot) through every stage.

    ``backend`` selects the execution backend; ``None`` means the serial
    backend (the historical semantics of this function).
    """
    from repro.streaming.runtime.base import execute_unit

    return execute_unit(runtimes, elements, ctx=ctx, backend=backend)


def finish_all(
    runtimes: Sequence[StageRuntime],
    backend: Any = None,
) -> tuple[list[Any], list[StageWork]]:
    """Flush stage state at end of stream, cascading outputs downstream."""
    from repro.streaming.runtime.base import execute_finish

    return execute_finish(runtimes, backend=backend)
