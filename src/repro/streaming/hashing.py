"""Stable hashing for keyed exchanges.

Python's built-in ``hash()`` is salted per interpreter run (PYTHONHASHSEED),
so routing a key through ``hash(key) % parallelism`` lands on a different
subtask every run — fine for correctness, fatal for reproducing a run's
busy-time distribution or comparing two execution backends subtask by
subtask.  Real streaming systems (Flink's key groups, Kafka's default
partitioner) use a salt-free hash for exactly this reason.

:func:`stable_hash` is CRC32 over a canonical, unambiguous byte encoding of
the key.  The same key maps to the same 32-bit value in every interpreter
run, on every platform, under every backend — so keyed routing is a pure
function of the key and the stage parallelism.
"""

from __future__ import annotations

import zlib
from typing import Any


def canonical_encode(key: Any) -> bytes:
    """Encode a routing key as canonical, prefix-free bytes.

    Supported natively: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, ``tuple``/``list`` (recursively) and ``frozenset``/``set``
    (order-independent).  Every encoded item carries a type tag and a
    length prefix, so distinct keys cannot collide by concatenation
    (``("a,", "b")`` vs ``("a", ",b")``).  Anything else falls back to its
    ``repr``, which is deterministic for the value types used as keys here
    (dataclasses, named tuples).
    """
    if key is None:
        return b"n:"
    if isinstance(key, bool):
        return b"b:1" if key else b"b:0"
    if isinstance(key, int):
        text = str(key).encode("ascii")
        return b"i%d:%s" % (len(text), text)
    if isinstance(key, float):
        text = repr(key).encode("ascii")
        return b"f%d:%s" % (len(text), text)
    if isinstance(key, str):
        text = key.encode("utf-8")
        return b"s%d:%s" % (len(text), text)
    if isinstance(key, (bytes, bytearray)):
        data = bytes(key)
        return b"y%d:%s" % (len(data), data)
    if isinstance(key, (tuple, list)):
        body = b"".join(canonical_encode(item) for item in key)
        return b"t%d:%s" % (len(key), body)
    if isinstance(key, (frozenset, set)):
        body = b"".join(sorted(canonical_encode(item) for item in key))
        return b"z%d:%s" % (len(key), body)
    text = repr(key).encode("utf-8")
    return b"r%d:%s" % (len(text), text)


def stable_hash(key: Any) -> int:
    """Salt-free 32-bit hash of a routing key (CRC32 of the canonical form).

    Identical across interpreter runs, platforms and execution backends —
    the property keyed routing needs for reproducibility.
    """
    return zlib.crc32(canonical_encode(key)) & 0xFFFFFFFF
