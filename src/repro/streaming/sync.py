"""Time synchronisation via "last time" chaining (Section 4).

Flink does not guarantee that records are processed in event-time order,
but pattern detection requires ascending snapshots.  The paper attaches to
every record the *last time* — the discretized time of the trajectory's
previous report — so the operator can (i) restore each trajectory's order
exactly, and (ii) decide whether a snapshot still has to wait: a record
whose ``last_time`` names an unreleased predecessor proves that snapshot
``last_time`` is incomplete; conversely a chain that jumps from time 3 to
time 5 proves the trajectory reported nothing at time 4.

New trajectories (``last_time is None``) cannot be anticipated by chains
alone, so the operator additionally assumes *bounded delay*: a record with
event time ``tau`` arrives before any record with event time greater than
``tau + max_delay`` is fed.  Snapshot ``t`` is emitted once

* the discovery watermark has passed (``max_seen_time > t + max_delay``),
  so no unseen record for time <= t can still arrive, and
* no trajectory chain is blocked on a missing predecessor at a time <= t.

``flush()`` emits every remaining snapshot at end of stream.

Two ingestion paths share the chain machinery:

* :meth:`TimeSyncOperator.feed` — one record at a time, emitting
  materialised :class:`~repro.model.snapshot.Snapshot` objects (the
  historical contract);
* :meth:`TimeSyncOperator.feed_batch` — a whole
  :class:`~repro.model.batch.RecordBatch` at once, grouping the batch
  by trajectory with one stable argsort, advancing every touched chain
  once, and emitting *columnar*
  :class:`~repro.model.batch.SnapshotBatch` envelopes so the hot path
  never boxes per-point objects.  Feeding the same records through
  either path yields the identical snapshot contents; deferring
  emission to the batch boundary can only move an emission to a later
  call, never change what a snapshot contains (released pending records
  always carry times strictly above any snapshot already emittable).

Internally a pending record is a plain ``(time, seq, oid, x, y,
last_time)`` tuple — cheap to build from batch columns, totally ordered
by ``(time, seq)`` because the per-chain sequence number is unique.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

from repro.model.batch import NO_LAST_TIME, RecordBatch, SnapshotBatch
from repro.model.records import Location, StreamRecord
from repro.model.snapshot import Snapshot

#: A pending record row: ``(time, seq, oid, x, y, last_time-or-None)``.
_Row = tuple


class _SnapshotBuilder:
    """Accumulates one building snapshot's released rows as columns."""

    __slots__ = ("oids", "xs", "ys")

    def __init__(self) -> None:
        self.oids: list[int] = []
        self.xs: list[float] = []
        self.ys: list[float] = []

    def append(self, oid: int, x: float, y: float) -> None:
        """Register one released row (re-reports resolve at emit time)."""
        self.oids.append(oid)
        self.xs.append(x)
        self.ys.append(y)

    def to_snapshot(self, time: int) -> Snapshot:
        """Materialise the object form (dict last-wins, like ``add``)."""
        snapshot = Snapshot(time)
        for oid, x, y in zip(self.oids, self.xs, self.ys):
            snapshot.add(oid, Location(x, y))
        return snapshot

    def to_snapshot_batch(self, time: int) -> SnapshotBatch:
        """Materialise the columnar form (same last-wins dedup rule)."""
        return SnapshotBatch.from_rows(time, self.oids, self.xs, self.ys)


@dataclass(slots=True)
class _Chain:
    """Per-trajectory reassembly state."""

    released_up_to: int | None = None
    pending: list[_Row] = field(default_factory=list)
    _seq: int = 0

    def push(self, record: StreamRecord) -> None:
        """Insert one record into the time-sorted pending list.

        The sequence number breaks ordering ties between same-time
        records, preserving arrival order.
        """
        insort(
            self.pending,
            (
                record.time,
                self._seq,
                record.oid,
                record.x,
                record.y,
                record.last_time,
            ),
        )
        self._seq += 1

    def push_rows(self, rows: list[_Row]) -> None:
        """Merge a group of already-sequenced rows into the pending list.

        ``rows`` arrive in arrival order (sequence numbers assigned by
        the caller from this chain's counter); a single sort restores
        the ``(time, seq)`` pending order.
        """
        if self.pending:
            self.pending.extend(rows)
            self.pending.sort()
        else:
            rows.sort()
            self.pending = rows

    def next_seq(self, count: int) -> int:
        """Reserve ``count`` sequence numbers; returns the first."""
        first = self._seq
        self._seq += count
        return first

    def blocked_at(self) -> int | None:
        """Time of the missing predecessor, if the chain is blocked."""
        if not self.pending:
            return None
        last_time = self.pending[0][5]
        if last_time is None or last_time == self.released_up_to:
            return None
        return last_time

    def pop(self) -> _Row:
        """Release the earliest pending row and advance the chain."""
        row = self.pending.pop(0)
        self.released_up_to = row[0]
        return row


class TimeSyncOperator:
    """Reorders a trajectory stream into complete, ascending snapshots."""

    def __init__(self, max_delay: int = 0, trajectory_ttl: int | None = None):
        """``max_delay``: bounded-delay guarantee of the source, in
        discretized time units.  0 means the stream is already in
        event-time order across trajectories (records of one snapshot may
        still interleave arbitrarily).

        ``trajectory_ttl`` bounds chain state: a trajectory idle for more
        than this many time units behind the watermark is evicted, and a
        later reappearance is treated as a brand-new object (its
        ``last_time`` back-reference into the evicted past is dropped).
        Must exceed ``max_delay`` so eviction can never race records the
        bounded-delay contract still allows to arrive."""
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if trajectory_ttl is not None and trajectory_ttl <= max_delay:
            raise ValueError(
                f"trajectory_ttl must be > max_delay ({max_delay}), "
                f"got {trajectory_ttl}"
            )
        self.max_delay = max_delay
        self.trajectory_ttl = trajectory_ttl
        self._chains: dict[int, _Chain] = {}
        self._building: dict[int, _SnapshotBuilder] = {}
        self._max_seen: int | None = None
        self._emitted_up_to: int | None = None
        #: Times at or below this are evicted history: a ``last_time``
        #: pointing into it is dropped (the record opens a fresh chain).
        self._eviction_horizon: int | None = None
        #: Total chains evicted by the TTL policy.
        self.chains_evicted = 0

    def feed(self, record: StreamRecord) -> list[Snapshot]:
        """Accept one record; return any snapshots that became complete."""
        self._check_not_stale(record.time)
        chain = self._chains.setdefault(record.oid, _Chain())
        last = self._effective_last(record.last_time)
        if last is not record.last_time:
            record = StreamRecord(
                oid=record.oid,
                time=record.time,
                x=record.x,
                y=record.y,
                last_time=last,
            )
        chain.push(record)
        if self._max_seen is None or record.time > self._max_seen:
            self._max_seen = record.time
        self._release_chain(chain)
        return self._emit_ready()

    def feed_batch(self, batch: RecordBatch) -> list[SnapshotBatch]:
        """Accept a whole columnar batch; return completed snapshots.

        The batch is grouped by trajectory with one stable sort, each
        touched chain advances once, and the watermark is evaluated once
        at the batch boundary — equivalent to feeding every record
        through :meth:`feed` in order, except that snapshots are
        returned in columnar :class:`SnapshotBatch` form and a
        bounded-delay violation *inside* one batch (a record arriving
        after its own batch made its snapshot emittable) is absorbed
        into the still-pending snapshot instead of raising mid-batch.

        Raises:
            ValueError: when any record's time is at or below a snapshot
                already emitted by a previous call (the same staleness
                contract as :meth:`feed`).
        """
        if not len(batch):
            return []
        self._check_not_stale(batch.min_time())
        oids, xs, ys, times, lasts = batch.column_lists()
        n = len(oids)
        if n == 1:
            chain = self._chains.setdefault(oids[0], _Chain())
            last = lasts[0]
            chain.push_rows(
                [
                    (
                        times[0],
                        chain.next_seq(1),
                        oids[0],
                        xs[0],
                        ys[0],
                        self._effective_last(
                            None if last == NO_LAST_TIME else last
                        ),
                    )
                ]
            )
            self._release_chain(chain)
        else:
            # Group rows by oid, preserving arrival order within each
            # group so sequence numbers replay per-point tie-breaking.
            groups: dict[int, list[_Row]] = {}
            for i in range(n):
                last = lasts[i]
                row = (
                    times[i],
                    0,  # sequenced below, once the group is complete
                    oids[i],
                    xs[i],
                    ys[i],
                    self._effective_last(
                        None if last == NO_LAST_TIME else last
                    ),
                )
                group = groups.get(oids[i])
                if group is None:
                    groups[oids[i]] = [row]
                else:
                    group.append(row)
            for oid, rows in groups.items():
                chain = self._chains.setdefault(oid, _Chain())
                base = chain.next_seq(len(rows))
                chain.push_rows(
                    [
                        (row[0], base + j, *row[2:])
                        for j, row in enumerate(rows)
                    ]
                )
                self._release_chain(chain)
        max_time = batch.max_time()
        if self._max_seen is None or max_time > self._max_seen:
            self._max_seen = max_time
        return self._emit_ready(columnar=True)

    def flush(self) -> list[Snapshot]:
        """End of stream: release everything and emit remaining snapshots."""
        # Chains blocked on a predecessor that never arrived indicate data
        # loss; releasing in time order is the best-effort semantics.
        for chain in self._chains.values():
            while chain.pending:
                time, _seq, oid, x, y, _last = chain.pop()
                self._builder(time).append(oid, x, y)
        snapshots = [
            self._building[t].to_snapshot(t) for t in sorted(self._building)
        ]
        self._building.clear()
        if snapshots:
            self._emitted_up_to = snapshots[-1].time
        return snapshots

    # ------------------------------------------------------------------ internals

    def _check_not_stale(self, time: int) -> None:
        if self._emitted_up_to is not None and time <= self._emitted_up_to:
            raise ValueError(
                f"record for t={time} arrived after snapshot "
                f"{self._emitted_up_to} was emitted; max_delay={self.max_delay} "
                "is too small for this stream"
            )

    def _builder(self, time: int) -> _SnapshotBuilder:
        builder = self._building.get(time)
        if builder is None:
            builder = self._building[time] = _SnapshotBuilder()
        return builder

    def _release_chain(self, chain: _Chain) -> None:
        """Release the chain's ready prefix into the building snapshots.

        Chains are independent (a release can only unblock records of
        the *same* trajectory), so only chains the current feed touched
        need advancing.
        """
        pending = chain.pending
        up_to = chain.released_up_to
        i = 0
        count = len(pending)
        while i < count:
            row = pending[i]
            if row[5] != up_to:
                break
            up_to = row[0]
            self._builder(row[0]).append(row[2], row[3], row[4])
            i += 1
        if i:
            chain.released_up_to = up_to
            del pending[:i]

    def _effective_last(self, last: int | None) -> int | None:
        """Drop back-references into evicted history (fresh-object rule)."""
        if (
            last is not None
            and self._eviction_horizon is not None
            and last <= self._eviction_horizon
        ):
            return None
        return last

    def _evict_idle_chains(self, watermark: int) -> None:
        """TTL policy: forget chains idle past ``watermark - ttl``.

        Only *idle* chains (nothing pending) are eligible — a chain with
        pending rows is still reassembling and holds the watermark back
        itself.  Every eviction advances the horizon so that a
        reappearing trajectory's ``last_time`` back-reference is dropped
        by :meth:`_effective_last` and the object starts a fresh chain
        instead of blocking forever on forgotten history.
        """
        horizon = watermark - self.trajectory_ttl
        if self._eviction_horizon is None or horizon > self._eviction_horizon:
            self._eviction_horizon = horizon
        evicted = [
            oid
            for oid, chain in self._chains.items()
            if not chain.pending
            and chain.released_up_to is not None
            and chain.released_up_to <= horizon
        ]
        for oid in evicted:
            del self._chains[oid]
        self.chains_evicted += len(evicted)

    def _emit_ready(self, columnar: bool = False):
        if self._max_seen is None:
            return []
        watermark = self._max_seen - self.max_delay - 1
        for chain in self._chains.values():
            blocked = chain.blocked_at()
            if blocked is not None and blocked - 1 < watermark:
                watermark = blocked - 1
        if self.trajectory_ttl is not None:
            self._evict_idle_chains(watermark)
        out: list = []
        for t in sorted(self._building):
            if t > watermark:
                break
            builder = self._building.pop(t)
            out.append(
                builder.to_snapshot_batch(t)
                if columnar
                else builder.to_snapshot(t)
            )
        if out:
            self._emitted_up_to = out[-1].time
        return out

    def watermark_lag(self) -> int:
        """Event-time distance between ingest frontier and emission.

        ``max_seen - emitted_up_to``: how far the newest record seen is
        ahead of the newest snapshot emitted — the sync-operator lag the
        observability gauge ``repro_watermark_lag`` reports.  Zero until
        anything has been seen; ``max_seen`` itself until the first
        emission (relative to an implicit emitted time of ``-1``, so a
        stream that emits immediately reports a small, honest lag rather
        than its absolute timestamp).
        """
        if self._max_seen is None:
            return 0
        emitted = self._emitted_up_to if self._emitted_up_to is not None else -1
        return self._max_seen - emitted

    # ------------------------------------------------------------------ state

    def snapshot_state(self) -> dict:
        """Serializable payload capturing every chain and building snapshot."""
        return {
            "chains": {
                oid: (chain.released_up_to, list(chain.pending), chain._seq)
                for oid, chain in self._chains.items()
            },
            "building": {
                t: (list(b.oids), list(b.xs), list(b.ys))
                for t, b in self._building.items()
            },
            "max_seen": self._max_seen,
            "emitted_up_to": self._emitted_up_to,
            "eviction_horizon": self._eviction_horizon,
            "chains_evicted": self.chains_evicted,
        }

    def restore_state(self, payload: dict) -> None:
        """Adopt a payload produced by :meth:`snapshot_state`."""
        self._chains = {
            oid: _Chain(
                released_up_to=released, pending=list(rows), _seq=seq
            )
            for oid, (released, rows, seq) in payload["chains"].items()
        }
        self._building = {}
        for t, (oids, xs, ys) in payload["building"].items():
            builder = self._builder(t)
            builder.oids = list(oids)
            builder.xs = list(xs)
            builder.ys = list(ys)
        self._max_seen = payload["max_seen"]
        self._emitted_up_to = payload["emitted_up_to"]
        self._eviction_horizon = payload["eviction_horizon"]
        self.chains_evicted = payload["chains_evicted"]

    def state_metrics(self) -> dict[str, int]:
        """Memory accounting: chain/pending/building sizes and evictions."""
        return {
            "chains": len(self._chains),
            "pending_records": sum(
                len(chain.pending) for chain in self._chains.values()
            ),
            "building_snapshots": len(self._building),
            "chains_evicted": self.chains_evicted,
        }
