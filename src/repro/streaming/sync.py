"""Time synchronisation via "last time" chaining (Section 4).

Flink does not guarantee that records are processed in event-time order,
but pattern detection requires ascending snapshots.  The paper attaches to
every record the *last time* — the discretized time of the trajectory's
previous report — so the operator can (i) restore each trajectory's order
exactly, and (ii) decide whether a snapshot still has to wait: a record
whose ``last_time`` names an unreleased predecessor proves that snapshot
``last_time`` is incomplete; conversely a chain that jumps from time 3 to
time 5 proves the trajectory reported nothing at time 4.

New trajectories (``last_time is None``) cannot be anticipated by chains
alone, so the operator additionally assumes *bounded delay*: a record with
event time ``tau`` arrives before any record with event time greater than
``tau + max_delay`` is fed.  Snapshot ``t`` is emitted once

* the discovery watermark has passed (``max_seen_time > t + max_delay``),
  so no unseen record for time <= t can still arrive, and
* no trajectory chain is blocked on a missing predecessor at a time <= t.

``flush()`` emits every remaining snapshot at end of stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.model.records import StreamRecord
from repro.model.snapshot import Snapshot


@dataclass(slots=True)
class _Chain:
    """Per-trajectory reassembly state."""

    released_up_to: int | None = None
    pending: list[tuple[int, int, StreamRecord]] = field(default_factory=list)
    _push_count: int = 0

    def push(self, record: StreamRecord) -> None:
        # The counter breaks heap ties; StreamRecord itself is unordered.
        heapq.heappush(self.pending, (record.time, self._push_count, record))
        self._push_count += 1

    def releasable(self) -> StreamRecord | None:
        """The next record if its predecessor has been released."""
        if not self.pending:
            return None
        record = self.pending[0][2]
        if record.last_time == self.released_up_to or (
            record.last_time is None and self.released_up_to is None
        ):
            return record
        return None

    def blocked_at(self) -> int | None:
        """Time of the missing predecessor, if the chain is blocked."""
        if not self.pending:
            return None
        record = self.pending[0][2]
        if record.last_time is None or record.last_time == self.released_up_to:
            return None
        return record.last_time

    def pop(self) -> StreamRecord:
        record = heapq.heappop(self.pending)[2]
        self.released_up_to = record.time
        return record


class TimeSyncOperator:
    """Reorders a trajectory stream into complete, ascending snapshots."""

    def __init__(self, max_delay: int = 0):
        """``max_delay``: bounded-delay guarantee of the source, in
        discretized time units.  0 means the stream is already in
        event-time order across trajectories (records of one snapshot may
        still interleave arbitrarily)."""
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.max_delay = max_delay
        self._chains: dict[int, _Chain] = {}
        self._building: dict[int, Snapshot] = {}
        self._max_seen: int | None = None
        self._emitted_up_to: int | None = None

    def feed(self, record: StreamRecord) -> list[Snapshot]:
        """Accept one record; return any snapshots that became complete."""
        if (
            self._emitted_up_to is not None
            and record.time <= self._emitted_up_to
        ):
            raise ValueError(
                f"record for t={record.time} arrived after snapshot "
                f"{self._emitted_up_to} was emitted; max_delay={self.max_delay} "
                "is too small for this stream"
            )
        chain = self._chains.setdefault(record.oid, _Chain())
        chain.push(record)
        if self._max_seen is None or record.time > self._max_seen:
            self._max_seen = record.time
        self._release_chains()
        return self._emit_ready()

    def flush(self) -> list[Snapshot]:
        """End of stream: release everything and emit remaining snapshots."""
        # Chains blocked on a predecessor that never arrived indicate data
        # loss; releasing in time order is the best-effort semantics.
        for chain in self._chains.values():
            while chain.pending:
                record = chain.pop()
                self._building.setdefault(
                    record.time, Snapshot(record.time)
                ).add_record(record)
        snapshots = [self._building[t] for t in sorted(self._building)]
        self._building.clear()
        if snapshots:
            self._emitted_up_to = snapshots[-1].time
        return snapshots

    # ------------------------------------------------------------------ internals

    def _release_chains(self) -> None:
        for chain in self._chains.values():
            while True:
                record = chain.releasable()
                if record is None:
                    break
                chain.pop()
                self._building.setdefault(
                    record.time, Snapshot(record.time)
                ).add_record(record)

    def _emit_ready(self) -> list[Snapshot]:
        if self._max_seen is None:
            return []
        watermark = self._max_seen - self.max_delay - 1
        blocked = [
            chain.blocked_at()
            for chain in self._chains.values()
            if chain.blocked_at() is not None
        ]
        if blocked:
            watermark = min(watermark, min(blocked) - 1)
        out: list[Snapshot] = []
        for t in sorted(self._building):
            if t > watermark:
                break
            out.append(self._building.pop(t))
        if out:
            self._emitted_up_to = out[-1].time
        return out
