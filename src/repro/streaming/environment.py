"""A fluent, Flink-flavoured builder over the unified job graph.

The ICPE pipeline and ad-hoc dataflows alike describe their topology
through this module; ``compile()`` lowers the description onto a shared
:class:`~repro.streaming.runtime.graph.JobGraph` and binds it to an
execution backend::

    env = StreamEnvironment()
    (env.source()
        .key_by(lambda r: r.oid, name="by-id")
        .flat_map(split_fn, parallelism=8)
        .key_by(lambda go: go.key, name="by-cell")
        .process(JoinOperator, parallelism=16)
        .sink(collect))
    job = env.compile()                       # serial (default)
    par = env.compile(ParallelBackend(8))     # same graph, worker pool
    outputs, works = job.run(elements, ctx=time)

One environment describes one topology but may be compiled any number of
times; every :class:`Job` gets fresh, independent operator instances, and
``Job.stage_names`` is stable across compiles (names are fixed when the
stage is described, not when it is instantiated).

Stages execute with per-subtask busy-time accounting, so a job built here
plugs straight into the cluster cost model.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.streaming.dataflow import (
    FnOperator,
    KeyedStage,
    Operator,
    StageWork,
)
from repro.streaming.runtime.base import (
    ExecutionBackend,
    GraphSpec,
    execute_finish,
    execute_unit,
    resolve_backend,
)
from repro.streaming.runtime.graph import JobGraph


class _MapOperator(Operator):
    def __init__(self, fn: Callable[[Any], Any]):
        self._fn = fn

    def process(self, element: Any) -> Iterable[Any]:
        yield self._fn(element)


class _FilterOperator(Operator):
    def __init__(self, predicate: Callable[[Any], bool]):
        self._predicate = predicate

    def process(self, element: Any) -> Iterable[Any]:
        if self._predicate(element):
            yield element


class _SinkOperator(Operator):
    def __init__(self, consume: Callable[[Any], None]):
        self._consume = consume

    def process(self, element: Any) -> Iterable[Any]:
        self._consume(element)
        return ()


class DataStream:
    """A stream handle accumulating stages on its environment."""

    def __init__(self, env: "StreamEnvironment"):
        self._env = env
        self._pending_key: Callable[[Any], Any] | None = None
        self._pending_name: str | None = None

    def key_by(
        self, key_fn: Callable[[Any], Any], name: str | None = None
    ) -> "DataStream":
        """Route the *next* operator's input by this key."""
        self._pending_key = key_fn
        if name is not None:
            self._pending_name = name
        return self

    def _take_key(self):
        key, self._pending_key = self._pending_key, None
        name, self._pending_name = self._pending_name, None
        return key, name

    def _add(
        self,
        factory: Callable[[], Operator],
        parallelism: int,
        default_name: str,
    ) -> "DataStream":
        key_fn, name = self._take_key()
        self._env._stages.append(
            KeyedStage(
                name=name or f"{default_name}-{len(self._env._stages)}",
                operator_factory=factory,
                parallelism=parallelism,
                key_fn=key_fn,
            )
        )
        return self

    def map(self, fn: Callable[[Any], Any], parallelism: int = 1) -> "DataStream":
        """Element-wise transform."""
        return self._add(lambda: _MapOperator(fn), parallelism, "map")

    def flat_map(
        self, fn: Callable[[Any], Iterable[Any]], parallelism: int = 1
    ) -> "DataStream":
        """One-to-many transform."""
        return self._add(lambda: FnOperator(fn), parallelism, "flat-map")

    def filter(
        self, predicate: Callable[[Any], bool], parallelism: int = 1
    ) -> "DataStream":
        """Keep elements satisfying the predicate."""
        return self._add(lambda: _FilterOperator(predicate), parallelism, "filter")

    def process(
        self,
        operator_factory: Callable[[], Operator],
        parallelism: int = 1,
        name: str | None = None,
    ) -> "DataStream":
        """Attach a stateful operator (one instance per subtask)."""
        if name is not None:
            self._pending_name = name
        return self._add(operator_factory, parallelism, "process")

    def sink(self, consume: Callable[[Any], None]) -> "DataStream":
        """Terminal consumer (single subtask)."""
        return self._add(lambda: _SinkOperator(consume), 1, "sink")


class Job:
    """A compiled job: a graph's runtimes bound to an execution backend.

    A backend passed in as an *instance* is borrowed (backends are
    reusable across jobs); one created here from a name or ``None`` is
    owned.  :meth:`close` only shuts down owned backends — callers who
    share one backend across jobs close it themselves.
    """

    def __init__(
        self,
        graph: JobGraph,
        backend: ExecutionBackend | str | None = None,
        graph_spec: GraphSpec | None = None,
    ):
        self.graph = graph
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend)
        if graph_spec is not None:
            # Process-isolated backends rebuild operator state per worker
            # from the spec; in-process backends ignore the offer.
            self.backend.bind_graph(graph_spec)
        self.runtimes = graph.build_runtimes()

    def run(
        self, elements: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], list[StageWork]]:
        """Push one unit of work (e.g. a snapshot) through the job."""
        return execute_unit(self.runtimes, elements, ctx, backend=self.backend)

    def finish(self) -> tuple[list[Any], list[StageWork]]:
        """Flush all operator state at end of stream."""
        return execute_finish(self.runtimes, backend=self.backend)

    def close(self) -> None:
        """Release the backend's resources, if this job owns the backend.

        No-op for a caller-supplied backend instance (which may be shared
        with other jobs); close such backends directly.
        """
        if self._owns_backend:
            self.backend.close()

    @property
    def stage_names(self) -> list[str]:
        """Stage names in pipeline order."""
        return self.graph.stage_names


class StreamEnvironment:
    """Builder entry point: describe once, compile many."""

    def __init__(self):
        self._stages: list[KeyedStage] = []

    def source(self) -> DataStream:
        """Start describing the dataflow from the (external) source."""
        return DataStream(self)

    def graph(self) -> JobGraph:
        """The described topology as a shared :class:`JobGraph`."""
        if not self._stages:
            raise ValueError("no stages defined")
        return JobGraph(list(self._stages))

    def compile(
        self,
        backend: ExecutionBackend | str | None = None,
        graph_spec: GraphSpec | None = None,
    ) -> Job:
        """Instantiate an independent job over the described topology.

        May be called any number of times; each call yields a job with
        fresh operator instances, optionally bound to a non-default
        execution backend (an instance or a name, e.g. ``"parallel"``).
        ``graph_spec`` — a picklable recipe rebuilding this same
        topology — is required by process-isolated backends (e.g.
        ``"process"``), which cannot receive the operator instances
        compiled here and instead rebuild their own per worker; other
        backends ignore it.
        """
        return Job(self.graph(), backend=backend, graph_spec=graph_spec)
