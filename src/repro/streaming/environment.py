"""A fluent, Flink-flavoured builder over the staged topology.

The ICPE pipeline wires :class:`~repro.streaming.dataflow.KeyedStage`
objects directly; this module offers the programming-model veneer the
paper's implementation would use::

    env = StreamEnvironment()
    (env.source()
        .key_by(lambda r: r.oid, name="by-id")
        .flat_map(split_fn, parallelism=8)
        .key_by(lambda go: go.key, name="by-cell")
        .process(JoinOperator, parallelism=16)
        .sink(collect))
    job = env.compile()
    outputs, works = job.run(elements, ctx=time)

Stages execute with per-subtask busy-time accounting, so a job built here
plugs straight into the cluster cost model.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.streaming.dataflow import (
    FnOperator,
    KeyedStage,
    Operator,
    StageRuntime,
    StageWork,
    finish_all,
    run_unit,
)


class _MapOperator(Operator):
    def __init__(self, fn: Callable[[Any], Any]):
        self._fn = fn

    def process(self, element: Any) -> Iterable[Any]:
        yield self._fn(element)


class _FilterOperator(Operator):
    def __init__(self, predicate: Callable[[Any], bool]):
        self._predicate = predicate

    def process(self, element: Any) -> Iterable[Any]:
        if self._predicate(element):
            yield element


class _SinkOperator(Operator):
    def __init__(self, consume: Callable[[Any], None]):
        self._consume = consume

    def process(self, element: Any) -> Iterable[Any]:
        self._consume(element)
        return ()


class DataStream:
    """A stream handle accumulating stages on its environment."""

    def __init__(self, env: "StreamEnvironment"):
        self._env = env
        self._pending_key: Callable[[Any], Any] | None = None
        self._pending_name: str | None = None

    def key_by(
        self, key_fn: Callable[[Any], Any], name: str | None = None
    ) -> "DataStream":
        """Route the *next* operator's input by this key."""
        self._pending_key = key_fn
        if name is not None:
            self._pending_name = name
        return self

    def _take_key(self):
        key, self._pending_key = self._pending_key, None
        name, self._pending_name = self._pending_name, None
        return key, name

    def _add(
        self,
        factory: Callable[[], Operator],
        parallelism: int,
        default_name: str,
    ) -> "DataStream":
        key_fn, name = self._take_key()
        self._env._stages.append(
            KeyedStage(
                name=name or f"{default_name}-{len(self._env._stages)}",
                operator_factory=factory,
                parallelism=parallelism,
                key_fn=key_fn,
            )
        )
        return self

    def map(self, fn: Callable[[Any], Any], parallelism: int = 1) -> "DataStream":
        """Element-wise transform."""
        return self._add(lambda: _MapOperator(fn), parallelism, "map")

    def flat_map(
        self, fn: Callable[[Any], Iterable[Any]], parallelism: int = 1
    ) -> "DataStream":
        """One-to-many transform."""
        return self._add(lambda: FnOperator(fn), parallelism, "flat-map")

    def filter(
        self, predicate: Callable[[Any], bool], parallelism: int = 1
    ) -> "DataStream":
        """Keep elements satisfying the predicate."""
        return self._add(lambda: _FilterOperator(predicate), parallelism, "filter")

    def process(
        self,
        operator_factory: Callable[[], Operator],
        parallelism: int = 1,
        name: str | None = None,
    ) -> "DataStream":
        """Attach a stateful operator (one instance per subtask)."""
        if name is not None:
            self._pending_name = name
        return self._add(operator_factory, parallelism, "process")

    def sink(self, consume: Callable[[Any], None]) -> "DataStream":
        """Terminal consumer (single subtask)."""
        return self._add(lambda: _SinkOperator(consume), 1, "sink")


class Job:
    """A compiled topology ready to execute units of work."""

    def __init__(self, runtimes: list[StageRuntime]):
        self.runtimes = runtimes

    def run(
        self, elements: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], list[StageWork]]:
        """Push one unit of work (e.g. a snapshot) through the job."""
        return run_unit(self.runtimes, elements, ctx)

    def finish(self) -> tuple[list[Any], list[StageWork]]:
        """Flush all operator state at end of stream."""
        return finish_all(self.runtimes)

    @property
    def stage_names(self) -> list[str]:
        """Stage names in pipeline order."""
        return [runtime.stage.name for runtime in self.runtimes]


class StreamEnvironment:
    """Builder entry point."""

    def __init__(self):
        self._stages: list[KeyedStage] = []
        self._compiled = False

    def source(self) -> DataStream:
        """Start describing the dataflow from the (external) source."""
        return DataStream(self)

    def compile(self) -> Job:
        """Instantiate every stage's subtasks; may be called once."""
        if self._compiled:
            raise RuntimeError("environment already compiled")
        if not self._stages:
            raise ValueError("no stages defined")
        self._compiled = True
        return Job([StageRuntime(stage) for stage in self._stages])
