"""The process execution backend: shared-nothing workers, shared-memory
exchanges.

A persistent pool of spawn-safe worker processes executes every stage's
subtasks outside the master interpreter — no GIL contention between
subtasks, real multi-core parallelism for pure-Python operator code.
Subtask ``i`` of every stage lives in worker ``i % workers`` for the life
of the job, so each worker owns a fixed, disjoint slice of the operator
state: the shared-nothing contract of the paper's Flink deployment.

Because operator state cannot be shipped across a process boundary, the
backend must be handed a picklable :class:`~repro.streaming.runtime.base.
GraphSpec` via :meth:`ProcessBackend.bind_graph` before it runs; every
worker rebuilds the full job graph from the spec after spawn and keeps
its own operator instances.  Drivers that route work through the backend
(the ICPE pipeline, ``StreamEnvironment.compile(graph_spec=...)``) do
this automatically.

The keyed exchange stays on the master: elements are bucketed once per
stage with the shared :meth:`StageRuntime.partition` (identical routing
to every other backend), and each worker receives its subtasks' complete
buckets up front.  Array-backed :class:`~repro.model.batch.SnapshotBatch`
envelopes do not travel through the command pipe — their columns are
written into pooled ``multiprocessing.shared_memory`` segments
(:class:`~repro.streaming.runtime.shm.SegmentPool`) and only a small
:class:`~repro.streaming.dataflow.ShmEnvelope` token crosses the pipe;
the worker rebuilds the batch as zero-copy read-only NumPy views over
the segment.  Everything else (plain elements, list-backed or empty
batches) rides the pipe's pickle path.

Outputs are concatenated in subtask-index order, exactly like the serial
and parallel backends, so the emitted element sequence — and every
detected pattern — is identical by construction.  Worker crashes surface
as a clean :class:`RuntimeError` carrying the exit code; :meth:`close`
drains and joins the pool and unlinks every pooled segment.
"""

from __future__ import annotations

import multiprocessing
import time as _time
import traceback
from multiprocessing import shared_memory
from typing import Any, Sequence

from repro.streaming.dataflow import (
    StageRuntime,
    StageWork,
    count_elements,
    decode_exchange_elements,
    encode_exchange_elements,
)
from repro.state.codec import decode_payload, encode_payload
from repro.streaming.runtime.base import ExecutionBackend, GraphSpec
from repro.streaming.runtime.parallel import default_worker_count
from repro.streaming.runtime.shm import SegmentPool

#: Seconds to wait for a worker to exit voluntarily on close.
_JOIN_TIMEOUT = 5.0


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a master-owned segment without adopting ownership.

    On Python 3.13+ ``track=False`` keeps the resource tracker out of
    it.  Older interpreters register every attach with the resource
    tracker — harmless *here*, because spawned children share the
    master's tracker process, its cache is a name set (idempotent
    re-registration), and the master's eventual ``unlink`` removes the
    entry exactly once.  Manually unregistering instead would clobber
    the master's own registration through that shared tracker and
    produce ``KeyError`` noise at unlink time — so, counter to the
    usual 3.11 folklore, the attach is left tracked.  Workers only ever
    read segments; create/unlink stays with the master's pool.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 signature
        return shared_memory.SharedMemory(name=name)


class _WorkerState:
    """Everything one worker process owns (worker side)."""

    def __init__(self, spec: GraphSpec):
        self.runtimes = spec.build().build_runtimes()
        #: Segments currently attached; close is retried after every
        #: message until no exported view keeps the mapping alive.
        self.attached: dict[str, shared_memory.SharedMemory] = {}

    def stage_names(self) -> list[str]:
        return [runtime.stage.name for runtime in self.runtimes]

    def attach(self, name: str):
        segment = self.attached.get(name)
        if segment is None:
            segment = _attach_segment(name)
            self.attached[name] = segment
        return segment.buf

    def run(self, stage_index: int, ctx, tasks) -> list[tuple]:
        results = []
        runtime = self.runtimes[stage_index]
        for subtask_index, bucket in tasks:
            decoded = decode_exchange_elements(bucket, self.attach)
            outputs, busy = runtime.run_subtask(subtask_index, decoded, ctx)
            del decoded
            # The spans this invocation recorded ride the reply as the
            # 4th entry, so master-side telemetry is complete under
            # process isolation.
            results.append(
                (subtask_index, outputs, busy, runtime.drain_spans())
            )
        return results

    def finish(self, stage_index: int, indices) -> list[tuple]:
        runtime = self.runtimes[stage_index]
        results = []
        for index in indices:
            outputs, busy = runtime.finish_subtask(index)
            results.append((index, outputs, busy, runtime.drain_spans()))
        return results

    def collect_states(self, stage_index: int, tasks) -> list[tuple]:
        """Serve a ``state`` command: capture this worker's subtask state.

        ``tasks`` is ``[(subtask_index, known_digest | None), ...]``;
        replies ``(subtask_index, digest, payload_bytes | None)`` per
        stateful subtask, with ``None`` bytes when the digest matches
        what the master already holds (incremental capture).
        """
        runtime = self.runtimes[stage_index]
        results = []
        for subtask_index, known_digest in tasks:
            payload = runtime.subtasks[subtask_index].snapshot_state()
            if payload is None:
                continue
            digest, data = encode_payload(payload)
            results.append(
                (subtask_index, digest, None if digest == known_digest else data)
            )
        return results

    def restore_states(self, stage_index: int, tasks) -> list[tuple]:
        """Serve a ``restore`` command: adopt checkpointed subtask state."""
        runtime = self.runtimes[stage_index]
        for subtask_index, data in tasks:
            runtime.subtasks[subtask_index].restore_state(decode_payload(data))
        return []

    def collect_metrics(self, stage_index: int, indices) -> list[tuple]:
        """Serve a ``metrics`` command: per-subtask memory accounting."""
        runtime = self.runtimes[stage_index]
        results = []
        for subtask_index in indices:
            metrics = runtime.subtasks[subtask_index].state_metrics()
            if metrics:
                results.append((subtask_index, metrics))
        return results

    def collect_protected(self, stage_index: int, indices) -> list[tuple]:
        """Serve a ``protected`` command: per-subtask shed-protected oids."""
        runtime = self.runtimes[stage_index]
        results = []
        for subtask_index in indices:
            query = getattr(
                runtime.subtasks[subtask_index], "protected_oids", None
            )
            if query is None:
                continue
            protected = query()
            if protected:
                results.append((subtask_index, protected))
        return results

    def collect_forming(self, stage_index: int, indices) -> list[tuple]:
        """Serve a ``forming`` command: per-subtask forming descriptors."""
        runtime = self.runtimes[stage_index]
        results = []
        for subtask_index in indices:
            query = getattr(
                runtime.subtasks[subtask_index], "forming_candidates", None
            )
            if query is None:
                continue
            forming = query()
            if forming:
                results.append((subtask_index, forming))
        return results

    def sweep_attached(self) -> list[str]:
        """Detach every segment no live view still aliases.

        Returns the names released — the master returns those segments
        to its pool for reuse.  A ``BufferError`` means some output
        element still references the mapping (an operator emitted a view
        of its input); the segment is kept and the close retried after
        the next message, and the master retires it instead of reusing
        it.
        """
        released = []
        for name, segment in list(self.attached.items()):
            try:
                segment.close()
            except BufferError:
                continue
            del self.attached[name]
            released.append(name)
        return released

    def close(self) -> None:
        for segment in self.attached.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views at shutdown
                pass
        self.attached.clear()


def _worker_main(conn, spec: GraphSpec, worker_index: int) -> None:
    """Entry point of one worker process: build the graph, serve the pipe.

    Replies ``("ready", stage_names)`` after a successful build, then
    answers ``run`` / ``finish`` / ``state`` / ``restore`` / ``metrics``
    / ``protected`` / ``forming`` commands with ``("ok", results, released_segments)`` until a
    ``close`` command (or a dropped pipe) ends the loop.  Any exception travels back as ``("error",
    traceback)`` instead of killing the worker.
    """
    try:
        state = _WorkerState(spec)
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ready", state.stage_names()))
    while True:
        try:
            message = conn.recv()
        except EOFError:  # master vanished; nothing left to serve
            break
        op = message[0]
        if op == "close":
            state.close()
            conn.send(("closed",))
            break
        try:
            if op == "run":
                _, stage_index, ctx, tasks = message
                results = state.run(stage_index, ctx, tasks)
            elif op == "finish":
                _, stage_index, indices = message
                results = state.finish(stage_index, indices)
            elif op == "state":
                _, stage_index, tasks = message
                results = state.collect_states(stage_index, tasks)
            elif op == "restore":
                _, stage_index, tasks = message
                results = state.restore_states(stage_index, tasks)
            elif op == "metrics":
                _, stage_index, indices = message
                results = state.collect_metrics(stage_index, indices)
            elif op == "protected":
                _, stage_index, indices = message
                results = state.collect_protected(stage_index, indices)
            elif op == "forming":
                _, stage_index, indices = message
                results = state.collect_forming(stage_index, indices)
            else:
                raise ValueError(f"unknown worker command {op!r}")
        except BaseException:
            conn.send(("error", traceback.format_exc()))
            continue
        conn.send(("ok", results, state.sweep_attached()))
    conn.close()


class ProcessBackend(ExecutionBackend):
    """Shared-nothing subtask execution on a pool of worker processes.

    Attributes:
        max_workers: pool size; ``None`` picks
            :func:`~repro.streaming.runtime.parallel.default_worker_count`
            (affinity-aware).  Stages with fewer subtasks than workers
            leave workers idle for that stage; stages with more give
            each worker several subtasks.
    """

    name = "process"
    supports_batch_ingest = True
    supports_process_isolation = True
    supports_checkpoint = True

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._spec: GraphSpec | None = None
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._conns: list[Any] = []
        self._stage_index: dict[str, int] = {}
        self._pool = SegmentPool()
        #: Names of segments handed out during the current unit of work.
        self._outstanding: list[str] = []
        self._closed = False

    @property
    def workers(self) -> int:
        """The effective worker-pool size."""
        return self.max_workers or default_worker_count()

    # ---------------------------------------------------------------- lifecycle

    def bind_graph(self, spec: GraphSpec) -> None:
        """Bind the job description and warm the worker pool up eagerly.

        Spawning interpreters is the expensive part of this backend, so
        it happens here — at pipeline-construction time — rather than on
        the first unit of work; steady-state ``run_stage`` calls never
        pay it.
        """
        if self._closed:
            raise RuntimeError("process backend already closed")
        if self._processes:
            raise RuntimeError(
                "process backend already bound to a graph; use one "
                "ProcessBackend instance per job graph"
            )
        self._spec = spec
        self.warm_up()

    def warm_up(self) -> None:
        """Spawn the workers and wait for every graph rebuild (idempotent).

        Uses the ``spawn`` start method unconditionally — fork would
        duplicate the master's thread and lock state, and the paper's
        deployment model (independent task-manager JVMs) is spawn-shaped
        anyway.  Raises ``RuntimeError`` if any worker fails to rebuild
        the graph, or if the graph's stage names are not unique (names
        are the master↔worker stage addressing scheme).
        """
        if self._processes:
            return
        if self._spec is None:
            raise RuntimeError(
                "process backend has no job graph; call "
                "bind_graph(GraphSpec(builder, args)) first — the ICPE "
                "pipeline and StreamEnvironment.compile(graph_spec=...) "
                "do this automatically"
            )
        ctx = multiprocessing.get_context("spawn")
        for index in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, self._spec, index),
                name=f"repro-worker-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)
        names: list[str] | None = None
        for index in range(self.workers):
            reply = self._recv(index)
            if reply[0] != "ready":
                self.close()
                raise RuntimeError(
                    f"worker {index} failed to build the job graph:\n{reply[1]}"
                )
            names = reply[1]
        assert names is not None
        if len(set(names)) != len(names):
            self.close()
            raise RuntimeError(
                f"process backend needs unique stage names, got {names}"
            )
        self._stage_index = {name: i for i, name in enumerate(names)}

    def close(self) -> None:
        """Drain and join every worker, unlink every segment (idempotent)."""
        self._closed = True
        conns, self._conns = self._conns, []
        processes, self._processes = self._processes, []
        for conn in conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for conn, process in zip(conns, processes):
            try:
                if conn.poll(_JOIN_TIMEOUT):
                    conn.recv()  # ("closed",)
            except (EOFError, OSError):
                pass
            conn.close()
            process.join(timeout=_JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT)
        self._pool.close()

    # ---------------------------------------------------------------- messaging

    def _recv(self, worker: int):
        try:
            return self._conns[worker].recv()
        except EOFError:
            process = self._processes[worker]
            process.join(timeout=_JOIN_TIMEOUT)
            raise RuntimeError(
                f"process-backend worker {worker} died unexpectedly "
                f"(exit code {process.exitcode})"
            ) from None

    def _send(self, worker: int, message) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError):
            process = self._processes[worker]
            process.join(timeout=_JOIN_TIMEOUT)
            raise RuntimeError(
                f"process-backend worker {worker} died unexpectedly "
                f"(exit code {process.exitcode})"
            ) from None

    def _stage_address(self, runtime: StageRuntime) -> int:
        if not self._processes:
            raise RuntimeError(
                "process backend is not running; bind_graph() a GraphSpec "
                "before executing stages"
            )
        try:
            return self._stage_index[runtime.stage.name]
        except KeyError:
            raise RuntimeError(
                f"stage {runtime.stage.name!r} is not part of the bound "
                f"job graph {sorted(self._stage_index)}"
            ) from None

    def _dispatch(
        self,
        runtime: StageRuntime,
        build_message,
        per_worker_tasks: list[list],
        elements_in: int,
        started: float,
    ) -> tuple[list[Any], StageWork]:
        """Send one command to every involved worker, merge the replies.

        All sends go out before the first receive so workers overlap;
        outputs are reassembled in subtask-index order regardless of
        which worker produced them.
        """
        involved = [
            worker for worker, tasks in enumerate(per_worker_tasks) if tasks
        ]
        for worker in involved:
            self._send(worker, build_message(per_worker_tasks[worker]))
        parallelism = len(runtime.subtasks)
        by_subtask: list[list[Any] | None] = [None] * parallelism
        busy = [0.0] * parallelism
        spans_by_subtask: list[list | None] = [None] * parallelism
        released: set[str] = set()
        failure: str | None = None
        for worker in involved:
            reply = self._recv(worker)
            if reply[0] == "error":
                failure = failure or reply[1]
                continue
            for subtask_index, outputs, seconds, spans in reply[1]:
                by_subtask[subtask_index] = outputs
                busy[subtask_index] = seconds
                spans_by_subtask[subtask_index] = spans
            released.update(reply[2])
        self._settle_segments(released)
        if failure is not None:
            raise RuntimeError(
                f"process-backend worker failed in stage "
                f"{runtime.stage.name!r}:\n{failure}"
            )
        outputs: list[Any] = []
        for out in by_subtask:
            if out:
                outputs.extend(out)
        # Adopt worker-recorded spans into the master-side runtime in
        # subtask order — the order the serial backend records them in.
        for spans in spans_by_subtask:
            if spans:
                runtime.adopt_spans(spans)
        work = StageWork(
            name=runtime.stage.name,
            busy_seconds=busy,
            elements_in=elements_in,
            elements_out=len(outputs),
            wall_seconds=_time.perf_counter() - started,
        )
        return outputs, work

    def _settle_segments(self, released: set[str]) -> None:
        """Recycle or retire every segment handed out this unit of work.

        Segments the workers detached go back to the pool for reuse;
        segments a worker still maps (an output kept a view alive) are
        retired — unlinked and never reused — so a lingering reader can
        never observe a recycled buffer changing under it.
        """
        outstanding = set(self._outstanding)
        for name in self._outstanding:
            if name in released:
                self._pool.release(name)
            else:
                self._pool.retire(name)
        # Late releases — segments a worker retained past an earlier unit
        # whose views have since died — name already-retired segments;
        # the pool ignores unknown names, so recycling them is safe.
        for name in released - outstanding:
            self._pool.release(name)
        self._outstanding = []

    # ---------------------------------------------------------------- execution

    def run_stage(
        self, runtime: StageRuntime, elements: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], StageWork]:
        """Partition on the master, execute every subtask in its worker.

        The wall clock starts before partitioning, mirroring the other
        backends, so per-stage ``wall_seconds`` stay comparable.  ``ctx``
        crosses the command pipe and must pickle (ICPE passes the
        snapshot time, an ``int``).
        """
        started = _time.perf_counter()
        stage_index = self._stage_address(runtime)
        buckets = runtime.partition(elements)
        workers = len(self._conns)
        self._outstanding = []

        def allocate(nbytes: int):
            segment = self._pool.acquire(nbytes)
            self._outstanding.append(segment.name)
            return segment.name, segment.buf

        per_worker_tasks: list[list] = [[] for _ in range(workers)]
        for subtask_index, bucket in enumerate(buckets):
            per_worker_tasks[subtask_index % workers].append(
                (subtask_index, encode_exchange_elements(bucket, allocate))
            )
        return self._dispatch(
            runtime,
            lambda tasks: ("run", stage_index, ctx, tasks),
            per_worker_tasks,
            elements_in=count_elements(elements),
            started=started,
        )

    def finish_stage(
        self, runtime: StageRuntime
    ) -> tuple[list[Any], StageWork]:
        """Flush every subtask's state inside its owning worker."""
        started = _time.perf_counter()
        stage_index = self._stage_address(runtime)
        workers = len(self._conns)
        self._outstanding = []
        per_worker_tasks: list[list] = [[] for _ in range(workers)]
        for subtask_index in range(len(runtime.subtasks)):
            per_worker_tasks[subtask_index % workers].append(subtask_index)
        return self._dispatch(
            runtime,
            lambda indices: ("finish", stage_index, indices),
            per_worker_tasks,
            elements_in=0,
            started=started,
        )

    # ---------------------------------------------------------------- state

    def _control(
        self, runtime: StageRuntime, op: str, per_subtask_args: list
    ) -> list[tuple]:
        """Round-trip one state command (``state``/``restore``/``metrics``).

        ``per_subtask_args`` carries one entry per subtask, routed to the
        subtask's owning worker (``i % workers``, same as execution).
        The pipe protocol is synchronous request/reply, so by the time
        every involved worker has answered, the pool is drained — no
        stage work can be in flight concurrently with a state command.
        Replies are merged in subtask-index order.
        """
        stage_index = self._stage_address(runtime)
        workers = len(self._conns)
        per_worker_tasks: list[list] = [[] for _ in range(workers)]
        for subtask_index, item in enumerate(per_subtask_args):
            if item is None:
                continue
            per_worker_tasks[subtask_index % workers].append(item)
        involved = [
            worker for worker, tasks in enumerate(per_worker_tasks) if tasks
        ]
        for worker in involved:
            self._send(worker, (op, stage_index, per_worker_tasks[worker]))
        merged: list[tuple] = []
        failure: str | None = None
        for worker in involved:
            reply = self._recv(worker)
            if reply[0] == "error":
                failure = failure or reply[1]
                continue
            merged.extend(reply[1])
            self._pool_release_late(reply[2])
        if failure is not None:
            raise RuntimeError(
                f"process-backend worker failed handling {op!r} for stage "
                f"{runtime.stage.name!r}:\n{failure}"
            )
        merged.sort(key=lambda entry: entry[0])
        return merged

    def _pool_release_late(self, released) -> None:
        """Recycle segments a worker let go of alongside a state reply."""
        for name in released:
            self._pool.release(name)

    def collect_states(
        self,
        runtime: StageRuntime,
        known_digests: dict[int, str] | None = None,
    ) -> list[tuple[int, str, bytes | None]]:
        """Capture the stage's operator state through the worker protocol."""
        known = known_digests or {}
        args = [
            (index, known.get(index))
            for index in range(len(runtime.subtasks))
        ]
        return self._control(runtime, "state", args)

    def restore_states(
        self, runtime: StageRuntime, payloads: Sequence[tuple[int, bytes]]
    ) -> None:
        """Restore checkpointed state into each subtask's owning worker."""
        args: list = [None] * len(runtime.subtasks)
        for index, data in payloads:
            args[index] = (index, data)
        self._control(runtime, "restore", args)

    def collect_metrics(
        self, runtime: StageRuntime
    ) -> list[tuple[int, dict[str, int]]]:
        """Gather per-subtask memory accounting through the worker protocol."""
        args = list(range(len(runtime.subtasks)))
        return self._control(runtime, "metrics", args)

    def collect_protected(
        self, runtime: StageRuntime
    ) -> list[tuple[int, frozenset[int]]]:
        """Gather shed-protected oid sets through the worker protocol."""
        args = list(range(len(runtime.subtasks)))
        return self._control(runtime, "protected", args)

    def collect_forming(
        self, runtime: StageRuntime
    ) -> list[tuple[int, tuple[tuple[int, int, int, int, int], ...]]]:
        """Gather forming-candidate descriptors through the worker protocol."""
        args = list(range(len(runtime.subtasks)))
        return self._control(runtime, "forming", args)
