"""The serial execution backend: the deterministic reference semantics.

Runs every subtask of a stage sequentially in the calling thread, in
subtask-index order — exactly the historical behaviour of the topology
driver.  Per-subtask busy times are measured individually, which is what
the cluster cost model consumes to *simulate* distributed placement.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.streaming.dataflow import StageRuntime, StageWork
from repro.streaming.runtime.base import ExecutionBackend


class SerialBackend(ExecutionBackend):
    """Sequential in-thread execution (default; reference semantics)."""

    name = "serial"
    supports_batch_ingest = True
    supports_checkpoint = True

    def run_stage(
        self, runtime: StageRuntime, elements: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], StageWork]:
        """Run the stage's subtasks one after another in the caller."""
        return runtime.run(elements, ctx)

    def finish_stage(
        self, runtime: StageRuntime
    ) -> tuple[list[Any], StageWork]:
        """Flush the stage's subtasks one after another in the caller."""
        return runtime.finish()
