"""The execution-backend contract and the backend-generic drivers.

An :class:`ExecutionBackend` decides *how* one stage's subtasks execute for
one unit of work — the dataflow semantics (keyed routing, per-subtask
state, batch triggers) are fixed by
:class:`~repro.streaming.dataflow.StageRuntime` and shared by every
backend.  Three implementations ship:

* :class:`~repro.streaming.runtime.serial.SerialBackend` — subtasks run
  sequentially in the calling thread (deterministic, zero overhead, the
  default);
* :class:`~repro.streaming.runtime.parallel.ParallelBackend` — subtasks of
  a stage run concurrently on a worker pool with real wall-clock
  measurement.
* :class:`~repro.streaming.runtime.process.ProcessBackend` — subtasks run
  in a shared-nothing pool of persistent worker processes; columnar
  keyed-exchange envelopes travel through ``multiprocessing.
  shared_memory`` segments.  Operator state cannot be shipped across a
  process boundary, so this backend additionally needs a picklable
  :class:`GraphSpec` — the recipe each worker uses to rebuild its own
  operator instances — bound via :meth:`ExecutionBackend.bind_graph`.

The drivers :func:`execute_unit` and :func:`execute_finish` chain stages
together and are what :class:`~repro.streaming.environment.Job` and the
legacy :func:`~repro.streaming.dataflow.run_unit` /
:func:`~repro.streaming.dataflow.finish_all` entry points delegate to.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.streaming.dataflow import StageRuntime, StageWork

BACKENDS = ("serial", "parallel", "process")


@dataclass(frozen=True, eq=False, slots=True)
class GraphSpec:
    """A picklable recipe for rebuilding a job graph in another process.

    Operator factories are closures (the fluent builder wraps them in
    lambdas), so a compiled :class:`~repro.streaming.runtime.graph.
    JobGraph` cannot cross a process boundary.  What *can* cross is the
    way the graph was described: a module-level builder callable plus
    plain-data arguments.  Each worker of a process backend calls
    ``builder(*args, **kwargs)`` after spawn and instantiates its own
    operator state from the result — the shared-nothing contract.

    ``builder`` must be importable by qualified name (a module-level
    function or a staticmethod on an importable class — not a lambda or
    a local closure), and ``args`` / ``kwargs`` must pickle.  It may
    return a :class:`JobGraph`, a
    :class:`~repro.streaming.environment.StreamEnvironment`, or a
    legacy :class:`~repro.streaming.dataflow.Topology`.
    """

    builder: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def build(self):
        """Run the builder and normalise its result to a ``JobGraph``."""
        from repro.streaming.runtime.graph import JobGraph

        described = self.builder(*self.args, **self.kwargs)
        if isinstance(described, JobGraph):
            return described
        if hasattr(described, "graph"):  # StreamEnvironment
            return described.graph()
        if hasattr(described, "to_graph"):  # legacy Topology
            return described.to_graph()
        raise TypeError(
            f"GraphSpec builder must return a JobGraph, StreamEnvironment "
            f"or Topology, got {type(described).__name__}"
        )


class ExecutionBackend(ABC):
    """Strategy deciding how one stage's subtasks execute.

    Backends are reusable across units of work and across jobs; they may
    own resources (worker pools) which :meth:`close` releases.  They also
    work as context managers.
    """

    name: str = "abstract"

    #: Whether the backend routes columnar :class:`~repro.model.batch.
    #: SnapshotBatch` envelopes through its keyed exchanges.  Backends
    #: that drive the shared :class:`StageRuntime` ``partition`` /
    #: ``run_subtask`` operations get envelope handling for free and
    #: declare ``True``; the conservative default protects third-party
    #: backends with custom exchange implementations — the pipeline
    #: falls back to per-row elements for them.
    supports_batch_ingest: bool = False

    #: Whether the backend runs subtasks in separate OS processes
    #: (shared-nothing address spaces, no GIL contention between
    #: subtasks).  Such backends cannot receive operator state from the
    #: caller and instead rebuild it per worker from a bound
    #: :class:`GraphSpec`.
    supports_process_isolation: bool = False

    #: Whether the backend can capture and restore operator state via
    #: :meth:`collect_states` / :meth:`restore_states`.  The in-process
    #: defaults below walk ``runtime.subtasks`` directly and are correct
    #: for any backend whose operator instances live in the calling
    #: process; process-isolated backends must route the calls through
    #: their worker protocol instead.  Conservative default for
    #: third-party backends: sessions refuse ``checkpoint()`` unless the
    #: backend opts in.
    supports_checkpoint: bool = False

    def bind_graph(self, spec: GraphSpec) -> None:
        """Offer the backend a picklable description of the job graph.

        Drivers that know how their graph was described (the ICPE
        pipeline, ``StreamEnvironment.compile(graph_spec=...)``) call
        this before running.  In-process backends ignore it — their
        subtask state arrives fully built inside each
        :class:`StageRuntime` — while process-isolated backends use it
        to rebuild operator state inside every worker.
        """

    @abstractmethod
    def run_stage(
        self, runtime: StageRuntime, elements: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], StageWork]:
        """Execute one stage over one unit of work.

        Must behave exactly like the serial reference: elements are
        bucketed with ``runtime.partition``, each subtask processes its
        bucket in order followed by ``end_batch(ctx)``, and outputs are
        concatenated in subtask-index order — so every backend produces
        the identical output sequence.
        """

    @abstractmethod
    def finish_stage(
        self, runtime: StageRuntime
    ) -> tuple[list[Any], StageWork]:
        """Flush one stage's subtask state at end of stream."""

    def collect_states(
        self,
        runtime: StageRuntime,
        known_digests: dict[int, str] | None = None,
    ) -> list[tuple[int, str, bytes | None]]:
        """Capture the stage's operator state for a checkpoint.

        Returns one ``(subtask_index, digest, payload_bytes)`` triple per
        *stateful* subtask (operators whose ``snapshot_state()`` returns
        ``None`` are skipped).  When ``known_digests`` maps a subtask
        index to the digest the caller already holds, an unchanged
        operator answers with ``payload_bytes = None`` — the incremental
        capture contract: the caller reuses its cached bytes.
        """
        from repro.state.codec import encode_payload

        known = known_digests or {}
        entries: list[tuple[int, str, bytes | None]] = []
        for index, subtask in enumerate(runtime.subtasks):
            payload = subtask.snapshot_state()
            if payload is None:
                continue
            digest, data = encode_payload(payload)
            entries.append(
                (index, digest, None if known.get(index) == digest else data)
            )
        return entries

    def restore_states(
        self, runtime: StageRuntime, payloads: Sequence[tuple[int, bytes]]
    ) -> None:
        """Restore previously captured state into the stage's subtasks."""
        from repro.state.codec import decode_payload

        for index, data in payloads:
            runtime.subtasks[index].restore_state(decode_payload(data))

    def collect_metrics(
        self, runtime: StageRuntime
    ) -> list[tuple[int, dict[str, int]]]:
        """Gather per-subtask memory-accounting metrics for one stage."""
        entries: list[tuple[int, dict[str, int]]] = []
        for index, subtask in enumerate(runtime.subtasks):
            metrics = subtask.state_metrics()
            if metrics:
                entries.append((index, metrics))
        return entries

    def collect_protected(
        self, runtime: StageRuntime
    ) -> list[tuple[int, frozenset[int]]]:
        """Gather per-subtask shed-protected oid sets for one stage.

        Walks the in-process operator instances; subtasks without a
        ``protected_oids`` method (non-enumeration operators) are
        skipped, as are empty sets.  Process-isolated backends route
        this through their worker protocol instead, exactly like
        :meth:`collect_metrics`.
        """
        entries: list[tuple[int, frozenset[int]]] = []
        for index, subtask in enumerate(runtime.subtasks):
            query = getattr(subtask, "protected_oids", None)
            if query is None:
                continue
            protected = query()
            if protected:
                entries.append((index, protected))
        return entries

    def collect_forming(
        self, runtime: StageRuntime
    ) -> list[tuple[int, tuple[tuple[int, int, int, int, int], ...]]]:
        """Gather per-subtask forming-candidate descriptors for one stage.

        Walks the in-process operator instances; subtasks without a
        ``forming_candidates`` method (non-enumeration operators) are
        skipped, as are empty results.  Process-isolated backends route
        this through their worker protocol instead, exactly like
        :meth:`collect_protected`.
        """
        entries: list[tuple[int, tuple]] = []
        for index, subtask in enumerate(runtime.subtasks):
            query = getattr(subtask, "forming_candidates", None)
            if query is None:
                continue
            forming = query()
            if forming:
                entries.append((index, forming))
        return entries

    def close(self) -> None:
        """Release any resources the backend holds (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        """Context-manager entry: the backend itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: release resources."""
        self.close()


def _default_backend() -> ExecutionBackend:
    from repro.streaming.runtime.serial import SerialBackend

    return SerialBackend()


def resolve_backend(
    backend: str | ExecutionBackend | None,
    max_workers: int | None = None,
) -> ExecutionBackend:
    """Turn a backend name (or instance, or ``None``) into a backend.

    ``None`` yields a :class:`SerialBackend`.  An
    :class:`ExecutionBackend` instance passes through unchanged.  Every
    name — including ``"serial"`` and ``"parallel"`` — resolves through
    the plugin registry (kind ``"backend"``), so third-party backends
    registered via the ``repro.plugins`` entry-point group (and even
    replacements of the built-in names) run the job graph without any
    change here.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        return _default_backend()
    from repro.registry import UnknownPluginError, default_registry

    registry = default_registry()
    try:
        spec = registry.get("backend", backend)
    except UnknownPluginError:
        raise ValueError(
            f"unknown execution backend {backend!r}; registered: "
            f"{registry.names('backend')}"
        ) from None
    return spec.create(max_workers=max_workers)


def execute_unit(
    runtimes: Sequence[StageRuntime],
    elements: Sequence[Any],
    ctx: Any = None,
    backend: ExecutionBackend | None = None,
) -> tuple[list[Any], list[StageWork]]:
    """Push one unit of work through every stage under a backend."""
    if backend is None:
        backend = _default_backend()
    works: list[StageWork] = []
    current: Sequence[Any] = elements
    for runtime in runtimes:
        current, work = backend.run_stage(runtime, current, ctx)
        works.append(work)
    return list(current), works


def execute_finish(
    runtimes: Sequence[StageRuntime],
    backend: ExecutionBackend | None = None,
) -> tuple[list[Any], list[StageWork]]:
    """Flush stage state at end of stream, cascading outputs downstream."""
    if backend is None:
        backend = _default_backend()
    works: list[StageWork] = []
    carried: list[Any] = []
    for runtime in runtimes:
        if carried:
            carried, work_run = backend.run_stage(runtime, carried, None)
            flushed, work_fin = backend.finish_stage(runtime)
            carried = list(carried) + flushed
            busy = [
                a + b
                for a, b in zip(work_run.busy_seconds, work_fin.busy_seconds)
            ]
            works.append(
                StageWork(
                    name=runtime.stage.name,
                    busy_seconds=busy,
                    elements_in=work_run.elements_in,
                    elements_out=len(carried),
                    wall_seconds=work_run.wall_seconds + work_fin.wall_seconds,
                )
            )
        else:
            carried, work = backend.finish_stage(runtime)
            works.append(work)
    return carried, works
