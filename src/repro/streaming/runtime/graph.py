"""The unified job graph: one declarative topology description.

Historically the repository had two divergent topology-construction
paths — ``ICPEPipeline`` wiring :class:`~repro.streaming.dataflow.
KeyedStage` lists by hand and :class:`~repro.streaming.environment.
StreamEnvironment` building its own.  Both now funnel into
:class:`JobGraph`: an immutable-ish ordered description of keyed stages
that can be instantiated into runtimes any number of times, each
instantiation yielding fresh, independent operator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.streaming.dataflow import KeyedStage, StageRuntime


@dataclass(slots=True)
class JobGraph:
    """A linear chain of keyed stages — the shared topology description.

    The graph holds *descriptions* only (names, factories, parallelisms,
    key functions); operator instances are created per
    :meth:`build_runtimes` call, so one graph can back many independent
    jobs.
    """

    stages: list[KeyedStage] = field(default_factory=list)

    def add(self, stage: KeyedStage) -> "JobGraph":
        """Append a stage and return the graph (chainable)."""
        self.stages.append(stage)
        return self

    @property
    def stage_names(self) -> list[str]:
        """Stage names in pipeline order."""
        return [stage.name for stage in self.stages]

    @property
    def parallelisms(self) -> list[int]:
        """Per-stage subtask counts in pipeline order."""
        return [stage.parallelism for stage in self.stages]

    def build_runtimes(self) -> list[StageRuntime]:
        """Instantiate fresh subtasks for every stage.

        Each call produces an independent set of operator instances;
        raises :class:`ValueError` on an empty graph.
        """
        if not self.stages:
            raise ValueError("job graph has no stages")
        return [StageRuntime(stage) for stage in self.stages]
