"""A pooled allocator for ``multiprocessing.shared_memory`` segments.

Creating and unlinking a shared-memory segment costs two syscalls plus a
``/dev/shm`` file each — paid per envelope per stage, that would dwarf
the copy it avoids.  :class:`SegmentPool` amortises the cost: segments
are created in power-of-two size classes and returned to a free list on
:meth:`release`, so a steady-state pipeline reuses the same few segments
for every snapshot.  The pool is owned by the master process (the
process backend); workers only ever *attach* to named segments and never
create or unlink them.

Sizing note: a segment acquired for ``nbytes`` may be larger (its size
class), and ``/dev/shm`` rounds to page size besides — readers must take
row counts from the envelope descriptor, never from the buffer length.
"""

from __future__ import annotations

from multiprocessing import shared_memory


def _size_class(nbytes: int) -> int:
    """Smallest power-of-two size class holding ``nbytes`` (min 4096)."""
    size = 4096
    while size < nbytes:
        size <<= 1
    return size


class SegmentPool:
    """Create-once, reuse-forever shared-memory segments (master side).

    ``acquire`` hands out a segment of the requested capacity (reusing a
    free one of the same size class when possible), ``release`` returns
    it to the free list, ``retire`` destroys one segment early, and
    ``close`` unlinks everything — the pool owns every segment it ever
    created until then.
    """

    def __init__(self) -> None:
        self._live: dict[str, shared_memory.SharedMemory] = {}
        self._free: dict[int, list[str]] = {}
        self._closed = False

    def __len__(self) -> int:
        """Number of segments currently owned (free and in flight)."""
        return len(self._live)

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A segment with capacity for ``nbytes`` (possibly larger)."""
        if self._closed:
            raise RuntimeError("segment pool already closed")
        size = _size_class(nbytes)
        free = self._free.get(size)
        if free:
            return self._live[free.pop()]
        segment = shared_memory.SharedMemory(create=True, size=size)
        self._live[segment.name] = segment
        return segment

    def release(self, name: str) -> None:
        """Return a segment to the free list (unknown names are ignored —
        the segment may have been retired while the release was in
        flight)."""
        segment = self._live.get(name)
        if segment is None or self._closed:
            return
        self._free.setdefault(segment.size, []).append(name)

    def retire(self, name: str) -> None:
        """Destroy one segment now instead of pooling it.

        Used when a release fails cleanly (e.g. a reader still holds
        views, so ``close`` would raise ``BufferError`` later) — the
        segment is dropped from the pool and unlinked so nothing leaks.
        """
        segment = self._live.pop(name, None)
        if segment is None:
            return
        for names in self._free.values():
            if name in names:
                names.remove(name)
        self._destroy(segment)

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        self._closed = True
        live, self._live = self._live, {}
        self._free = {}
        for segment in live.values():
            self._destroy(segment)

    @staticmethod
    def _destroy(segment: shared_memory.SharedMemory) -> None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
