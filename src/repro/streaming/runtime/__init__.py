"""Pluggable execution runtime for the staged dataflow.

The runtime package separates *what* a job computes (the
:class:`~repro.streaming.runtime.graph.JobGraph` of keyed stages) from
*how* its subtasks execute (an
:class:`~repro.streaming.runtime.base.ExecutionBackend`):

* :mod:`repro.streaming.runtime.graph` — the unified topology
  description shared by ``ICPEPipeline`` and ``StreamEnvironment``;
* :mod:`repro.streaming.runtime.base` — the backend contract plus the
  backend-generic unit/finish drivers and :func:`resolve_backend`;
* :mod:`repro.streaming.runtime.serial` — sequential reference
  execution (default);
* :mod:`repro.streaming.runtime.parallel` — concurrent subtask
  execution on a worker pool (threads) with batched keyed exchanges and
  measured wall-clock busy times;
* :mod:`repro.streaming.runtime.process` — shared-nothing worker
  *processes* rebuilding operator state from a picklable
  :class:`~repro.streaming.runtime.base.GraphSpec`, with columnar
  envelopes shipped through pooled ``multiprocessing.shared_memory``
  segments (:mod:`repro.streaming.runtime.shm`).

All backends drive stages through the same partition/run-subtask
operations and concatenate outputs in subtask-index order, so the emitted
element sequence — and therefore every detected pattern — is identical
across backends.
"""

from repro.streaming.hashing import canonical_encode, stable_hash
from repro.streaming.runtime.base import (
    BACKENDS,
    ExecutionBackend,
    GraphSpec,
    execute_finish,
    execute_unit,
    resolve_backend,
)
from repro.streaming.runtime.graph import JobGraph
from repro.streaming.runtime.parallel import (
    ParallelBackend,
    available_cpu_count,
    default_worker_count,
)
from repro.streaming.runtime.process import ProcessBackend
from repro.streaming.runtime.serial import SerialBackend
from repro.streaming.runtime.shm import SegmentPool

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "GraphSpec",
    "JobGraph",
    "ParallelBackend",
    "ProcessBackend",
    "SegmentPool",
    "SerialBackend",
    "available_cpu_count",
    "canonical_encode",
    "default_worker_count",
    "execute_finish",
    "execute_unit",
    "resolve_backend",
    "stable_hash",
]
