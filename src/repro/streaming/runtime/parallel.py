"""The parallel execution backend: a worker pool per job.

Runs every subtask of a stage concurrently on a shared
:class:`~concurrent.futures.ThreadPoolExecutor`.  Correctness rests on
the partitioned-state discipline of the dataflow model: each subtask owns
its operator instance, a stage submits at most one task per subtask per
unit of work, and stages execute one after another — so no operator is
ever touched by two threads at once, and no locks are needed.

The keyed exchange is *batched*: the calling thread partitions the whole
unit of work once (:meth:`StageRuntime.partition`) and hands every worker
its complete bucket up front — one handoff per subtask per batch rather
than one per element.

Outputs are concatenated in subtask-index order, making the emitted
element sequence identical to the serial backend's, element for element.
``StageWork.busy_seconds`` are *measured wall-clock* times per subtask
(they include scheduling and interpreter-lock contention), and
``StageWork.wall_seconds`` is the overlapped elapsed time of the whole
stage — the quantity backend-scalability benchmarks compare against the
serial backend.

On CPython, pure-Python subtask work serialises on the GIL; wall-clock
wins come from subtasks whose work releases it (C-level kernels such as
``zlib`` / ``hashlib``, NumPy) or blocks (I/O, state-backend and exchange
waits).  On free-threaded builds the same backend parallelises Python
code directly.
"""

from __future__ import annotations

import os
import time as _time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.streaming.dataflow import StageRuntime, StageWork, count_elements
from repro.streaming.runtime.base import ExecutionBackend


def available_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the host's cores, which over-provisions
    worker pools inside cgroup/affinity-limited containers (a 4-CPU
    quota on a 64-core host would get 32 workers).  Prefer, in order:
    ``os.process_cpu_count()`` (Python 3.13+, respects affinity and
    ``PYTHON_CPU_COUNT``), ``os.sched_getaffinity`` (Linux), and only
    then the raw core count.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        counted = process_cpu_count()
        if counted:
            return counted
    if hasattr(os, "sched_getaffinity"):
        try:
            affinity = len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms only
            affinity = 0
        if affinity:
            return affinity
    return os.cpu_count() or 1


def default_worker_count() -> int:
    """Worker-pool size when none is requested: every usable core, at
    least 4.

    At least 4 so that stalls still overlap on small machines; capped at
    32 so a wide stage on a huge host does not explode the worker count.
    Shared by the thread-pool (``parallel``) and worker-process
    (``process``) backends; "usable" is the affinity-aware
    :func:`available_cpu_count`, not the raw core count.
    """
    return max(4, min(32, available_cpu_count()))


class ParallelBackend(ExecutionBackend):
    """Concurrent subtask execution on a thread pool.

    Attributes:
        max_workers: pool size; ``None`` picks
            :func:`default_worker_count`.  Stages with fewer subtasks than
            workers simply leave workers idle; stages with more queue.
    """

    name = "parallel"
    supports_batch_ingest = True
    supports_checkpoint = True

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    @property
    def workers(self) -> int:
        """The effective worker-pool size."""
        return self.max_workers or default_worker_count()

    def _executor(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError("parallel backend already closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-runtime",
            )
        return self._pool

    def _fan_out(
        self,
        runtime: StageRuntime,
        task: Callable[[int], tuple[list[Any], float]],
        elements_in: int,
        started: float,
    ) -> tuple[list[Any], StageWork]:
        pool = self._executor()
        futures: list[Future] = [
            pool.submit(task, index) for index in range(len(runtime.subtasks))
        ]
        outputs: list[Any] = []
        busy: list[float] = []
        for future in futures:
            out, seconds = future.result()
            outputs.extend(out)
            busy.append(seconds)
        work = StageWork(
            name=runtime.stage.name,
            busy_seconds=busy,
            elements_in=elements_in,
            elements_out=len(outputs),
            wall_seconds=_time.perf_counter() - started,
        )
        return outputs, work

    def run_stage(
        self, runtime: StageRuntime, elements: Sequence[Any], ctx: Any = None
    ) -> tuple[list[Any], StageWork]:
        """Partition once, then run every subtask's bucket concurrently.

        The wall clock starts before partitioning, mirroring the serial
        backend — so per-stage ``wall_seconds`` are comparable across
        backends.
        """
        started = _time.perf_counter()
        buckets = runtime.partition(elements)
        return self._fan_out(
            runtime,
            lambda index: runtime.run_subtask(index, buckets[index], ctx),
            elements_in=count_elements(elements),
            started=started,
        )

    def finish_stage(
        self, runtime: StageRuntime
    ) -> tuple[list[Any], StageWork]:
        """Flush every subtask's state concurrently."""
        return self._fan_out(
            runtime,
            lambda index: runtime.finish_subtask(index),
            elements_in=0,
            started=_time.perf_counter(),
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent; further use raises)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
