"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517/660 editable installs cannot build. Keeping a ``setup.py`` (and no
``[build-system]`` table in pyproject.toml) lets ``pip install -e .`` fall
back to ``setup.py develop``, which works with the stock setuptools here.
All metadata lives in pyproject.toml's ``[project]`` table.
"""

from setuptools import setup

setup()
