"""Unit tests of the pattern-family components (no pipeline involved).

Feeds hand-built :class:`~repro.model.snapshot.ClusterSnapshot` views
and forming-candidate tuples straight into the families, so every rule
— θ matching, join/leave deltas, confirmation, dissolution, persistence
counting, reachability, thresholding — is pinned in isolation.
"""

from __future__ import annotations

import pytest

from repro import PatternConstraints
from repro.model.snapshot import ClusterSnapshot
from repro.patterns import (
    EvolvingGroupTracker,
    PersistenceModel,
    PredictiveFamily,
)
from repro.patterns.evolving import jaccard

pytestmark = pytest.mark.patterns

CONSTRAINTS = PatternConstraints(m=3, k=3, l=2, g=2)


def snap(time, *groups):
    return ClusterSnapshot.from_groups(time, groups)


def feed(tracker, time, *groups):
    return tracker.on_snapshot(time, snap(time, *groups), (), ())


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard(frozenset({1, 2}), frozenset({1, 2})) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(frozenset({1}), frozenset({2})) == 0.0

    def test_partial_overlap(self):
        a, b = frozenset({0, 1, 2, 3}), frozenset({0, 1, 2, 4})
        assert jaccard(a, b) == pytest.approx(3 / 5)

    def test_two_empty_sets(self):
        assert jaccard(frozenset(), frozenset()) == 1.0


class TestEvolvingGroupTracker:
    def test_theta_validated(self):
        with pytest.raises(ValueError, match="theta"):
            EvolvingGroupTracker(CONSTRAINTS, theta=0.0)
        with pytest.raises(ValueError, match="theta"):
            EvolvingGroupTracker(CONSTRAINTS, theta=1.5)

    def test_formation_emits_convoy_delta(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        events = feed(tracker, 0, {0, 1, 2})
        assert [e.kind for e in events] == ["convoy"]
        assert events[0].formed == (frozenset({0, 1, 2}),)

    def test_small_clusters_ignored(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        assert feed(tracker, 0, {0, 1}) == []  # |C| < m

    def test_drift_within_theta_evolves(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        feed(tracker, 0, {0, 1, 2, 3})
        events = feed(tracker, 1, {0, 1, 2, 4})  # J = 3/5 >= 0.5
        evolved = [e for e in events if e.kind == "evolved"]
        assert len(evolved) == 1
        assert evolved[0].members == frozenset({0, 1, 2, 4})
        assert evolved[0].joined == frozenset({4})
        assert evolved[0].left == frozenset({3})
        assert evolved[0].duration == 2

    def test_unchanged_membership_is_silent(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        feed(tracker, 0, {0, 1, 2})
        events = feed(tracker, 1, {0, 1, 2})
        assert [e.kind for e in events] == []

    def test_drift_below_theta_dissolves_and_reforms(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.75)
        feed(tracker, 0, {0, 1, 2, 3})
        events = feed(tracker, 1, {0, 1, 2, 4})  # J = 0.6 < 0.75
        assert [e.kind for e in events] == ["convoy"]
        assert events[0].formed == (frozenset({0, 1, 2, 4}),)
        assert events[0].dissolved == (frozenset({0, 1, 2, 3}),)

    def test_theta_one_degenerates_to_fixed_membership(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=1.0)
        feed(tracker, 0, {0, 1, 2})
        stable = feed(tracker, 1, {0, 1, 2})
        assert [e.kind for e in stable] == []
        churn = feed(tracker, 2, {0, 1, 2, 3})
        assert all(e.kind != "evolved" for e in churn)

    def test_confirmed_once_after_k_snapshots(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        feed(tracker, 0, {0, 1, 2})
        assert feed(tracker, 1, {0, 1, 2}) == []
        events = feed(tracker, 2, {0, 1, 2})  # duration reaches k = 3
        assert [e.kind for e in events] == ["pattern"]
        assert set(events[0].pattern.objects) == {0, 1, 2}
        assert list(events[0].pattern.times.times) == [0, 1, 2]
        # once per lifetime: snapshot 4 of the same group is silent
        assert feed(tracker, 3, {0, 1, 2}) == []

    def test_confirmation_survives_drift(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        feed(tracker, 0, {0, 1, 2, 3})
        feed(tracker, 1, {0, 1, 2, 4})
        events = feed(tracker, 2, {0, 1, 2, 5})
        confirmed = [e for e in events if e.kind == "pattern"]
        assert len(confirmed) == 1
        assert set(confirmed[0].pattern.objects) == {0, 1, 2, 5}

    def test_dissolution_marks_long_groups_ended(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        for t in range(3):
            feed(tracker, t, {0, 1, 2})
        events = feed(tracker, 3)  # empty snapshot: the group vanishes
        assert [e.kind for e in events] == ["convoy"]
        assert events[0].dissolved == (frozenset({0, 1, 2}),)
        assert len(events[0].ended) == 1
        assert set(events[0].ended[0].objects) == {0, 1, 2}

    def test_short_lived_group_not_ended(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        feed(tracker, 0, {0, 1, 2})
        events = feed(tracker, 1)
        assert events[0].dissolved == (frozenset({0, 1, 2}),)
        assert events[0].ended == ()  # duration 1 < k

    def test_time_jump_breaks_continuity(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        feed(tracker, 0, {0, 1, 2})
        events = feed(tracker, 5, {0, 1, 2})  # gap: t=1..4 missing
        assert [e.kind for e in events] == ["convoy"]
        assert events[0].dissolved == (frozenset({0, 1, 2}),)
        assert events[0].formed == (frozenset({0, 1, 2}),)

    def test_each_cluster_extends_at_most_one_group(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.25)
        feed(tracker, 0, {0, 1, 2}, {3, 4, 5})
        # One merged cluster: only the better-matching group survives.
        events = feed(tracker, 1, {0, 1, 2, 3, 4, 5})
        dissolved = [e for e in events if e.kind == "convoy"]
        assert len(dissolved) == 1
        assert len(dissolved[0].dissolved) == 1
        assert tracker.state_metrics() == {"evolving_groups": 1}

    def test_finish_dissolves_every_open_group(self):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        for t in range(4):
            feed(tracker, t, {0, 1, 2})
        events = tracker.finish(4)
        assert [e.kind for e in events] == ["convoy"]
        assert events[0].dissolved == (frozenset({0, 1, 2}),)
        assert tracker.state_metrics() == {"evolving_groups": 0}

    def test_state_roundtrip_mid_lifetime(self):
        a = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        b = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        feed(a, 0, {0, 1, 2, 3})
        feed(a, 1, {0, 1, 2, 4})
        b.restore_state(a.snapshot_state())
        left = feed(a, 2, {0, 1, 2, 4})
        right = feed(b, 2, {0, 1, 2, 4})
        assert [repr(e) for e in left] == [repr(e) for e in right]
        assert a.snapshot_state() == b.snapshot_state()


class TestPersistenceModel:
    def test_unobserved_defaults_to_half(self):
        assert PersistenceModel().probability(7) == 0.5

    def test_always_persisting_object_reaches_one(self):
        model = PersistenceModel()
        for _ in range(4):
            model.observe(frozenset({1}))
        assert model.probability(1) == 1.0

    def test_never_persisting_object_reaches_zero(self):
        model = PersistenceModel()
        model.observe(frozenset({1}))
        model.observe(frozenset({2}))
        assert model.probability(1) == 0.0

    def test_fractional_persistence(self):
        model = PersistenceModel()
        model.observe(frozenset({1}))
        model.observe(frozenset({1}))  # persisted
        model.observe(frozenset())     # dropped out
        assert model.probability(1) == pytest.approx(0.5)
        assert model.tracked_objects() == 1

    def test_state_roundtrip(self):
        model = PersistenceModel()
        model.observe(frozenset({1, 2}))
        model.observe(frozenset({1}))
        clone = PersistenceModel()
        clone.restore_state(model.snapshot_state())
        assert clone.probability(1) == model.probability(1)
        assert clone.probability(2) == model.probability(2)
        clone.observe(frozenset({1}))
        model.observe(frozenset({1}))
        assert clone.snapshot_state() == model.snapshot_state()


class TestPredictiveFamily:
    def make(self, min_probability=0.0, k=3):
        constraints = PatternConstraints(m=3, k=k, l=2, g=2)
        return PredictiveFamily(constraints, min_probability=min_probability)

    def warm(self, family, times=3, oids=(0, 1)):
        """Drive ``times`` snapshots so every oid persists with p = 1."""
        for t in range(times):
            family.on_snapshot(t, snap(t, set(oids)), (), ())

    def test_min_probability_validated(self):
        with pytest.raises(ValueError, match="min_probability"):
            self.make(min_probability=1.5)

    def test_scores_reachable_candidate(self):
        family = self.make()
        self.warm(family, times=3)
        events = family.on_snapshot(
            3, snap(3, {0, 1}), [(0, 1, 1, 2, -1)], ()
        )
        assert [e.kind for e in events] == ["forming"]
        event = events[0]
        assert event.oids == frozenset({0, 1})
        assert event.length == 2
        assert event.lead == 1  # k - ones snapshots still needed
        assert event.probability == pytest.approx(1.0)

    def test_probability_compounds_over_needed_snapshots(self):
        family = self.make(k=4)
        # 0 persists every step, 1 persists every other step (p = 0.5).
        family.on_snapshot(0, snap(0, {0, 1}), (), ())
        family.on_snapshot(1, snap(1, {0, 1}), (), ())
        family.on_snapshot(2, snap(2, {0}), (), ())
        family.on_snapshot(3, snap(3, {0, 1}), (), ())
        [event] = family.on_snapshot(
            4, snap(4, {0, 1}), [(0, 1, 3, 2, -1)], ()
        )
        # p_0 = 1, p_1 = 2/3 (clustered at t1/t3/t4, persisted from
        # t1 no, t3 yes; of 3 clustered-at-t observations 2 persisted),
        # needed = 2 -> (1 * 2/3) ** 2
        assert event.probability == pytest.approx(4 / 9)

    def test_full_length_candidate_scores_one(self):
        family = self.make()
        [event] = family.on_snapshot(
            0, snap(0, {0, 1}), [(0, 1, 0, 3, -1)], ()
        )
        assert event.probability == 1.0
        assert event.lead == 0

    def test_unreachable_candidate_skipped(self):
        family = self.make()
        self.warm(family)
        # ones = 1, needed = 2, but the window closes in 1 snapshot.
        events = family.on_snapshot(
            3, snap(3, {0, 1}), [(0, 1, 2, 1, 1)], ()
        )
        assert events == []

    def test_unbounded_remaining_is_reachable(self):
        family = self.make()
        self.warm(family)
        events = family.on_snapshot(
            3, snap(3, {0, 1}), [(0, 1, 2, 1, -1)], ()
        )
        assert len(events) == 1

    def test_threshold_filters_low_scores(self):
        family = self.make(min_probability=0.9)
        # Unwarmed model: p = 0.5 each -> (0.25) ** needed < 0.9.
        events = family.on_snapshot(
            0, snap(0, {0, 1}), [(0, 1, 0, 1, -1)], ()
        )
        assert events == []
        assert family.metrics()["repro_patterns_forming_total"] == 0

    def test_best_descriptor_kept_per_pair(self):
        family = self.make()
        self.warm(family)
        events = family.on_snapshot(
            3,
            snap(3, {0, 1}),
            [(0, 1, 2, 1, -1), (0, 1, 0, 2, -1)],  # same pair, two windows
            (),
        )
        assert len(events) == 1
        assert events[0].length == 2  # the longer run wins

    def test_confirmation_counted_as_predicted(self):
        from repro.model.pattern import CoMovementPattern
        from repro.model.timeseq import TimeSequence

        family = self.make()
        self.warm(family)
        family.on_snapshot(3, snap(3, {0, 1}), [(0, 1, 1, 2, -1)], ())
        pattern = CoMovementPattern.of({0, 1}, TimeSequence([1, 2, 3, 4]))
        family.on_snapshot(4, snap(4, {0, 1}), (), [pattern])
        metrics = family.metrics()
        assert metrics["repro_patterns_predicted_total"] == 1
        assert metrics["repro_patterns_unpredicted_total"] == 0

    def test_same_snapshot_prediction_does_not_count(self):
        from repro.model.pattern import CoMovementPattern
        from repro.model.timeseq import TimeSequence

        family = self.make()
        self.warm(family)
        pattern = CoMovementPattern.of({0, 1}, TimeSequence([0, 1, 2]))
        # The forming event and the confirmation land on the same
        # snapshot: no lead time, so it counts as unpredicted.
        family.on_snapshot(3, snap(3, {0, 1}), [(0, 1, 1, 2, -1)], [pattern])
        assert family.metrics()["repro_patterns_unpredicted_total"] == 1

    def test_state_roundtrip_preserves_model_and_counters(self):
        family = self.make()
        self.warm(family)
        family.on_snapshot(3, snap(3, {0, 1}), [(0, 1, 1, 2, -1)], ())
        clone = self.make()
        clone.restore_state(family.snapshot_state())
        assert clone.metrics() == family.metrics()
        assert clone.state_metrics() == family.state_metrics()
        left = family.on_snapshot(4, snap(4, {0, 1}), [(0, 1, 1, 3, -1)], ())
        right = clone.on_snapshot(4, snap(4, {0, 1}), [(0, 1, 1, 3, -1)], ())
        assert [repr(e) for e in left] == [repr(e) for e in right]
        assert clone.snapshot_state() == family.snapshot_state()
