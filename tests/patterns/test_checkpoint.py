"""Checkpoint -> restore -> continue equivalence for the pattern families.

The families implement the OperatorState contract, so their state —
open evolving groups, persistence counts, remembered predictions,
precision counters — rides session checkpoints, and a restored session
must continue the family event stream exactly where the original
stopped.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import open_session
from repro.session import event_to_dict
from repro.state import Checkpoint, CheckpointError

from tests.patterns.conftest import BASE_KNOBS, drift_stream, run_session

pytestmark = [pytest.mark.patterns, pytest.mark.checkpoint]


def run_with_restart(records, cut, **session_kwargs):
    """Stop at ``cut`` records, round-trip through bytes, continue."""
    kwargs = {**BASE_KNOBS, **session_kwargs}
    first = open_session(**kwargs)
    head = first.feed_many(records[:cut])
    blob = first.checkpoint().to_bytes()
    first.close()
    second = open_session(**kwargs, restore=Checkpoint.from_bytes(blob))
    tail = second.feed_many(records[cut:]) + second.finish()
    second.close()
    return [event_to_dict(event) for event in head + tail], second


class TestRestartEquivalence:
    @pytest.mark.parametrize("family", ["evolving", "predictive"])
    def test_every_seventh_cut_matches_oracle(self, family):
        records = drift_stream()
        oracle = run_session(records, pattern_family=family)
        for cut in range(1, len(records), 7):
            restarted, _ = run_with_restart(
                records, cut, pattern_family=family
            )
            assert restarted == oracle, f"{family} diverged at cut {cut}"

    def test_cut_right_at_the_membership_swap(self):
        """Restore exactly between the swap's two regimes (t=7 boundary):
        the GroupEvolved delta must still come out once, unchanged."""
        records = drift_stream()
        cut = sum(1 for r in records if r.time < 7)
        oracle = run_session(records, pattern_family="evolving")
        restarted, _ = run_with_restart(
            records, cut, pattern_family="evolving"
        )
        assert restarted == oracle
        swaps = [e for e in restarted if e["kind"] == "evolved"]
        assert len(swaps) == len(
            [e for e in oracle if e["kind"] == "evolved"]
        )

    def test_scorer_counters_survive_restore(self):
        records = drift_stream()
        with open_session(
            **BASE_KNOBS, pattern_family="predictive"
        ) as oracle:
            oracle.feed_many(records)
            oracle.finish()
        _, restored = run_with_restart(
            records, len(records) // 2, pattern_family="predictive"
        )
        assert (
            restored.pattern_family.metrics()
            == oracle.pattern_family.metrics()
        )
        assert restored.pattern_family.metrics()[
            "repro_patterns_forming_total"
        ] > 0

    def test_restore_into_different_backend(self):
        """Family state is master-side: a serial checkpoint restores
        into a process-backed session and stays equivalent."""
        records = drift_stream()
        oracle = run_session(records, pattern_family="evolving")
        cut = len(records) // 2
        first = open_session(**BASE_KNOBS, pattern_family="evolving")
        head = first.feed_many(records[:cut])
        checkpoint = first.checkpoint()
        first.close()
        second = open_session(
            **BASE_KNOBS,
            pattern_family="evolving",
            backend="process",
            parallel_workers=2,
            restore=checkpoint,
        )
        tail = second.feed_many(records[cut:]) + second.finish()
        second.close()
        assert [event_to_dict(e) for e in head + tail] == oracle


class TestCompatibility:
    def test_family_mismatch_rejected(self):
        records = drift_stream()
        session = open_session(**BASE_KNOBS, pattern_family="evolving")
        session.feed_many(records[:20])
        checkpoint = session.checkpoint()
        session.close()
        with pytest.raises(CheckpointError, match="incompatible"):
            open_session(
                **BASE_KNOBS, pattern_family="predictive", restore=checkpoint
            )

    def test_pre_subsystem_checkpoint_starts_family_fresh(self):
        """A checkpoint without a ``patterns`` payload (taken before the
        subsystem existed) restores with default family state."""
        records = drift_stream()
        session = open_session(**BASE_KNOBS, pattern_family="evolving")
        session.feed_many(records[:20])
        checkpoint = session.checkpoint()
        session.close()
        stripped = replace(
            checkpoint,
            master_states={
                key: value
                for key, value in checkpoint.master_states.items()
                if key != "patterns"
            },
        )
        restored = open_session(
            **BASE_KNOBS, pattern_family="evolving", restore=stripped
        )
        assert restored.pattern_family.state_metrics() == {
            "evolving_groups": 0
        }
        restored.feed_many(records[20:])
        restored.finish()
        restored.close()

    def test_strict_session_checkpoint_has_no_patterns_payload(self):
        session = open_session(**BASE_KNOBS)
        session.feed_many(drift_stream()[:20])
        checkpoint = session.checkpoint()
        session.close()
        assert "patterns" not in checkpoint.master_states

    def test_family_payload_present_in_checkpoint(self):
        session = open_session(**BASE_KNOBS, pattern_family="predictive")
        session.feed_many(drift_stream()[:20])
        checkpoint = session.checkpoint()
        session.close()
        assert "patterns" in checkpoint.master_states

    def test_state_memory_reports_family_entries(self):
        with open_session(**BASE_KNOBS, pattern_family="evolving") as session:
            session.feed_many(drift_stream())
            session.finish()
        memory = session.state_memory()
        assert "patterns" in memory
        assert "evolving_groups" in memory["patterns"]
