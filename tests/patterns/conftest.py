"""Shared workloads for the pattern-family differential tests.

The drift stream is the subsystem's canonical scenario: two well
separated clusters of five objects each, then at ``t = 7`` object 4
leaves the left cluster while object 9 crosses over and joins it — so
the evolving tracker must emit one ``GroupEvolved`` with exactly that
join/leave delta, and the predictive scorer sees candidate pairs both
persist and break.
"""

from __future__ import annotations

from repro import PatternConstraints, open_session
from repro.model.records import StreamRecord
from repro.session import event_to_dict

CONSTRAINTS = PatternConstraints(m=3, k=4, l=2, g=2)

BASE_KNOBS = dict(
    epsilon=5.0,
    cell_width=10.0,
    min_pts=2,
    constraints=CONSTRAINTS,
)


def drift_stream(n_times: int = 14) -> list[StreamRecord]:
    """Two clusters with one membership swap at ``t = 7``."""
    records: list[StreamRecord] = []
    for t in range(n_times):
        for oid in range(10):
            if oid < 5:
                x = 10.0 + oid * 0.5 + (50.0 if t >= 7 and oid == 4 else 0.0)
            else:
                x = 100.0 + (oid - 5) * 0.5
                if oid == 9 and t >= 7:
                    x = 12.0
            records.append(
                StreamRecord(
                    oid=oid,
                    time=t,
                    x=x,
                    y=0.0,
                    last_time=t - 1 if t else None,
                )
            )
    return records


def run_session(records, **session_kwargs) -> list[dict]:
    """One full session over ``records``; events as comparable dicts."""
    kwargs = {**BASE_KNOBS, **session_kwargs}
    with open_session(**kwargs) as session:
        events = session.feed_many(records) + session.finish()
    return [event_to_dict(event) for event in events]
