"""Property tests for the prediction invariants (hypothesis).

The headline invariant: a ``PatternForming`` event scored at
**probability 1.0** whose objects then stay co-clustered for its
``lead`` snapshots is always followed by a ``PatternConfirmed`` that
contains the predicted pair — probability-1 predictions cannot be
false positives when the world cooperates.  Streams are randomised:
hypothesis drives every non-anchor object between two sites and a
noise position, while objects 0 and 1 sit faithfully at site 0 so the
non-vacuous case always occurs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PatternConstraints, open_session
from repro.model.records import StreamRecord
from repro.model.snapshot import ClusterSnapshot
from repro.patterns import EvolvingGroupTracker
from repro.session import event_to_dict

pytestmark = pytest.mark.patterns

K = 3
CONSTRAINTS = PatternConstraints(m=2, k=K, l=2, g=2)

NOISE = 2  # site index meaning "isolated, never clustered"


def site_x(oid: int, site: int) -> float:
    """Planar x for ``oid`` at ``site`` (noise points are far apart)."""
    if site == NOISE:
        return 1000.0 + oid * 50.0
    return site * 100.0 + oid * 0.1


def build_records(assignment: list[list[int]]) -> list[StreamRecord]:
    """``assignment[t][oid]`` is the site of ``oid`` at time ``t``."""
    records = []
    for t, sites in enumerate(assignment):
        for oid, site in enumerate(sites):
            records.append(
                StreamRecord(
                    oid=oid,
                    time=t,
                    x=site_x(oid, site),
                    y=0.0,
                    last_time=t - 1 if t else None,
                )
            )
    return records


def drifting_assignment(n_objects, n_times):
    """Objects 0-1 pinned to site 0; the rest drift site0/site1/noise."""
    return st.lists(
        st.tuples(
            *(
                [st.just(0), st.just(0)]
                + [st.integers(0, 2) for _ in range(n_objects - 2)]
            )
        ).map(list),
        min_size=n_times,
        max_size=n_times,
    )


class TestProbabilityOneInvariant:
    @settings(max_examples=30, deadline=None)
    @given(
        assignment=st.integers(4, 6).flatmap(
            lambda n: drifting_assignment(n, 8)
        )
    )
    def test_certain_predictions_confirm_when_objects_persist(
        self, assignment
    ):
        records = build_records(assignment)
        max_time = len(assignment) - 1
        with open_session(
            epsilon=2.0,
            cell_width=5.0,
            min_pts=2,
            constraints=CONSTRAINTS,
            pattern_family="predictive",
        ) as session:
            events = [
                event_to_dict(e)
                for e in session.feed_many(records) + session.finish()
            ]

        confirmed_pairs = [
            (set(e["objects"]), e["time"])
            for e in events
            if e["kind"] == "pattern"
        ]

        def co_clustered(a, b, t):
            return (
                assignment[t][a] == assignment[t][b]
                and assignment[t][a] != NOISE
            )

        checked = 0
        for event in events:
            if event["kind"] != "forming" or event["probability"] != 1.0:
                continue
            t, lead = event["time"], event["lead"]
            a, b = sorted(event["oids"])
            if t + lead > max_time:
                continue  # the stream ends before K is reachable
            if not all(
                co_clustered(a, b, tau) for tau in range(t + 1, t + lead + 1)
            ):
                continue  # the world broke the pair; no promise made
            checked += 1
            assert any(
                {a, b} <= objects for objects, _ in confirmed_pairs
            ), f"certain pair ({a}, {b}) predicted at t={t} never confirmed"
        # Objects 0-1 are pinned co-movers, so the invariant must have
        # been exercised non-vacuously on every generated stream.
        assert checked > 0

    @settings(max_examples=30, deadline=None)
    @given(
        assignment=st.integers(4, 6).flatmap(
            lambda n: drifting_assignment(n, 8)
        )
    )
    def test_forming_events_are_well_formed(self, assignment):
        records = build_records(assignment)
        with open_session(
            epsilon=2.0,
            cell_width=5.0,
            min_pts=2,
            constraints=CONSTRAINTS,
            pattern_family="predictive",
        ) as session:
            events = [
                event_to_dict(e)
                for e in session.feed_many(records) + session.finish()
            ]
        for event in events:
            if event["kind"] != "forming":
                continue
            assert 0.0 <= event["probability"] <= 1.0
            assert 0 <= event["length"]
            assert event["lead"] == max(0, K - event["length"])


def cluster_streams():
    """Random per-snapshot groupings over at most eight objects."""
    group = st.sets(st.integers(0, 7), min_size=0, max_size=8).map(frozenset)
    return st.lists(
        st.lists(group, min_size=0, max_size=2), min_size=1, max_size=10
    )


class TestEvolvingDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(stream=cluster_streams(), cut=st.integers(0, 9))
    def test_restored_tracker_continues_identically(self, stream, cut):
        """From any mid-stream state capture, a restored clone replays
        the remaining snapshots event-for-event."""
        cut = min(cut, len(stream))
        a = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        for t, groups in enumerate(stream[:cut]):
            a.on_snapshot(t, ClusterSnapshot.from_groups(t, groups), (), ())
        b = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        b.restore_state(a.snapshot_state())
        for t, groups in enumerate(stream[cut:], start=cut):
            snapshot = ClusterSnapshot.from_groups(t, groups)
            left = a.on_snapshot(t, snapshot, (), ())
            right = b.on_snapshot(t, snapshot, (), ())
            assert [repr(e) for e in left] == [repr(e) for e in right]
        assert a.snapshot_state() == b.snapshot_state()
        assert [repr(e) for e in a.finish(len(stream))] == [
            repr(e) for e in b.finish(len(stream))
        ]

    @settings(max_examples=50, deadline=None)
    @given(stream=cluster_streams())
    def test_evolved_events_always_carry_a_delta(self, stream):
        tracker = EvolvingGroupTracker(CONSTRAINTS, theta=0.5)
        for t, groups in enumerate(stream):
            events = tracker.on_snapshot(
                t, ClusterSnapshot.from_groups(t, groups), (), ()
            )
            for event in events:
                if event.kind == "evolved":
                    assert event.joined or event.left
                    assert event.joined <= event.members
                    assert not (event.left & event.members)
