"""Backend-grid parity for the pattern families.

Families run master-side off state every backend ships identically
(cluster snapshots, forming descriptors, confirmed patterns), so the
full event stream — ``PatternConfirmed``, ``ConvoyDelta``,
``GroupEvolved``, ``PatternForming``, ``WatermarkAdvanced`` — must be
**event-for-event identical** on the serial, parallel and
shared-nothing process backends, for both families, on both
forming-state enumerators.
"""

from __future__ import annotations

import pytest

from repro import open_session

from tests.patterns.conftest import BASE_KNOBS, drift_stream, run_session

pytestmark = pytest.mark.patterns


class TestSerialBehaviour:
    def test_evolving_emits_the_membership_swap(self):
        events = run_session(drift_stream(), pattern_family="evolving")
        evolved = [e for e in events if e["kind"] == "evolved"]
        assert evolved, "the drift stream must surface membership churn"
        swap = evolved[0]
        assert swap["time"] == 7
        assert swap["joined"] == [9]
        assert swap["left"] == [4]
        assert sorted(swap["members"]) == [0, 1, 2, 3, 9]

    @pytest.mark.parametrize("enumerator", ["fba", "vba"])
    def test_predictive_emits_forming_events(self, enumerator):
        events = run_session(
            drift_stream(), pattern_family="predictive", enumerator=enumerator
        )
        forming = [e for e in events if e["kind"] == "forming"]
        assert forming, "the drift stream must surface forming candidates"
        for event in forming:
            assert 0.0 <= event["probability"] <= 1.0
            assert event["length"] >= 0
            assert event["lead"] >= 0
            assert len(event["oids"]) == 2

    def test_strict_family_adds_no_events(self):
        strict = run_session(drift_stream(), pattern_family="strict")
        default = run_session(drift_stream())
        assert strict == default
        assert all(e["kind"] not in ("evolved", "forming") for e in strict)

    def test_forming_and_confirmation_order_within_snapshot(self):
        """Family events land after the snapshot's confirmations and
        before its ``WatermarkAdvanced``."""
        events = run_session(drift_stream(), pattern_family="predictive")
        rank = {"pattern": 0, "convoy": 1, "forming": 2, "watermark": 3}
        by_time: dict[int, list[int]] = {}
        for event in events:
            by_time.setdefault(event["time"], []).append(rank[event["kind"]])
        for time, ranks in by_time.items():
            assert ranks == sorted(ranks), f"order violated at t={time}"


class TestBackendParity:
    @pytest.mark.parametrize("family", ["evolving", "predictive"])
    @pytest.mark.parametrize("enumerator", ["fba", "vba"])
    def test_parallel_matches_serial(self, family, enumerator):
        serial = run_session(
            drift_stream(), pattern_family=family, enumerator=enumerator
        )
        parallel = run_session(
            drift_stream(),
            pattern_family=family,
            enumerator=enumerator,
            backend="parallel",
            parallel_workers=3,
        )
        assert parallel == serial

    @pytest.mark.parametrize("family", ["evolving", "predictive"])
    def test_process_matches_serial(self, family):
        serial = run_session(drift_stream(), pattern_family=family)
        process = run_session(
            drift_stream(),
            pattern_family=family,
            backend="process",
            parallel_workers=2,
        )
        assert process == serial

    def test_numpy_kernels_match_python(self):
        pytest.importorskip("numpy", reason="the numpy kernels need NumPy")
        python = run_session(drift_stream(), pattern_family="predictive")
        numpy = run_session(
            drift_stream(),
            pattern_family="predictive",
            clustering_kernel="numpy",
            enumeration_kernel="numpy",
        )
        assert numpy == python


class TestFormingPlumbing:
    def feed_half(self, **session_kwargs):
        session = open_session(**{**BASE_KNOBS, **session_kwargs})
        records = drift_stream()
        session.feed_many(records[: len(records) // 2])
        return session

    def test_fba_descriptors_have_bounded_remaining(self):
        with self.feed_half(enumerator="fba") as session:
            forming = session.pipeline.forming_candidates()
        assert forming
        for anchor, oid, start, ones, remaining in forming:
            assert anchor < oid
            assert remaining >= 0
            assert ones >= 0
            assert start >= 0

    def test_vba_descriptors_are_unbounded(self):
        with self.feed_half(enumerator="vba") as session:
            forming = session.pipeline.forming_candidates()
        assert forming
        assert {remaining for *_, remaining in forming} == {-1}

    def test_baseline_exposes_no_forming_state(self):
        with self.feed_half(enumerator="baseline") as session:
            assert session.pipeline.forming_candidates() == ()

    def test_process_backend_ships_identical_descriptors(self):
        with self.feed_half(enumerator="fba") as serial:
            expected = serial.pipeline.forming_candidates()
        with self.feed_half(
            enumerator="fba", backend="process", parallel_workers=2
        ) as process:
            assert process.pipeline.forming_candidates() == expected
