"""Shared test helpers: random streams, enumeration harness, paper example."""

from __future__ import annotations

import random

import pytest

from repro.enumeration.base import PatternCollector
from repro.enumeration.baseline import BAEnumerator
from repro.enumeration.fba import FBAEnumerator
from repro.enumeration.partition import PartitionRouter
from repro.enumeration.vba import VBAEnumerator
from repro.model.constraints import PatternConstraints
from repro.model.snapshot import ClusterSnapshot

ENUMERATOR_FACTORIES = {
    "BA": lambda anchor, constraints: BAEnumerator(anchor, constraints),
    "FBA": lambda anchor, constraints: FBAEnumerator(anchor, constraints),
    "VBA": lambda anchor, constraints: VBAEnumerator(anchor, constraints),
}


def run_enumerator(
    snapshots: list[ClusterSnapshot],
    constraints: PatternConstraints,
    kind: str,
) -> PatternCollector:
    """Drive one enumeration algorithm over a bounded cluster stream."""
    factory = ENUMERATOR_FACTORIES[kind]
    router = PartitionRouter(constraints.m)
    enumerators: dict[int, object] = {}
    collector = PatternCollector()
    for snapshot in snapshots:
        for anchor, members in router.route(snapshot):
            enumerator = enumerators.get(anchor)
            if enumerator is None:
                enumerator = enumerators[anchor] = factory(anchor, constraints)
            collector.offer(
                snapshot.time, enumerator.on_partition(snapshot.time, members)
            )
    final_time = snapshots[-1].time if snapshots else 0
    for anchor in sorted(enumerators):
        collector.offer(final_time, enumerators[anchor].finish())
    return collector


def random_cluster_stream(
    rng: random.Random,
    n_objects: int,
    horizon: int,
    drop_probability: float = 0.15,
) -> list[ClusterSnapshot]:
    """Random cluster snapshots: shuffled objects split into random groups."""
    snapshots = []
    for t in range(1, horizon + 1):
        objects = list(range(n_objects))
        rng.shuffle(objects)
        groups, index = [], 0
        while index < len(objects):
            size = rng.randint(1, len(objects) - index)
            groups.append(objects[index : index + size])
            index += size
        groups = [
            [oid for oid in group if rng.random() > drop_probability]
            for group in groups
        ]
        snapshots.append(
            ClusterSnapshot.from_groups(t, [g for g in groups if g])
        )
    return snapshots


@pytest.fixture
def paper_cluster_stream() -> list[ClusterSnapshot]:
    """The cluster snapshots of the paper's running example (Figs. 2, 7-9).

    Reconstructed from the worked examples: Section 3.1's patterns at
    times 5 and 7, the Lemma 5/6 walk-throughs, and the bit strings of
    Figs. 8-9 for the subtask of o4 (objects renumbered 1-8 as in Fig. 2).
    """
    return [
        ClusterSnapshot.from_groups(1, [[1, 2], [3, 4], [5, 6, 7]]),
        ClusterSnapshot.from_groups(2, [[1, 2], [3, 4, 5], [6, 7]]),
        ClusterSnapshot.from_groups(3, [[2, 3, 4, 5, 6, 7, 8]]),
        ClusterSnapshot.from_groups(4, [[4, 5, 6, 7]]),
        ClusterSnapshot.from_groups(5, [[1, 2], [4, 5], [6, 7]]),
        ClusterSnapshot.from_groups(6, [[3, 4, 5, 6]]),
        ClusterSnapshot.from_groups(7, [[1, 2], [4, 5, 6, 7]]),
        ClusterSnapshot.from_groups(8, [[4, 5, 6, 7]]),
    ]
