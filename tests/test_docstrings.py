"""Docstring-coverage regression test: the CI docs job, runnable locally.

Runs ``tools/check_docstrings.py`` (the same script the CI docs job
invokes) so an undocumented public class/function under ``src/repro/``
fails the tier-1 suite before it reaches CI.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_public_api_docstring_coverage():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docstrings.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "docstring coverage ok" in result.stdout


def test_checker_scans_registry_and_session():
    """The coverage walk must include the PR-4 packages (registry +
    session facade) — exercised through the checker's own collection
    (``iter_documentable``), not just the directory layout."""
    import ast

    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_docstrings

        collected = set()
        for relative in ("registry/core.py", "session/session.py"):
            path = check_docstrings.SOURCE_ROOT / relative
            assert path.exists(), relative
            tree = ast.parse(path.read_text(), filename=str(path))
            module = "repro." + relative[:-3].replace("/", ".")
            collected |= {
                name
                for name, _kind, _doc in check_docstrings.iter_documentable(
                    tree, module
                )
            }
    finally:
        sys.path.pop(0)
    assert "repro.registry.core.PluginRegistry" in collected
    assert "repro.session.session.Session.feed" in collected
