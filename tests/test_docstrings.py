"""Docstring-coverage regression test: the CI docs job, runnable locally.

Runs ``tools/check_docstrings.py`` (the same script the CI docs job
invokes) so an undocumented public class/function under ``src/repro/``
fails the tier-1 suite before it reaches CI.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_public_api_docstring_coverage():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docstrings.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "docstring coverage ok" in result.stdout
