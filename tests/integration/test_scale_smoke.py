"""Moderate-scale smoke: hundreds of objects through the full pipeline.

The oracle is exponential, so at this size the check is cross-engine
agreement (FBA vs VBA witness the same object sets) plus soundness and
metric sanity.
"""

import pytest

from repro.bench.harness import detection_config, run_detection_point
from repro.data.brinkhoff import BrinkhoffConfig, generate_brinkhoff
from repro.model.constraints import PatternConstraints


@pytest.fixture(scope="module")
def medium_dataset():
    return generate_brinkhoff(
        BrinkhoffConfig(
            n_objects=240,
            horizon=50,
            seed=77,
            group_fraction=0.5,
            group_size=(5, 10),
        )
    )


CONSTRAINTS = PatternConstraints(m=4, k=10, l=3, g=2)


def test_fba_vba_agree_at_scale(medium_dataset):
    results = {}
    for method in ("F", "V"):
        config = detection_config(
            medium_dataset, CONSTRAINTS, method, 0.06, 1.6, 4
        )
        point, pipeline = run_detection_point(
            medium_dataset, config, method, "scale", 1.0
        )
        assert point.completed
        results[method] = pipeline
    fba, vba = results["F"], results["V"]
    assert fba.collector.object_sets() == vba.collector.object_sets()
    assert len(fba.collector) > 0

    # Every pattern is internally consistent.
    for pattern in fba.patterns:
        assert pattern.satisfies(CONSTRAINTS)

    # Metrics are sane.
    for pipeline in results.values():
        meter = pipeline.meter
        assert meter.snapshots == 50
        assert meter.average_latency_ms() > 0
        assert meter.throughput_tps() > 0


def test_groups_drive_pattern_membership(medium_dataset):
    """Patterns consist (almost) entirely of implanted-group members:
    background traffic should not co-move."""
    config = detection_config(medium_dataset, CONSTRAINTS, "F", 0.06, 1.6, 4)
    _point, pipeline = run_detection_point(
        medium_dataset, config, "F", "scale", 1.0
    )
    grouped_ids = set(range(120))  # group_fraction 0.5 of 240
    members = {o for p in pipeline.patterns for o in p.objects}
    assert members, "expected patterns on the implanted groups"
    outsiders = members - grouped_ids
    assert len(outsiders) <= max(2, len(members) // 10)
