"""Backend equivalence on end-to-end detection scenarios.

The runtime contract: every execution backend (serial, parallel threads,
shared-nothing processes) routes every element to the same subtask
(stable hashing), processes buckets in the same per-subtask order, and
concatenates outputs in subtask-index order — so the full ICPE pipeline
must detect the *identical* pattern set, with identical detection times,
under any backend.  For the process backend the bar is event-for-event
session equality (including ``WatermarkAdvanced``) across the
backend × clustering-kernel × enumeration-kernel grid.
"""

import random

import pytest

from repro.core.config import ICPEConfig
from repro.core.detector import CoMovementDetector
from repro.data.brinkhoff import BrinkhoffConfig, generate_brinkhoff
from repro.data.taxi import TaxiConfig, generate_taxi
from repro.model.constraints import PatternConstraints
from repro.session import Session
from repro.session.events import event_to_dict
from repro.streaming.shuffle import bounded_shuffle

CONSTRAINTS = PatternConstraints(m=3, k=5, l=2, g=2)


@pytest.fixture(scope="module")
def dataset():
    return generate_taxi(TaxiConfig(n_objects=60, horizon=24, seed=17))


def make_config(dataset, **overrides):
    defaults = dict(
        epsilon=dataset.resolve_percentage(0.08),
        cell_width=dataset.resolve_percentage(1.6),
        min_pts=3,
        constraints=CONSTRAINTS,
    )
    defaults.update(overrides)
    return ICPEConfig(**defaults)


def detect(dataset, config, records=None):
    detector = CoMovementDetector(config)
    detector.feed_many(records if records is not None else dataset.records)
    detector.finish()
    detections = frozenset(
        (pattern.objects, tuple(pattern.times.times))
        for pattern in detector.patterns
    )
    return detector, detections


class TestBackendEquivalence:
    @pytest.mark.parametrize("enumerator", ["fba", "vba"])
    def test_identical_pattern_sets(self, dataset, enumerator):
        serial_detector, serial_patterns = detect(
            dataset, make_config(dataset, enumerator=enumerator)
        )
        parallel_detector, parallel_patterns = detect(
            dataset,
            make_config(
                dataset,
                enumerator=enumerator,
                backend="parallel",
                parallel_workers=4,
            ),
        )
        assert serial_detector.backend_name == "serial"
        assert parallel_detector.backend_name == "parallel"
        assert serial_patterns == parallel_patterns
        assert len(serial_patterns) > 0  # the scenario must be non-trivial

    def test_identical_under_out_of_order_delivery(self, dataset):
        records = list(
            bounded_shuffle(dataset.records, max_delay=2, rng=random.Random(3))
        )
        _, serial_patterns = detect(
            dataset, make_config(dataset, max_delay=2), records=records
        )
        _, parallel_patterns = detect(
            dataset,
            make_config(
                dataset, max_delay=2, backend="parallel", parallel_workers=4
            ),
            records=records,
        )
        assert serial_patterns == parallel_patterns

    def test_identical_routing_across_backends(self, dataset):
        from repro.core.icpe import ICPEPipeline

        serial = ICPEPipeline(make_config(dataset))
        parallel = ICPEPipeline(
            make_config(dataset, backend="parallel", parallel_workers=4)
        )
        points = next(iter(dataset.snapshots())).points()
        for runtime_s, runtime_p in zip(serial.job.runtimes, parallel.job.runtimes):
            if runtime_s.stage.name != "allocate":
                continue
            assert [runtime_s.route(p) for p in points] == [
                runtime_p.route(p) for p in points
            ]
        serial.close()
        parallel.close()

    def test_second_dataset_generator(self):
        dataset = generate_brinkhoff(
            BrinkhoffConfig(n_objects=50, horizon=20, seed=9)
        )
        _, serial_patterns = detect(dataset, make_config(dataset))
        _, parallel_patterns = detect(
            dataset,
            make_config(dataset, backend="parallel", parallel_workers=3),
        )
        assert serial_patterns == parallel_patterns


@pytest.fixture(scope="module")
def small_dataset():
    return generate_brinkhoff(BrinkhoffConfig(n_objects=30, horizon=10, seed=11))


def session_events(dataset, config):
    """The full typed event stream of one session over the dataset."""
    with Session(config) as session:
        events = session.feed_many(dataset.records)
        events += session.finish()
        result = session.result()
    return [event_to_dict(event) for event in events], result


class TestProcessBackendEquivalence:
    """serial ≡ process, event for event, across the kernel grid."""

    @pytest.mark.parametrize(
        "clustering_kernel,enumeration_kernel",
        [
            ("python", "python"),
            ("python", "numpy"),
            ("numpy", "python"),
            ("numpy", "numpy"),
        ],
    )
    def test_event_streams_identical(
        self, small_dataset, clustering_kernel, enumeration_kernel
    ):
        if "numpy" in (clustering_kernel, enumeration_kernel):
            pytest.importorskip("numpy")
        configs = {
            backend: make_config(
                small_dataset,
                enumerator="fba",
                backend=backend,
                parallel_workers=2 if backend == "process" else None,
                clustering_kernel=clustering_kernel,
                enumeration_kernel=enumeration_kernel,
            )
            for backend in ("serial", "process")
        }
        serial_events, serial_result = session_events(
            small_dataset, configs["serial"]
        )
        process_events, process_result = session_events(
            small_dataset, configs["process"]
        )
        assert serial_events == process_events
        assert any(e["kind"] == "pattern" for e in serial_events)
        assert any(e["kind"] == "watermark" for e in serial_events)
        assert serial_result.patterns == process_result.patterns
        assert serial_result.snapshots == process_result.snapshots
        assert process_result.backend == "process"

    def test_process_parallel_cross_check(self, small_dataset):
        """The three-way closure: parallel ≡ process on pattern sets."""
        _, parallel_patterns = detect(
            small_dataset,
            make_config(
                small_dataset, backend="parallel", parallel_workers=3
            ),
        )
        _, process_patterns = detect(
            small_dataset,
            make_config(
                small_dataset, backend="process", parallel_workers=3
            ),
        )
        assert parallel_patterns == process_patterns
        assert len(process_patterns) > 0
