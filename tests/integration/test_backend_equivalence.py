"""Serial/parallel backend equivalence on end-to-end detection scenarios.

The runtime contract: both execution backends route every element to the
same subtask (stable hashing), process buckets in the same per-subtask
order, and concatenate outputs in subtask-index order — so the full ICPE
pipeline must detect the *identical* pattern set, with identical
detection times, under either backend.
"""

import random

import pytest

from repro.core.config import ICPEConfig
from repro.core.detector import CoMovementDetector
from repro.data.brinkhoff import BrinkhoffConfig, generate_brinkhoff
from repro.data.taxi import TaxiConfig, generate_taxi
from repro.model.constraints import PatternConstraints
from repro.streaming.shuffle import bounded_shuffle

CONSTRAINTS = PatternConstraints(m=3, k=5, l=2, g=2)


@pytest.fixture(scope="module")
def dataset():
    return generate_taxi(TaxiConfig(n_objects=60, horizon=24, seed=17))


def make_config(dataset, **overrides):
    defaults = dict(
        epsilon=dataset.resolve_percentage(0.08),
        cell_width=dataset.resolve_percentage(1.6),
        min_pts=3,
        constraints=CONSTRAINTS,
    )
    defaults.update(overrides)
    return ICPEConfig(**defaults)


def detect(dataset, config, records=None):
    detector = CoMovementDetector(config)
    detector.feed_many(records if records is not None else dataset.records)
    detector.finish()
    detections = frozenset(
        (pattern.objects, tuple(pattern.times.times))
        for pattern in detector.patterns
    )
    return detector, detections


class TestBackendEquivalence:
    @pytest.mark.parametrize("enumerator", ["fba", "vba"])
    def test_identical_pattern_sets(self, dataset, enumerator):
        serial_detector, serial_patterns = detect(
            dataset, make_config(dataset, enumerator=enumerator)
        )
        parallel_detector, parallel_patterns = detect(
            dataset,
            make_config(
                dataset,
                enumerator=enumerator,
                backend="parallel",
                parallel_workers=4,
            ),
        )
        assert serial_detector.backend_name == "serial"
        assert parallel_detector.backend_name == "parallel"
        assert serial_patterns == parallel_patterns
        assert len(serial_patterns) > 0  # the scenario must be non-trivial

    def test_identical_under_out_of_order_delivery(self, dataset):
        records = list(
            bounded_shuffle(dataset.records, max_delay=2, rng=random.Random(3))
        )
        _, serial_patterns = detect(
            dataset, make_config(dataset, max_delay=2), records=records
        )
        _, parallel_patterns = detect(
            dataset,
            make_config(
                dataset, max_delay=2, backend="parallel", parallel_workers=4
            ),
            records=records,
        )
        assert serial_patterns == parallel_patterns

    def test_identical_routing_across_backends(self, dataset):
        from repro.core.icpe import ICPEPipeline

        serial = ICPEPipeline(make_config(dataset))
        parallel = ICPEPipeline(
            make_config(dataset, backend="parallel", parallel_workers=4)
        )
        points = next(iter(dataset.snapshots())).points()
        for runtime_s, runtime_p in zip(serial.job.runtimes, parallel.job.runtimes):
            if runtime_s.stage.name != "allocate":
                continue
            assert [runtime_s.route(p) for p in points] == [
                runtime_p.route(p) for p in points
            ]
        serial.close()
        parallel.close()

    def test_second_dataset_generator(self):
        dataset = generate_brinkhoff(
            BrinkhoffConfig(n_objects=50, horizon=20, seed=9)
        )
        _, serial_patterns = detect(dataset, make_config(dataset))
        _, parallel_patterns = detect(
            dataset,
            make_config(dataset, backend="parallel", parallel_workers=3),
        )
        assert serial_patterns == parallel_patterns
