"""Full-system integration: records -> sync -> ICPE -> patterns == oracle."""

import random

import pytest

from repro.cluster.rjc import ClusteringConfig, RJCClusterer
from repro.core.config import ICPEConfig
from repro.core.detector import CoMovementDetector
from repro.data.brinkhoff import BrinkhoffConfig, generate_brinkhoff
from repro.enumeration.oracle import oracle_object_sets, patterns_are_sound
from repro.model.constraints import PatternConstraints
from repro.model.records import StreamRecord
from repro.model.snapshot import Snapshot
from repro.streaming.shuffle import bounded_shuffle

CONSTRAINTS = PatternConstraints(m=3, k=4, l=2, g=2)


def implanted_stream(seed=0, n_groups=3, group_size=4, horizon=12):
    """Co-moving groups with dropouts; returns time-ordered records."""
    rng = random.Random(seed)
    records, last = [], {}
    for t in range(1, horizon + 1):
        for g in range(n_groups):
            cx, cy = 100.0 * g + 3.0 * t, 50.0 * g
            for i in range(group_size):
                oid = g * group_size + i
                if rng.random() < 0.12:
                    continue
                records.append(
                    StreamRecord(
                        oid,
                        cx + rng.uniform(-0.4, 0.4),
                        cy + rng.uniform(-0.4, 0.4),
                        t,
                        last.get(oid),
                    )
                )
                last[oid] = t
    return records


def reference_patterns(records, config):
    """Oracle result: cluster each snapshot with RJC, enumerate exhaustively."""
    snapshots: dict[int, Snapshot] = {}
    for r in records:
        snapshots.setdefault(r.time, Snapshot(r.time)).add_record(r)
    clusterer = RJCClusterer(
        ClusteringConfig(
            epsilon=config.epsilon,
            min_pts=config.min_pts,
            cell_width=config.cell_width,
        )
    )
    cluster_snaps = [clusterer.cluster(snapshots[t]) for t in sorted(snapshots)]
    return cluster_snaps, oracle_object_sets(cluster_snaps, config.constraints)


@pytest.mark.parametrize("enumerator", ["baseline", "fba", "vba"])
def test_pipeline_matches_oracle(enumerator):
    records = implanted_stream()
    config = ICPEConfig(
        epsilon=2.0,
        cell_width=6.0,
        min_pts=3,
        constraints=CONSTRAINTS,
        enumerator=enumerator,
    )
    detector = CoMovementDetector(config)
    detector.feed_many(records)
    detector.finish()
    cluster_snaps, expected = reference_patterns(records, config)
    assert {p.objects for p in detector.patterns} == expected
    assert patterns_are_sound(detector.patterns, cluster_snaps, CONSTRAINTS)


def test_out_of_order_delivery_equivalent():
    """Bounded reordering must not change the detected pattern set."""
    records = implanted_stream(seed=7)
    config = ICPEConfig(
        epsilon=2.0,
        cell_width=6.0,
        min_pts=3,
        constraints=CONSTRAINTS,
        max_delay=3,
    )
    in_order = CoMovementDetector(config)
    in_order.feed_many(records)
    in_order.finish()

    shuffled = CoMovementDetector(config)
    shuffled.feed_many(
        bounded_shuffle(records, max_delay=3, rng=random.Random(42))
    )
    shuffled.finish()
    assert {p.objects for p in shuffled.patterns} == {
        p.objects for p in in_order.patterns
    }


def test_generated_dataset_end_to_end():
    """The Brinkhoff generator + full pipeline finds implanted groups."""
    dataset = generate_brinkhoff(
        BrinkhoffConfig(n_objects=60, horizon=24, seed=9, group_fraction=0.6)
    )
    epsilon = max(dataset.resolve_percentage(0.08), 12.0)
    config = ICPEConfig(
        epsilon=epsilon,
        cell_width=4 * epsilon,
        min_pts=3,
        constraints=PatternConstraints(m=3, k=6, l=2, g=2),
    )
    detector = CoMovementDetector(config)
    detector.feed_many(dataset.records)
    detector.finish()
    assert len(detector.patterns) > 0
    # Detected groups must be id-contiguous blocks (how groups were planted,
    # modulo background objects which rarely join).
    sizes = {p.size for p in detector.patterns}
    assert max(sizes) >= 3


def test_enumerator_choice_does_not_change_results_on_dataset():
    dataset = generate_brinkhoff(
        BrinkhoffConfig(n_objects=40, horizon=18, seed=13)
    )
    epsilon = max(dataset.resolve_percentage(0.08), 12.0)
    results = {}
    for enumerator in ("baseline", "fba", "vba"):
        config = ICPEConfig(
            epsilon=epsilon,
            cell_width=4 * epsilon,
            min_pts=3,
            constraints=PatternConstraints(m=3, k=5, l=2, g=2),
            enumerator=enumerator,
        )
        detector = CoMovementDetector(config)
        detector.feed_many(dataset.records)
        detector.finish()
        results[enumerator] = {p.objects for p in detector.patterns}
    assert results["baseline"] == results["fba"] == results["vba"]
