"""Optimisations must never change results — only costs.

The paper's lemmas and index choices are performance devices; detection
output is defined purely by (epsilon, minPts, M, K, L, G).  This suite
runs the full pipeline across every ablation switch combination and
asserts identical pattern sets.
"""

import itertools

import pytest

from repro.core.config import ICPEConfig
from repro.core.icpe import ICPEPipeline
from repro.model.constraints import PatternConstraints
from tests.integration.test_end_to_end import implanted_stream
from repro.model.snapshot import Snapshot

CONSTRAINTS = PatternConstraints(m=3, k=4, l=2, g=2)


def snapshots_from(records):
    by_time = {}
    for r in records:
        by_time.setdefault(r.time, Snapshot(r.time)).add_record(r)
    return [by_time[t] for t in sorted(by_time)]


@pytest.fixture(scope="module")
def stream_snapshots():
    return snapshots_from(implanted_stream(seed=17, horizon=10))


def run_with(snapshots, **overrides):
    defaults = dict(
        epsilon=2.0, cell_width=6.0, min_pts=3, constraints=CONSTRAINTS
    )
    defaults.update(overrides)
    pipeline = ICPEPipeline(ICPEConfig(**defaults))
    collector = pipeline.run(snapshots)
    return collector.object_sets()


def test_lemma_and_index_switches_invariant(stream_snapshots):
    reference = run_with(stream_snapshots)
    for lemma1, lemma2, local_index in itertools.product(
        (True, False), (True, False), ("rtree", "linear")
    ):
        got = run_with(
            stream_snapshots,
            lemma1=lemma1,
            lemma2=lemma2,
            local_index=local_index,
        )
        assert got == reference, (lemma1, lemma2, local_index)


def test_parallelism_invariant(stream_snapshots):
    reference = run_with(stream_snapshots)
    for allocate, query, enumerate_ in ((1, 1, 1), (3, 5, 7), (16, 32, 64)):
        got = run_with(
            stream_snapshots,
            allocate_parallelism=allocate,
            query_parallelism=query,
            enumerate_parallelism=enumerate_,
        )
        assert got == reference, (allocate, query, enumerate_)


def test_grid_width_invariant(stream_snapshots):
    reference = run_with(stream_snapshots)
    for cell_width in (0.5, 2.0, 25.0, 500.0):
        assert run_with(stream_snapshots, cell_width=cell_width) == reference


def test_rtree_fanout_invariant(stream_snapshots):
    reference = run_with(stream_snapshots)
    for fanout in (4, 8, 32):
        assert run_with(stream_snapshots, rtree_fanout=fanout) == reference
