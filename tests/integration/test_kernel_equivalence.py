"""Kernel x backend equivalence on the full ICPE pipeline.

The acceptance contract of the kernel strategy: for every combination of
``clustering_kernel`` (python | numpy) and ``backend`` (serial | parallel),
the pipeline must produce the identical per-snapshot cluster sets *and*
the identical downstream pattern set.  Same spirit as the serial/parallel
equivalence suite that guards the execution runtime.
"""

import itertools

import pytest

pytest.importorskip("numpy", reason="the numpy kernel needs NumPy")

from repro.core.config import ICPEConfig
from repro.core.detector import CoMovementDetector
from repro.core.icpe import ICPEPipeline
from repro.data.taxi import TaxiConfig, generate_taxi
from repro.model.constraints import PatternConstraints

KERNELS = ("python", "numpy")
BACKENDS = ("serial", "parallel")


@pytest.fixture(scope="module")
def dataset():
    return generate_taxi(TaxiConfig(n_objects=70, horizon=18, seed=9))


@pytest.fixture(scope="module")
def base_config(dataset):
    return ICPEConfig(
        epsilon=dataset.resolve_percentage(0.06),
        cell_width=dataset.resolve_percentage(1.6),
        min_pts=3,
        constraints=PatternConstraints(m=3, k=5, l=2, g=2),
    )


def run_pipeline(dataset, config):
    """Run the dataset through a fresh pipeline; returns (clusters, patterns)."""
    pipeline = ICPEPipeline(config)
    cluster_trace = []
    try:
        for snapshot in dataset.snapshots():
            pipeline.process_snapshot(snapshot)
            clusters = pipeline.last_cluster_snapshot
            cluster_trace.append(
                (snapshot.time, tuple(sorted(clusters.clusters.items())))
            )
        pipeline.finish()
    finally:
        pipeline.close()
    signature = frozenset(
        (pattern.objects, tuple(pattern.times.times))
        for pattern in pipeline.patterns
    )
    return cluster_trace, signature


def test_kernel_backend_grid_identical(dataset, base_config):
    outcomes = {}
    for kernel, backend in itertools.product(KERNELS, BACKENDS):
        config = base_config.with_kernel(kernel).with_backend(
            backend, 3 if backend == "parallel" else None
        )
        outcomes[(kernel, backend)] = run_pipeline(dataset, config)
    ref_clusters, ref_patterns = outcomes[("python", "serial")]
    assert ref_patterns, "workload must produce patterns for a meaningful test"
    for combo, (clusters, patterns) in outcomes.items():
        assert clusters == ref_clusters, combo
        assert patterns == ref_patterns, combo


def test_detector_reports_kernel_and_backend(dataset, base_config):
    config = base_config.with_kernel("numpy").with_backend("parallel", 2)
    detector = CoMovementDetector(config)
    assert detector.kernel_name == "numpy"
    assert detector.backend_name == "parallel"
    detector.feed_many(dataset.records)
    detector.finish()
    assert detector.meter.snapshots > 0


def test_numpy_kernel_topology_is_single_cluster_stage(base_config):
    pipeline = ICPEPipeline(base_config.with_kernel("numpy"))
    try:
        assert pipeline.job.stage_names == ["cluster", "enumerate"]
        assert pipeline.kernel_name == "numpy"
    finally:
        pipeline.close()


def test_min_pts_one_isolated_point_identical(base_config):
    """Regression: with min_pts=1 every isolated point is a DBSCAN
    singleton core, but the reference pipeline stage only ever sees
    pair-connected oids — the kernel stage must match it, not textbook
    DBSCAN, for pipeline-level cluster equality."""
    import dataclasses

    from repro.model.snapshot import Snapshot

    config = dataclasses.replace(base_config, epsilon=1.0, min_pts=1)
    points = [(1, 0.0, 0.0), (2, 0.5, 0.0), (9, 50.0, 50.0)]
    outcomes = {}
    for kernel in KERNELS:
        pipeline = ICPEPipeline(config.with_kernel(kernel))
        try:
            pipeline.process_snapshot(Snapshot.from_points(1, points))
            outcomes[kernel] = (
                dict(pipeline.last_cluster_snapshot.clusters),
                pipeline.clusters_formed,
            )
            pipeline.finish()
        finally:
            pipeline.close()
    assert outcomes["numpy"] == outcomes["python"]
    assert outcomes["python"] == ({0: (1, 2)}, 1)


def test_stranded_core_singleton_kept_identically(base_config):
    """Regression: at min_pts >= 2 a core point whose border neighbours
    all attach to smaller-id cores elsewhere forms a *pair-connected*
    singleton cluster — the reference stage emits it, so the kernel stage
    must keep it (singletons are only dropped at min_pts=1)."""
    import dataclasses

    from repro.model.snapshot import Snapshot

    points = [
        (50, 5.0, 5.0),                                   # stranded core
        (11, 4.5, 5.0), (21, 5.6, 5.0), (31, 5.0, 5.9),   # its borders
        (10, 3.5, 5.0), (12, 3.0, 4.5), (13, 3.0, 5.5),   # blob 1
        (20, 6.6, 5.0), (22, 7.1, 4.5), (23, 7.1, 5.5),   # blob 2
        (30, 5.0, 6.9), (32, 4.4, 7.3), (33, 5.6, 7.3),   # blob 3
    ]
    config = dataclasses.replace(
        base_config, epsilon=1.0, cell_width=4.0, min_pts=4
    )
    traces = {}
    for kernel in KERNELS:
        pipeline = ICPEPipeline(config.with_kernel(kernel))
        try:
            pipeline.process_snapshot(Snapshot.from_points(1, points))
            traces[kernel] = dict(pipeline.last_cluster_snapshot.clusters)
            pipeline.finish()
        finally:
            pipeline.close()
    assert traces["numpy"] == traces["python"]
    assert (50,) in traces["python"].values()


def test_python_kernel_topology_unchanged(base_config):
    pipeline = ICPEPipeline(base_config)
    try:
        assert pipeline.job.stage_names == [
            "allocate",
            "query",
            "cluster",
            "enumerate",
        ]
        assert pipeline.kernel_name == "python"
    finally:
        pipeline.close()
