"""The enumerate stage's idle-skip optimisation must be invisible.

`EnumerateOperator.end_batch` skips the absence tick for anchors whose
enumerator reports `is_idle()`.  This property test drives the operator
against the naive always-tick harness on random cluster streams and
asserts identical pattern sets for all three engines.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import EnumerateOperator
from repro.enumeration.base import PatternCollector
from repro.enumeration.baseline import BAEnumerator
from repro.enumeration.fba import FBAEnumerator
from repro.enumeration.partition import id_partitions
from repro.enumeration.vba import VBAEnumerator
from repro.model.constraints import PatternConstraints
from tests.conftest import random_cluster_stream, run_enumerator

FACTORIES = {
    "BA": BAEnumerator,
    "FBA": FBAEnumerator,
    "VBA": VBAEnumerator,
}


def run_operator_with_skip(snapshots, constraints, kind):
    """Drive EnumerateOperator (idle-skip path) over partition records."""
    operator = EnumerateOperator(
        lambda anchor: FACTORIES[kind](anchor, constraints)
    )
    collector = PatternCollector()
    for snapshot in snapshots:
        partitions = id_partitions(snapshot, constraints.m)
        for anchor, members in sorted(partitions.items()):
            collector.offer(
                snapshot.time,
                list(operator.process((snapshot.time, anchor, members))),
            )
        collector.offer(snapshot.time, list(operator.end_batch(snapshot.time)))
    final = snapshots[-1].time if snapshots else 0
    collector.offer(final, list(operator.finish()))
    return collector


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_idle_skip_equals_always_tick(seed):
    rng = random.Random(seed)
    constraints = PatternConstraints(
        m=rng.randint(2, 3),
        k=rng.randint(2, 5),
        l=rng.randint(1, 2),
        g=rng.randint(1, 3),
    )
    if constraints.k < constraints.l:
        return
    snapshots = random_cluster_stream(rng, rng.randint(3, 6), rng.randint(4, 12))
    for kind in ("BA", "FBA", "VBA"):
        with_skip = run_operator_with_skip(snapshots, constraints, kind)
        always_tick = run_enumerator(snapshots, constraints, kind)
        assert with_skip.object_sets() == always_tick.object_sets(), kind
