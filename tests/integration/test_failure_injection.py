"""Failure injection: the system's defined behaviour under faulty streams."""

import random

import pytest

from repro.core.config import ICPEConfig
from repro.core.detector import CoMovementDetector
from repro.data.corruption import (
    drop_in_transit,
    drop_records,
    duplicate_records,
    jitter_positions,
)
from repro.model.constraints import PatternConstraints
from repro.model.records import StreamRecord
from repro.streaming.sync import TimeSyncOperator
from tests.integration.test_end_to_end import implanted_stream

CONSTRAINTS = PatternConstraints(m=3, k=4, l=2, g=2)


def config(**overrides):
    defaults = dict(
        epsilon=2.0, cell_width=6.0, min_pts=3, constraints=CONSTRAINTS
    )
    defaults.update(overrides)
    return ICPEConfig(**defaults)


def detect(records, **overrides):
    detector = CoMovementDetector(config(**overrides))
    detector.feed_many(records)
    detector.finish()
    return detector


class TestValidation:
    @pytest.mark.parametrize(
        "fn,kwargs",
        [
            (drop_records, dict(fraction=1.0)),
            (drop_in_transit, dict(fraction=-0.1)),
            (duplicate_records, dict(fraction=1.5)),
            (jitter_positions, dict(magnitude=-1)),
        ],
    )
    def test_bad_arguments(self, fn, kwargs):
        with pytest.raises(ValueError):
            fn([], rng=random.Random(0), **kwargs)


class TestDuplicates:
    def test_duplicates_are_idempotent(self):
        """At-least-once delivery must not change the pattern set: a
        duplicate record lands in the same snapshot slot."""
        records = implanted_stream(seed=3)
        clean = detect(records)
        noisy = detect(
            duplicate_records(records, 0.3, random.Random(1)), max_delay=1
        )
        assert {p.objects for p in noisy.patterns} == {
            p.objects for p in clean.patterns
        }


class TestSourceLoss:
    def test_moderate_loss_degrades_gracefully(self):
        """Losing fixes can only shrink the pattern set (fewer co-located
        witnesses), never crash or fabricate objects."""
        records = implanted_stream(seed=5, horizon=14)
        clean = detect(records)
        lossy = detect(drop_records(records, 0.25, random.Random(2)))
        clean_objects = {o for p in clean.patterns for o in p.objects}
        lossy_objects = {o for p in lossy.patterns for o in p.objects}
        assert lossy_objects <= clean_objects
        # Soundness is preserved under loss: witnesses still hold.
        for pattern in lossy.patterns:
            assert pattern.satisfies(CONSTRAINTS)

    def test_total_object_loss(self):
        """A stream with one object yields no patterns and no errors."""
        records = [
            StreamRecord(1, 0.0, 0.0, t, t - 1 if t > 1 else None)
            for t in range(1, 8)
        ]
        detector = detect(records)
        assert detector.patterns == []


class TestTransitLoss:
    def test_sync_blocks_then_flushes(self):
        """Records whose predecessor is lost in transit stay buffered; the
        end-of-stream flush releases them best-effort."""
        records = [
            StreamRecord(1, 0.0, 0.0, 1, None),
            StreamRecord(1, 0.0, 0.0, 2, 1),
            StreamRecord(1, 0.0, 0.0, 3, 2),
        ]
        sync = TimeSyncOperator(max_delay=0)
        emitted = []
        emitted += sync.feed(records[0])
        # records[1] lost in transit; records[2] references it.
        emitted += sync.feed(records[2])
        assert [s.time for s in emitted] == [1]
        flushed = sync.flush()
        assert [s.time for s in flushed] == [3]

    def test_pipeline_survives_transit_loss(self):
        records = implanted_stream(seed=9, horizon=10)
        lossy = drop_in_transit(records, 0.15, random.Random(3))
        detector = CoMovementDetector(config(max_delay=12))
        detector.feed_many(lossy)
        detector.finish()
        for pattern in detector.patterns:
            assert pattern.satisfies(CONSTRAINTS)


class TestJitter:
    def test_small_jitter_harmless(self):
        """Noise well below epsilon keeps group clustering intact."""
        records = implanted_stream(seed=11)
        clean = detect(records)
        noisy = detect(jitter_positions(records, 0.1, random.Random(4)))
        assert {p.objects for p in noisy.patterns} == {
            p.objects for p in clean.patterns
        }

    def test_large_jitter_destroys_clusters(self):
        """Noise far above epsilon disperses every group."""
        records = implanted_stream(seed=13)
        noisy = detect(jitter_positions(records, 50.0, random.Random(5)))
        assert noisy.patterns == []
