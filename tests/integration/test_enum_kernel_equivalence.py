"""Enumeration-kernel x enumerator x clustering-kernel x backend grid.

The acceptance contract of the enumeration-kernel strategy: for every
combination of ``enumeration_kernel`` (python | numpy), ``enumerator``
(fba | vba), ``clustering_kernel`` (python | numpy) and ``backend``
(serial | parallel), the full ICPE pipeline must produce the identical
pattern set.  Same spirit as the clustering-kernel equivalence suite
that guards the PR-2 strategy axis — this grid is the PED-phase half.
"""

import itertools

import pytest

pytest.importorskip("numpy", reason="the numpy kernels need NumPy")

from repro.core.config import ICPEConfig
from repro.core.detector import CoMovementDetector
from repro.core.icpe import ICPEPipeline
from repro.data.taxi import TaxiConfig, generate_taxi
from repro.model.constraints import PatternConstraints

ENUM_KERNELS = ("python", "numpy")
CLUSTER_KERNELS = ("python", "numpy")
BACKENDS = ("serial", "parallel")


@pytest.fixture(scope="module")
def dataset():
    return generate_taxi(TaxiConfig(n_objects=70, horizon=18, seed=9))


@pytest.fixture(scope="module")
def base_config(dataset):
    return ICPEConfig(
        epsilon=dataset.resolve_percentage(0.06),
        cell_width=dataset.resolve_percentage(1.6),
        min_pts=3,
        constraints=PatternConstraints(m=3, k=5, l=2, g=2),
    )


def run_pipeline(dataset, config):
    """Run the dataset through a fresh pipeline; returns its signature."""
    pipeline = ICPEPipeline(config)
    try:
        for snapshot in dataset.snapshots():
            pipeline.process_snapshot(snapshot)
        pipeline.finish()
    finally:
        pipeline.close()
    return frozenset(
        (pattern.objects, tuple(pattern.times.times))
        for pattern in pipeline.patterns
    )


@pytest.mark.parametrize("enumerator", ["fba", "vba"])
def test_enum_kernel_grid_identical(dataset, base_config, enumerator):
    outcomes = {}
    for enum_kernel, kernel, backend in itertools.product(
        ENUM_KERNELS, CLUSTER_KERNELS, BACKENDS
    ):
        config = (
            base_config.with_enumerator(enumerator)
            .with_enum_kernel(enum_kernel)
            .with_kernel(kernel)
            .with_backend(backend, 3 if backend == "parallel" else None)
        )
        outcomes[(enum_kernel, kernel, backend)] = run_pipeline(dataset, config)
    reference = outcomes[("python", "python", "serial")]
    assert reference, "workload must produce patterns for a meaningful test"
    for combo, patterns in outcomes.items():
        assert patterns == reference, (enumerator, combo)


def test_baseline_with_numpy_enum_kernel_rejected(base_config):
    with pytest.raises(ValueError, match="no bitmap form"):
        base_config.with_enumerator("baseline").with_enum_kernel("numpy")


def test_unknown_enum_kernel_rejected(base_config):
    with pytest.raises(ValueError, match="enumeration_kernel"):
        base_config.with_enum_kernel("cuda")


def test_detector_reports_enumeration_kernel(dataset, base_config):
    config = base_config.with_enum_kernel("numpy").with_kernel("numpy")
    detector = CoMovementDetector(config)
    assert detector.enumeration_kernel_name == "numpy"
    assert detector.kernel_name == "numpy"
    assert detector.backend_name == "serial"
