"""Rectangle and range-region tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rect import Rect, range_region, upper_range_region

coord = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)


def rect_strategy():
    return st.tuples(coord, coord, coord, coord).map(
        lambda t: Rect(
            min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3])
        )
    )


class TestRectBasics:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError, match="degenerate"):
            Rect(1, 0, 0, 1)

    def test_point_rect(self):
        r = Rect.point(3, 4)
        assert r.area == 0
        assert r.contains_point(3, 4)
        assert not r.contains_point(3.0001, 4)

    def test_dimensions(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4
        assert r.height == 3
        assert r.area == 12
        assert r.margin == 7
        assert r.center == (2.0, 1.5)

    def test_contains_point_closed_boundary(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0, 0)
        assert r.contains_point(1, 1)
        assert r.contains_point(0, 1)
        assert not r.contains_point(1.0000001, 1)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(2, 2, 8, 8))
        assert outer.contains(outer)
        assert not outer.contains(Rect(2, 2, 11, 8))


class TestIntersection:
    def test_overlapping(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_touching_edges_intersect(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_intersection_area(self):
        assert Rect(0, 0, 2, 2).intersection_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0.0

    @given(rect_strategy(), rect_strategy())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rect_strategy(), rect_strategy())
    def test_intersection_area_bounded(self, a, b):
        area = a.intersection_area(b)
        assert 0 <= area <= min(a.area, b.area) + 1e-6


class TestUnion:
    def test_union_covers_both(self):
        a, b = Rect(0, 0, 1, 1), Rect(5, 5, 6, 7)
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(rect_strategy(), rect_strategy())
    def test_union_is_smallest_cover(self, a, b):
        u = a.union(b)
        assert u.min_x == min(a.min_x, b.min_x)
        assert u.max_y == max(a.max_y, b.max_y)

    @given(rect_strategy(), rect_strategy())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    def test_extend_point(self):
        r = Rect(0, 0, 1, 1).extend_point(5, -3)
        assert r == Rect(0, -3, 5, 1)


class TestRangeRegion:
    def test_square_of_side_two_epsilon(self):
        r = range_region(10, 20, 3)
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (7, 17, 13, 23)

    def test_negative_epsilon_raises(self):
        with pytest.raises(ValueError):
            range_region(0, 0, -1)

    def test_upper_region_is_upper_half(self):
        full = range_region(10, 20, 3)
        upper = upper_range_region(10, 20, 3)
        assert upper.min_x == full.min_x and upper.max_x == full.max_x
        assert upper.min_y == 20 and upper.max_y == full.max_y

    @given(coord, coord, st.floats(min_value=0, max_value=1e4))
    def test_l1_ball_inside_range_region(self, x, y, eps):
        """Every point within L1 distance eps lies inside the region."""
        region = range_region(x, y, eps)
        # Extremes of the L1 ball.
        for dx, dy in ((eps, 0), (-eps, 0), (0, eps), (0, -eps)):
            assert region.contains_point(x + dx, y + dy)
