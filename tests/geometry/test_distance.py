"""Distance metric unit and property tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.distance import (
    chebyshev_distance,
    euclidean_distance,
    get_metric,
    l1_distance,
)

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestL1Distance:
    def test_axis_aligned(self):
        assert l1_distance(0, 0, 3, 0) == 3
        assert l1_distance(0, 0, 0, 4) == 4

    def test_diagonal_sums_components(self):
        assert l1_distance(1, 2, 4, 6) == 3 + 4

    def test_zero_for_identical_points(self):
        assert l1_distance(5.5, -2.5, 5.5, -2.5) == 0.0


class TestEuclideanDistance:
    def test_pythagorean_triple(self):
        assert euclidean_distance(0, 0, 3, 4) == pytest.approx(5.0)

    def test_single_axis(self):
        assert euclidean_distance(2, 0, 7, 0) == pytest.approx(5.0)


class TestChebyshevDistance:
    def test_takes_max_component(self):
        assert chebyshev_distance(0, 0, 3, 7) == 7
        assert chebyshev_distance(0, 0, 9, 2) == 9


class TestGetMetric:
    @pytest.mark.parametrize(
        "name,fn",
        [
            ("l1", l1_distance),
            ("manhattan", l1_distance),
            ("L2", euclidean_distance),
            ("euclidean", euclidean_distance),
            ("linf", chebyshev_distance),
            ("Chebyshev", chebyshev_distance),
        ],
    )
    def test_aliases(self, name, fn):
        assert get_metric(name) is fn

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("cosine")


class TestMetricProperties:
    @given(coords, coords, coords, coords)
    def test_symmetry(self, x1, y1, x2, y2):
        for metric in (l1_distance, euclidean_distance, chebyshev_distance):
            assert metric(x1, y1, x2, y2) == metric(x2, y2, x1, y1)

    @given(coords, coords, coords, coords)
    def test_non_negative(self, x1, y1, x2, y2):
        for metric in (l1_distance, euclidean_distance, chebyshev_distance):
            assert metric(x1, y1, x2, y2) >= 0

    @given(coords, coords, coords, coords)
    def test_metric_ordering(self, x1, y1, x2, y2):
        """linf <= l2 <= l1 holds pointwise in the plane."""
        linf = chebyshev_distance(x1, y1, x2, y2)
        l2 = euclidean_distance(x1, y1, x2, y2)
        l1 = l1_distance(x1, y1, x2, y2)
        assert linf <= l2 * (1 + 1e-12) + 1e-9
        assert l2 <= l1 * (1 + 1e-12) + 1e-9

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality_l1(self, x1, y1, x2, y2, x3, y3):
        direct = l1_distance(x1, y1, x3, y3)
        detour = l1_distance(x1, y1, x2, y2) + l1_distance(x2, y2, x3, y3)
        assert direct <= detour * (1 + 1e-12) + 1e-9

    @given(coords, coords)
    def test_identity(self, x, y):
        for metric in (l1_distance, euclidean_distance, chebyshev_distance):
            assert metric(x, y, x, y) == 0


def test_euclidean_matches_hypot_formula():
    assert euclidean_distance(1, 1, 4, 5) == math.hypot(3, 4)
