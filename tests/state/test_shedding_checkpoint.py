"""Checkpoint x load-shedding interaction (shedding-enabled grid rows).

Shedding adds three pieces of session state — the policy's drop RNG,
the SLO controller's latency window/rate, and the shed counters — and
all of them must round-trip through a checkpoint for the restart
differential to hold: restoring mid-stream and continuing must replay
the *same* drop decisions the uninterrupted run makes.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import open_session
from repro.state import Checkpoint

from tests.state.conftest import (
    BASE_KNOBS,
    cluster_stream,
    run_uninterrupted,
    run_with_restart,
    watermark_boundaries,
)

pytestmark = [pytest.mark.checkpoint, pytest.mark.shedding]

#: Shedding-enabled rows of the restart-equivalence grid.
SHED_GRID = [
    dict(shed_policy="random", shed_rate=0.3, shed_seed=5),
    dict(shed_policy="pattern_aware", shed_rate=0.3, shed_seed=5),
    dict(
        shed_policy="pattern_aware",
        shed_rate=0.2,
        shed_seed=5,
        target_p99_ms=1e9,
    ),
]


class TestShedRestartEquivalence:
    @pytest.mark.parametrize(
        "shed_kwargs",
        SHED_GRID,
        ids=lambda kw: f"{kw['shed_policy']}-slo{int('target_p99_ms' in kw)}",
    )
    def test_restart_replays_drop_decisions(self, shed_kwargs):
        records = cluster_stream(seed=13, n_times=12, n_objects=8)
        oracle = run_uninterrupted(records, **shed_kwargs)
        boundaries = watermark_boundaries(records, **shed_kwargs)
        assert boundaries, "stream must emit watermarks to cut at"
        for cut in boundaries[:: max(1, len(boundaries) // 3)]:
            restarted = run_with_restart(records, cut, **shed_kwargs)
            assert restarted == oracle, f"divergence restoring at {cut}"


class TestShedStateRoundtrip:
    def _session(self, **extra):
        return open_session(
            **BASE_KNOBS,
            shed_policy="pattern_aware",
            shed_rate=0.4,
            shed_seed=9,
            **extra,
        )

    def test_counters_and_controller_roundtrip(self):
        records = cluster_stream(seed=13, n_times=10, n_objects=8)
        first = self._session()
        for record in records:
            first.feed(record)
        checkpoint = Checkpoint.from_bytes(first.checkpoint().to_bytes())
        stats = first.shedding_stats()
        first.close()
        assert stats["records_shed"] > 0

        second = self._session(restore=checkpoint)
        try:
            restored = second.shedding_stats()
            assert restored == stats
            assert (
                second.slo_controller.snapshot_state()
                == first.slo_controller.snapshot_state()
            )
            assert (
                second.shed_policy.snapshot_state()
                == first.shed_policy.snapshot_state()
            )
        finally:
            second.close()

    def test_pre_shedding_checkpoint_still_restores(self):
        """A checkpoint without the ``shedding`` payload (taken before
        the subsystem existed) restores cleanly with default state."""
        records = cluster_stream(seed=13, n_times=8, n_objects=8)
        first = self._session()
        for record in records:
            first.feed(record)
        checkpoint = first.checkpoint()
        first.close()
        stripped = replace(
            checkpoint,
            master_states={
                name: blob
                for name, blob in checkpoint.master_states.items()
                if name != "shedding"
            },
        )
        second = self._session(restore=stripped)
        try:
            stats = second.shedding_stats()
            assert stats["records_shed"] == 0
            assert stats["shed_rate"] == pytest.approx(0.4)
        finally:
            second.close()

    def test_shed_config_must_match_on_restore(self):
        """Shedding knobs are detection parameters, not execution
        surface: a restore under different shedding config is refused."""
        from repro.state import CheckpointError

        records = cluster_stream(seed=13, n_times=6, n_objects=8)
        first = self._session()
        for record in records:
            first.feed(record)
        checkpoint = first.checkpoint()
        first.close()
        with pytest.raises(CheckpointError):
            open_session(
                **BASE_KNOBS,
                shed_policy="random",
                shed_rate=0.4,
                restore=checkpoint,
            )
