"""Bounded state: TTL trajectory eviction and VBA candidate eviction.

Two safety arguments are tested differentially.  First, evicting an
idle trajectory chain must be *transparent*: a dense stream (where
nothing is ever idle long enough) produces identical events with and
without a TTL, and an object that reappears after eviction behaves as a
brand-new object instead of deadlocking the watermark on its stale
``last_time`` link.  Second, VBA's candidate-retention horizon of
``2 * (K + G)`` never drops a pattern the unbounded reference confirms.
"""

from __future__ import annotations

import random

import pytest

from repro import PatternConstraints, open_session
from repro.enumeration.partition import PartitionRouter
from repro.enumeration.vba import VBAEnumerator
from repro.model.records import StreamRecord
from repro.session import event_to_dict
from repro.streaming.sync import TimeSyncOperator

from tests.conftest import random_cluster_stream
from tests.state.conftest import (
    BASE_KNOBS,
    cluster_stream,
    run_uninterrupted,
)

pytestmark = pytest.mark.checkpoint


class TestTrajectoryTTL:
    def test_dense_stream_events_are_unchanged(self):
        records = cluster_stream(seed=41)
        assert run_uninterrupted(records, trajectory_ttl=3) == (
            run_uninterrupted(records)
        )

    def test_ttl_must_exceed_max_delay(self):
        with pytest.raises(ValueError, match="trajectory_ttl"):
            open_session(**BASE_KNOBS, max_delay=2, trajectory_ttl=2)
        with pytest.raises(ValueError, match="trajectory_ttl"):
            TimeSyncOperator(max_delay=2, trajectory_ttl=1)

    def _gapped_stream(self) -> list[StreamRecord]:
        """Object 99 appears, vanishes for 10 ticks, then reappears with
        a ``last_time`` link pointing at its pre-eviction record."""
        records = []
        for t in range(20):
            for oid in range(4):
                records.append(
                    StreamRecord(
                        oid=oid,
                        time=t,
                        x=float(oid % 2),
                        y=float(oid // 2),
                        last_time=t - 1 if t else None,
                    )
                )
            if t in (0, 1, 14, 15):
                last = {0: None, 1: 0, 14: 1, 15: 14}[t]
                records.append(
                    StreamRecord(
                        oid=99, time=t, x=0.2, y=0.0, last_time=last
                    )
                )
        return records

    def test_reappearing_trajectory_is_fresh_not_deadlocked(self):
        """Without the eviction clamp, the t=14 record's stale link to
        t=1 (evicted) would stall the watermark forever.  With it, the
        stream drains completely and the object re-enters clusters."""
        session = open_session(**BASE_KNOBS, trajectory_ttl=3)
        events = []
        for record in self._gapped_stream():
            events.extend(session.feed(record))
        watermarks = [e.time for e in events if e.kind == "watermark"]
        assert watermarks == list(range(19))
        metrics = session.state_memory()["sync"]
        assert metrics["chains_evicted"] >= 1
        session.finish()
        session.close()

    def test_eviction_counts_surface_in_result(self):
        session = open_session(**BASE_KNOBS, trajectory_ttl=3)
        for record in self._gapped_stream():
            session.feed(record)
        memory = session.result().state_memory
        assert memory["sync"]["chains_evicted"] >= 1
        assert memory["sync"]["chains"] <= 5
        for component in ("cluster", "enumerate", "collector", "meter"):
            assert component in memory, sorted(memory)
        session.finish()
        session.close()

    def test_evicted_chain_state_is_dropped_from_checkpoints(self):
        records = self._gapped_stream()
        session = open_session(**BASE_KNOBS, trajectory_ttl=3)
        for record in records:
            session.feed(record)
        checkpoint = session.checkpoint()
        session.close()
        from repro.state import decode_payload

        sync_state = decode_payload(checkpoint.master_states["sync"])
        assert sync_state["chains_evicted"] >= 1
        # 4 dense objects plus at most the one recent sparse chain.
        assert len(sync_state["chains"]) <= 5


class TestVBACandidateRetention:
    @pytest.mark.parametrize("seed", [1, 7, 19, 42])
    def test_bounded_retention_confirms_every_pattern(self, seed):
        """Differential sweep on dense random workloads: the bounded
        candidate list (horizon ``2 * (K + G)``) confirms exactly the
        patterns of the unbounded paper semantics."""
        constraints = PatternConstraints(m=2, k=3, l=2, g=2)
        retention = 2 * (constraints.k + constraints.g)
        rng = random.Random(seed)
        snapshots = random_cluster_stream(
            rng, n_objects=6, horizon=30, drop_probability=0.1
        )
        results = {}
        for name, kwargs in (
            ("unbounded", {}),
            ("bounded", {"candidate_retention": retention}),
        ):
            router = PartitionRouter(constraints.m)
            enums: dict[int, VBAEnumerator] = {}
            out = []
            for snapshot in snapshots:
                for anchor, members in router.route(snapshot):
                    enum = enums.get(anchor)
                    if enum is None:
                        enum = enums[anchor] = VBAEnumerator(
                            anchor, constraints, **kwargs
                        )
                    out.extend(
                        map(str, enum.on_partition(snapshot.time, members))
                    )
            for anchor in sorted(enums):
                out.extend(map(str, enums[anchor].finish()))
            results[name] = sorted(out)
        assert results["bounded"] == results["unbounded"]

    def test_eviction_counter_reports_in_session_metrics(self):
        records = cluster_stream(seed=2, n_times=30, n_objects=6)
        session = open_session(
            **BASE_KNOBS,
            enumerator="vba",
            vba_candidate_retention=2 * (BASE_KNOBS["constraints"].k
                                         + BASE_KNOBS["constraints"].g),
        )
        for record in records:
            session.feed(record)
        memory = session.state_memory()
        assert "candidates_evicted" in memory["enumerate"]
        session.finish()
        session.close()

    def test_session_events_identical_with_retention(self):
        records = cluster_stream(seed=2, n_times=30, n_objects=6)
        retention = 2 * (
            BASE_KNOBS["constraints"].k + BASE_KNOBS["constraints"].g
        )
        bounded = run_uninterrupted(
            records, enumerator="vba", vba_candidate_retention=retention
        )
        unbounded = run_uninterrupted(records, enumerator="vba")
        assert [e for e in bounded if e["kind"] == "pattern"] == (
            [e for e in unbounded if e["kind"] == "pattern"]
        )
