"""Property tests: every operator's state payload round-trips exactly.

For each stateful component, hypothesis drives a random prefix of work,
snapshots the state, restores it into a *fresh* instance, then drives
the identical suffix through both — outputs and final payloads must
match.  Payloads are also pushed through the pickle codec (the same
bytes a spawn-context worker receives), including VBA bit strings
longer than 64 snapshots, which span multiple uint64 words.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration.base import PatternCollector
from repro.enumeration.baseline import BAEnumerator
from repro.enumeration.fba import FBAEnumerator
from repro.enumeration.partition import PartitionRouter
from repro.enumeration.vba import VBAEnumerator
from repro.core.live import ConvoyTracker
from repro.model.batch import RecordBatch
from repro.model.constraints import PatternConstraints
from repro.model.records import StreamRecord
from repro.state import decode_payload, digest_of, encode_payload
from repro.streaming.metrics import LatencyThroughputMeter, SnapshotTiming
from repro.streaming.sync import TimeSyncOperator

from tests.conftest import random_cluster_stream

pytestmark = pytest.mark.checkpoint

CONSTRAINTS = PatternConstraints(m=2, k=3, l=2, g=2)

ENUMERATORS = {
    "ba": lambda anchor: BAEnumerator(anchor, CONSTRAINTS),
    "fba": lambda anchor: FBAEnumerator(anchor, CONSTRAINTS),
    "vba": lambda anchor: VBAEnumerator(anchor, CONSTRAINTS),
}


def _codec_roundtrip(payload):
    """Run a payload through the worker-boundary codec; returns the copy."""
    digest, data = encode_payload(payload)
    assert digest_of(data) == digest
    clone = decode_payload(data)
    # Stability: re-encoding the decoded payload yields the same digest,
    # so an incremental capture across a worker boundary stays a no-op.
    assert encode_payload(clone)[0] == digest
    return clone


def _drive_enumerator(kind, snapshots, split):
    """Original vs snapshot+restore at ``split``: identical emissions."""
    factory = ENUMERATORS[kind]
    router = PartitionRouter(CONSTRAINTS.m)
    routed = [
        (snapshot.time, list(router.route(snapshot)))
        for snapshot in snapshots
    ]
    anchors = sorted({a for _, parts in routed for a, _ in parts})
    for anchor in anchors:
        original = factory(anchor)
        emitted = []
        for index, (time, parts) in enumerate(routed):
            if index == split:
                clone = factory(anchor)
                clone.restore_state(
                    _codec_roundtrip(original.snapshot_state())
                )
                original = clone
            for part_anchor, members in parts:
                if part_anchor == anchor:
                    emitted.append(
                        sorted(map(str, original.on_partition(time, members)))
                    )
        emitted.append(sorted(map(str, original.finish())))

        reference = factory(anchor)
        expected = []
        for time, parts in routed:
            for part_anchor, members in parts:
                if part_anchor == anchor:
                    expected.append(
                        sorted(map(str, reference.on_partition(time, members)))
                    )
        expected.append(sorted(map(str, reference.finish())))
        assert emitted == expected, f"anchor {anchor} diverged"


class TestEnumeratorRoundTrip:
    @pytest.mark.parametrize("kind", sorted(ENUMERATORS))
    @given(seed=st.integers(0, 10_000), split=st.integers(0, 11))
    @settings(max_examples=25, deadline=None)
    def test_random_streams(self, kind, seed, split):
        rng = random.Random(seed)
        snapshots = random_cluster_stream(rng, n_objects=5, horizon=12)
        _drive_enumerator(kind, snapshots, split)

    @given(seed=st.integers(0, 1_000), split=st.integers(40, 70))
    @settings(max_examples=5, deadline=None)
    def test_vba_multiword_bitstrings(self, seed, split):
        """Streams past 64 snapshots span multiple 64-bit words in the
        VBA bit strings; the payload must carry them losslessly."""
        rng = random.Random(seed)
        snapshots = random_cluster_stream(
            rng, n_objects=3, horizon=80, drop_probability=0.05
        )
        _drive_enumerator("vba", snapshots, split)

    def test_unsupported_enumerator_raises(self):
        from repro.enumeration.base import AnchorEnumerator

        class Bare(AnchorEnumerator):
            def on_partition(self, time, members):
                return []

            def finish(self):
                return []

        with pytest.raises(NotImplementedError):
            Bare(1, CONSTRAINTS).snapshot_state()


class TestSyncOperatorRoundTrip:
    @given(
        seed=st.integers(0, 10_000),
        max_delay=st.integers(0, 2),
        split=st.integers(1, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_out_of_order_streams(self, seed, max_delay, split):
        rng = random.Random(seed)
        records = []
        for t in range(8):
            for oid in range(4):
                if rng.random() < 0.85:
                    records.append(
                        StreamRecord(
                            oid=oid,
                            time=t,
                            x=rng.random(),
                            y=rng.random(),
                            last_time=None,
                        )
                    )
        # Bounded shuffle within the delay guarantee.
        records.sort(key=lambda r: r.time + rng.uniform(0, max_delay))

        original = TimeSyncOperator(max_delay=max_delay)
        emitted = []
        for index, record in enumerate(records):
            if index == min(split, len(records)):
                clone = TimeSyncOperator(max_delay=max_delay)
                clone.restore_state(
                    _codec_roundtrip(original.snapshot_state())
                )
                original = clone
            emitted.extend(s.time for s in original.feed(record))
        emitted.extend(s.time for s in original.flush())

        reference = TimeSyncOperator(max_delay=max_delay)
        expected = []
        for record in records:
            expected.extend(s.time for s in reference.feed(record))
        expected.extend(s.time for s in reference.flush())
        assert emitted == expected

    def test_batch_path_state_matches_pointwise(self):
        records = [
            StreamRecord(oid=o, time=t, x=float(o), y=0.0, last_time=None)
            for t in range(4)
            for o in range(3)
        ]
        pointwise = TimeSyncOperator(max_delay=1)
        for record in records:
            list(pointwise.feed(record))
        batched = TimeSyncOperator(max_delay=1)
        list(batched.feed_batch(RecordBatch.pack(records, 5).__next__()))
        for record in records[5:]:
            list(batched.feed(record))
        assert (
            pointwise.snapshot_state() == batched.snapshot_state()
        )


class TestMasterComponentsRoundTrip:
    def test_collector_roundtrip_preserves_dedup(self):
        rng = random.Random(7)
        snapshots = random_cluster_stream(rng, n_objects=5, horizon=10)
        collector = PatternCollector()
        router = PartitionRouter(CONSTRAINTS.m)
        enums: dict[int, FBAEnumerator] = {}
        for snapshot in snapshots:
            for anchor, members in router.route(snapshot):
                enum = enums.setdefault(
                    anchor, FBAEnumerator(anchor, CONSTRAINTS)
                )
                collector.offer(
                    snapshot.time, enum.on_partition(snapshot.time, members)
                )
        clone = PatternCollector()
        clone.restore_state(_codec_roundtrip(collector.snapshot_state()))
        assert clone.detections == collector.detections
        assert clone.patterns() == collector.patterns()
        # Dedup survives: re-offering a known pattern stays a no-op.
        for time, pattern in collector.detections:
            clone.offer(time, [pattern])
        assert len(clone) == len(collector)

    def test_meter_roundtrip(self):
        meter = LatencyThroughputMeter()
        for t in range(5):
            meter.record(
                SnapshotTiming(
                    time=t,
                    latency_seconds=0.01 * (t + 1),
                    bottleneck_seconds=0.002,
                    locations=3 * t,
                    patterns_emitted=t,
                )
            )
        clone = LatencyThroughputMeter()
        clone.restore_state(_codec_roundtrip(meter.snapshot_state()))
        assert clone.summary() == meter.summary()
        assert clone.timings == meter.timings

    @given(seed=st.integers(0, 10_000), split=st.integers(0, 9))
    @settings(max_examples=25, deadline=None)
    def test_convoy_tracker_roundtrip(self, seed, split):
        rng = random.Random(seed)
        snapshots = random_cluster_stream(rng, n_objects=5, horizon=10)
        original = ConvoyTracker(m=2, k=2)
        emitted = []
        for index, snapshot in enumerate(snapshots):
            if index == split:
                clone = ConvoyTracker(m=2, k=2)
                clone.restore_state(
                    _codec_roundtrip(original.snapshot_state())
                )
                original = clone
            emitted.append(sorted(map(str, original.on_snapshot(snapshot))))
        emitted.append(sorted(map(str, original.finish())))

        reference = ConvoyTracker(m=2, k=2)
        expected = [
            sorted(map(str, reference.on_snapshot(s))) for s in snapshots
        ]
        expected.append(sorted(map(str, reference.finish())))
        assert emitted == expected


class TestSpawnContextStability:
    def test_payload_bytes_survive_a_fresh_interpreter(self, tmp_path):
        """The exact bytes a spawn worker ships must decode and
        re-encode to the same digest in a separate interpreter — the
        invariant the incremental digest cache rests on."""
        import os
        import subprocess
        import sys

        rng = random.Random(11)
        snapshots = random_cluster_stream(rng, n_objects=4, horizon=70)
        enum = VBAEnumerator(1, CONSTRAINTS)
        router = PartitionRouter(CONSTRAINTS.m)
        for snapshot in snapshots:
            for anchor, members in router.route(snapshot):
                if anchor == 1:
                    enum.on_partition(snapshot.time, members)
        digest, data = encode_payload(enum.snapshot_state())
        blob = tmp_path / "payload.bin"
        blob.write_bytes(data)
        script = tmp_path / "reencode.py"
        script.write_text(
            "import sys\n"
            "from pathlib import Path\n"
            "from repro.state import decode_payload, encode_payload\n"
            "payload = decode_payload(Path(sys.argv[1]).read_bytes())\n"
            "print(encode_payload(payload)[0])\n"
        )
        result = subprocess.run(
            [sys.executable, str(script), str(blob)],
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(
                os.path.dirname(os.path.dirname(__file__))
            ),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == digest
