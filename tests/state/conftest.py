"""Shared harness for the checkpoint/restore differential tests.

The restart-equivalence contract: take a checkpoint anywhere between two
feeds, open a fresh session from it, continue with the remaining
records — the concatenated event stream must equal the uninterrupted
run **event for event**, including the ``WatermarkAdvanced``
interleaving.  These helpers drive both sides of that differential.
"""

from __future__ import annotations

import random

from repro import PatternConstraints, open_session
from repro.model.records import StreamRecord
from repro.session import event_to_dict
from repro.state import Checkpoint

CONSTRAINTS = PatternConstraints(m=2, k=3, l=2, g=2)

BASE_KNOBS = dict(
    epsilon=2.0,
    cell_width=4.0,
    min_pts=2,
    constraints=CONSTRAINTS,
)


def cluster_stream(
    seed: int, n_times: int = 10, n_objects: int = 8
) -> list[StreamRecord]:
    """A deterministic record stream forming and breaking small clusters.

    Objects jitter around a few fixed sites, so density clusters form,
    drift apart and re-form — enough churn to exercise every enumerator
    state machine without making runs slow.
    """
    rng = random.Random(seed)
    records: list[StreamRecord] = []
    for t in range(n_times):
        for oid in range(n_objects):
            site = oid % 3 if rng.random() > 0.2 else rng.randrange(3)
            records.append(
                StreamRecord(
                    oid=oid,
                    time=t,
                    x=float(site) * 4.0 + rng.random(),
                    y=float(oid // 3) * 0.5,
                    last_time=t - 1 if t else None,
                )
            )
    return records


def run_uninterrupted(
    records: list[StreamRecord], **session_kwargs
) -> list[dict]:
    """The oracle: one session over the whole stream, events as dicts."""
    kwargs = {**BASE_KNOBS, **session_kwargs}
    session = open_session(**kwargs)
    events = []
    for record in records:
        events.extend(session.feed(record))
    events.extend(session.finish())
    session.close()
    return [event_to_dict(event) for event in events]


def watermark_boundaries(
    records: list[StreamRecord], **session_kwargs
) -> list[int]:
    """Record counts right after each ``WatermarkAdvanced`` emission."""
    kwargs = {**BASE_KNOBS, **session_kwargs}
    session = open_session(**kwargs)
    boundaries = []
    for fed, record in enumerate(records, start=1):
        if any(e.kind == "watermark" for e in session.feed(record)):
            boundaries.append(fed)
    session.finish()
    session.close()
    return boundaries


def run_with_restart(
    records: list[StreamRecord],
    cut: int,
    *,
    through_bytes: bool = True,
    restore_kwargs: dict | None = None,
    **session_kwargs,
) -> list[dict]:
    """Checkpoint after ``cut`` records, restore, continue to the end."""
    kwargs = {**BASE_KNOBS, **session_kwargs}
    first = open_session(**kwargs)
    events = []
    for record in records[:cut]:
        events.extend(first.feed(record))
    checkpoint = first.checkpoint()
    first.close()
    if through_bytes:
        checkpoint = Checkpoint.from_bytes(checkpoint.to_bytes())
    second = open_session(restore=checkpoint, **(restore_kwargs or {}))
    for record in records[cut:]:
        events.extend(second.feed(record))
    events.extend(second.finish())
    second.close()
    return [event_to_dict(event) for event in events]
