"""Checkpoint GC and automatic periodic checkpointing.

Two layers under test: the :mod:`repro.state.gc` sweep primitives
(naming scheme, newest-first listing, the never-delete-the-newest-valid
safety rule) and the session's auto-checkpoint loop built on them
(record/time cadences, restore from an auto-saved file, retention).
"""

from __future__ import annotations

import pytest

from repro import open_session
from repro.state import (
    Checkpoint,
    checkpoint_path,
    list_checkpoints,
    sweep_checkpoints,
)

from tests.state.conftest import (
    BASE_KNOBS,
    cluster_stream,
    run_uninterrupted,
)

pytestmark = pytest.mark.checkpoint


def make_checkpoint(**knobs) -> Checkpoint:
    """A small real checkpoint (the GC validates by loading files)."""
    session = open_session(**{**BASE_KNOBS, **knobs})
    for record in cluster_stream(3, n_times=3):
        session.feed(record)
    checkpoint = session.checkpoint()
    session.close()
    return checkpoint


class TestListing:
    def test_naming_scheme(self, tmp_path):
        assert (
            checkpoint_path(tmp_path, 17) == tmp_path / "checkpoint-17.ckpt"
        )

    def test_lists_newest_watermark_first_numerically(self, tmp_path):
        for watermark in (2, 10, 1):
            checkpoint_path(tmp_path, watermark).write_bytes(b"x")
        names = [path.name for path in list_checkpoints(tmp_path)]
        # numeric ordering: 10 > 2 > 1 (lexicographic would say 2 > 10)
        assert names == [
            "checkpoint-10.ckpt",
            "checkpoint-2.ckpt",
            "checkpoint-1.ckpt",
        ]

    def test_ignores_foreign_files_and_missing_dirs(self, tmp_path):
        (tmp_path / "notes.txt").write_text("keep me")
        (tmp_path / "checkpoint-x.ckpt").write_bytes(b"x")
        checkpoint_path(tmp_path, 3).write_bytes(b"x")
        assert [p.name for p in list_checkpoints(tmp_path)] == [
            "checkpoint-3.ckpt"
        ]
        assert list_checkpoints(tmp_path / "nope") == []


class TestSweep:
    def test_keeps_newest_n_valid(self, tmp_path):
        checkpoint = make_checkpoint()
        for watermark in range(5):
            checkpoint.save(checkpoint_path(tmp_path, watermark))
        deleted = sweep_checkpoints(tmp_path, keep_last=2)
        assert sorted(path.name for path in deleted) == [
            "checkpoint-0.ckpt",
            "checkpoint-1.ckpt",
            "checkpoint-2.ckpt",
        ]
        assert [p.name for p in list_checkpoints(tmp_path)] == [
            "checkpoint-4.ckpt",
            "checkpoint-3.ckpt",
        ]

    def test_never_removes_newest_valid_checkpoint(self, tmp_path):
        """The invariant: after any sweep, a restart can still load."""
        checkpoint = make_checkpoint()
        for watermark in range(4):
            checkpoint.save(checkpoint_path(tmp_path, watermark))
        # corrupt the newest files so the newest *valid* one is older
        checkpoint_path(tmp_path, 3).write_bytes(b"garbage")
        checkpoint_path(tmp_path, 2).write_bytes(b"garbage")
        sweep_checkpoints(tmp_path, keep_last=1)
        survivors = {path.name for path in list_checkpoints(tmp_path)}
        # checkpoint-1 is the newest valid: it must survive keep_last=1
        assert "checkpoint-1.ckpt" in survivors
        assert Checkpoint.load(checkpoint_path(tmp_path, 1)) is not None

    def test_corrupt_files_neither_counted_nor_deleted(self, tmp_path):
        checkpoint = make_checkpoint()
        checkpoint.save(checkpoint_path(tmp_path, 1))
        checkpoint.save(checkpoint_path(tmp_path, 2))
        checkpoint_path(tmp_path, 5).write_bytes(b"truncated")
        deleted = sweep_checkpoints(tmp_path, keep_last=1)
        # the corrupt file does not use up the retention budget ...
        assert [path.name for path in deleted] == ["checkpoint-1.ckpt"]
        # ... and is left in place for inspection
        assert checkpoint_path(tmp_path, 5).exists()

    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            sweep_checkpoints(tmp_path, keep_last=0)

    def test_sweep_below_budget_deletes_nothing(self, tmp_path):
        make_checkpoint().save(checkpoint_path(tmp_path, 1))
        assert sweep_checkpoints(tmp_path, keep_last=3) == []


class TestAutoCheckpoint:
    def test_record_cadence_saves_periodically(self, tmp_path):
        records = cluster_stream(7)  # 10 times x 8 objects
        session = open_session(
            **BASE_KNOBS,
            checkpoint_dir=tmp_path,
            checkpoint_every_records=16,
        )
        for record in records:
            session.feed(record)
        session.finish()
        session.close()
        saved = session.auto_checkpoints
        assert len(saved) >= 3
        assert all(path.exists() for path in saved)
        assert [p.name for p in saved] == sorted(
            (p.name for p in saved),
            key=lambda name: int(name.split("-")[1].split(".")[0]),
        )

    def test_default_cadence_is_every_watermark(self, tmp_path):
        records = cluster_stream(7, n_times=4)
        session = open_session(**BASE_KNOBS, checkpoint_dir=tmp_path)
        for record in records:
            session.feed(record)
        session.finish()
        session.close()
        # watermarks advance at times 1..3 during feeding (time 3's
        # close happens at finish, after which no save runs)
        assert len(session.auto_checkpoints) == 3

    def test_keep_last_bounds_the_directory(self, tmp_path):
        records = cluster_stream(7)
        session = open_session(
            **BASE_KNOBS,
            checkpoint_dir=tmp_path,
            checkpoint_keep_last=2,
        )
        for record in records:
            session.feed(record)
        session.finish()
        session.close()
        assert len(session.auto_checkpoints) >= 3
        remaining = list_checkpoints(tmp_path)
        assert len(remaining) == 2
        # the newest saved checkpoint survived
        assert remaining[0] == session.auto_checkpoints[-1]

    def test_restore_from_auto_checkpoint_matches_oracle(self, tmp_path):
        records = cluster_stream(7)
        oracle = run_uninterrupted(records)

        session = open_session(
            **BASE_KNOBS,
            checkpoint_dir=tmp_path,
            checkpoint_every_records=24,
        )
        fed = 0
        for record in records:
            session.feed(record)
            fed += 1
            if session.auto_checkpoints:
                break
        session.close()
        newest = list_checkpoints(tmp_path)[0]
        checkpoint = Checkpoint.load(newest)

        resumed = open_session(restore=checkpoint)
        from repro.session import event_to_dict

        events = []
        for record in records[checkpoint.records_ingested:]:
            events.extend(resumed.feed(record))
        events.extend(resumed.finish())
        resumed.close()
        tail = [event_to_dict(event) for event in events]
        assert tail == oracle[len(oracle) - len(tail):]

    def test_seconds_cadence(self, tmp_path, monkeypatch):
        import repro.session.session as session_module

        clock = {"now": 100.0}
        monkeypatch.setattr(
            session_module._time, "monotonic", lambda: clock["now"]
        )
        records = cluster_stream(7, n_times=6)
        session = open_session(
            **BASE_KNOBS,
            checkpoint_dir=tmp_path,
            checkpoint_every_seconds=60.0,
        )
        per_time = 8
        for index, record in enumerate(records):
            session.feed(record)
            if index == 3 * per_time:  # jump the clock mid-stream
                clock["now"] += 120.0
        saved_mid = list(session.auto_checkpoints)
        session.finish()
        session.close()
        assert len(saved_mid) == 1

    def test_invalid_keep_last_rejected_at_open(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            open_session(
                **BASE_KNOBS,
                checkpoint_dir=tmp_path,
                checkpoint_keep_last=0,
            )

    def test_config_validates_cadence(self):
        with pytest.raises(ValueError, match="checkpoint_every_records"):
            open_session(**BASE_KNOBS, checkpoint_every_records=0)
        with pytest.raises(ValueError, match="checkpoint_every_seconds"):
            open_session(**BASE_KNOBS, checkpoint_every_seconds=0.0)
