"""Restart equivalence: checkpoint -> restore -> continue == one run.

The headline differential of the checkpoint surface.  For every
watermark boundary of a stream, a session is stopped there, its
checkpoint round-tripped through bytes, a fresh session restored and
driven to the end — and the concatenated event stream must equal the
uninterrupted oracle **event for event** (``PatternConfirmed`` order,
``ConvoyDelta`` contents, ``WatermarkAdvanced`` interleaving, flush
tail).  The grid covers every backend and both kernels on each axis.
"""

from __future__ import annotations

import pytest

from repro import open_session
from repro.state import Checkpoint, CheckpointError

from tests.state.conftest import (
    BASE_KNOBS,
    cluster_stream,
    run_uninterrupted,
    run_with_restart,
    watermark_boundaries,
)

pytestmark = pytest.mark.checkpoint

KERNEL_GRID = [
    ("python", "python", "fba"),
    ("python", "numpy", "fba"),
    ("python", "numpy", "vba"),
    ("numpy", "python", "vba"),
    ("numpy", "numpy", "fba"),
]


class TestEveryWatermarkBoundary:
    @pytest.mark.parametrize(
        "clustering_kernel,enumeration_kernel,enumerator", KERNEL_GRID
    )
    def test_serial_full_boundary_sweep(
        self, clustering_kernel, enumeration_kernel, enumerator
    ):
        """Serial backend: restart at *every* watermark boundary."""
        records = cluster_stream(seed=17)
        kwargs = dict(
            clustering_kernel=clustering_kernel,
            enumeration_kernel=enumeration_kernel,
            enumerator=enumerator,
        )
        oracle = run_uninterrupted(records, **kwargs)
        boundaries = watermark_boundaries(records, **kwargs)
        assert boundaries, "stream produced no watermark boundaries"
        for cut in boundaries:
            restarted = run_with_restart(records, cut, **kwargs)
            assert restarted == oracle, f"diverged at boundary {cut}"

    def test_serial_baseline_enumerator(self):
        records = cluster_stream(seed=5, n_times=8, n_objects=6)
        kwargs = dict(enumerator="baseline")
        oracle = run_uninterrupted(records, **kwargs)
        for cut in watermark_boundaries(records, **kwargs):
            assert run_with_restart(records, cut, **kwargs) == oracle

    def test_mid_record_cuts_between_boundaries(self):
        """Cuts *between* watermarks (partial snapshots in flight) too."""
        records = cluster_stream(seed=23)
        oracle = run_uninterrupted(records)
        for cut in range(1, len(records), 7):
            assert run_with_restart(records, cut) == oracle, cut

    def test_with_convoy_tracking(self):
        records = cluster_stream(seed=9)
        kwargs = dict(track_convoys=True)
        oracle = run_uninterrupted(records, **kwargs)
        for cut in watermark_boundaries(records, **kwargs):
            restarted = run_with_restart(
                records, cut, restore_kwargs=dict(track_convoys=True), **kwargs
            )
            assert restarted == oracle, f"diverged at boundary {cut}"


class TestOtherBackends:
    def test_parallel_backend_restart(self):
        records = cluster_stream(seed=31)
        kwargs = dict(
            backend="parallel",
            parallel_workers=2,
            clustering_kernel="numpy",
            enumeration_kernel="numpy",
        )
        oracle = run_uninterrupted(records, **kwargs)
        boundaries = watermark_boundaries(records, **kwargs)
        for cut in boundaries[:: max(1, len(boundaries) // 3)]:
            restarted = run_with_restart(
                records,
                cut,
                restore_kwargs=dict(backend="parallel", parallel_workers=2),
                **kwargs,
            )
            assert restarted == oracle, f"diverged at boundary {cut}"

    def test_process_backend_restart(self):
        records = cluster_stream(seed=13, n_times=7, n_objects=6)
        kwargs = dict(backend="process", parallel_workers=2)
        oracle = run_uninterrupted(records, **kwargs)
        boundaries = watermark_boundaries(records)
        cut = boundaries[len(boundaries) // 2]
        restarted = run_with_restart(
            records,
            cut,
            restore_kwargs=dict(backend="process", parallel_workers=2),
            **kwargs,
        )
        assert restarted == oracle

    def test_checkpoint_migrates_across_backends(self):
        """A process-taken checkpoint restores into a serial session."""
        records = cluster_stream(seed=13, n_times=7, n_objects=6)
        oracle = run_uninterrupted(records)
        cut = watermark_boundaries(records)[1]
        restarted = run_with_restart(
            records,
            cut,
            restore_kwargs=dict(backend="serial", parallel_workers=None),
            backend="process",
            parallel_workers=2,
        )
        assert restarted == oracle


class TestCheckpointMechanics:
    def test_incremental_capture_reuses_unchanged_payloads(self):
        records = cluster_stream(seed=3)
        session = open_session(**BASE_KNOBS)
        for record in records[: len(records) // 2]:
            session.feed(record)
        first = session.checkpoint()
        second = session.checkpoint()
        assert first.captured == len(first.operator_states)
        assert first.reused == 0
        assert second.captured == 0
        assert second.reused == len(second.operator_states)
        assert second.operator_states == first.operator_states
        session.close()

    def test_restore_seeds_incremental_cache(self):
        records = cluster_stream(seed=3)
        session = open_session(**BASE_KNOBS)
        for record in records[:40]:
            session.feed(record)
        checkpoint = session.checkpoint()
        session.close()
        restored = open_session(restore=checkpoint)
        again = restored.checkpoint()
        assert again.captured == 0
        assert again.reused == len(checkpoint.operator_states)
        restored.close()

    def test_records_ingested_names_the_resume_point(self):
        records = cluster_stream(seed=3)
        session = open_session(**BASE_KNOBS)
        for record in records[:25]:
            session.feed(record)
        checkpoint = session.checkpoint()
        assert checkpoint.records_ingested == 25
        assert session.records_ingested == 25
        session.close()

    def test_save_load_roundtrip(self, tmp_path):
        records = cluster_stream(seed=3)
        session = open_session(**BASE_KNOBS)
        for record in records[:30]:
            session.feed(record)
        checkpoint = session.checkpoint()
        session.close()
        path = checkpoint.save(tmp_path / "ckpt" / "session.ckpt")
        loaded = Checkpoint.load(path)
        assert loaded.summary() == checkpoint.summary()
        assert loaded.operator_states == checkpoint.operator_states

    def test_incompatible_config_is_rejected(self):
        session = open_session(**BASE_KNOBS)
        session.feed(cluster_stream(seed=3)[0])
        checkpoint = session.checkpoint()
        session.close()
        with pytest.raises(CheckpointError, match="incompatible"):
            open_session(restore=checkpoint, min_pts=3)

    def test_backend_swap_is_allowed(self):
        session = open_session(**BASE_KNOBS)
        session.feed(cluster_stream(seed=3)[0])
        checkpoint = session.checkpoint()
        session.close()
        restored = open_session(
            restore=checkpoint, backend="parallel", parallel_workers=2
        )
        restored.close()

    def test_corrupt_bytes_raise_checkpoint_error(self):
        with pytest.raises(CheckpointError, match="cannot decode"):
            Checkpoint.from_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="not Checkpoint"):
            import pickle

            Checkpoint.from_bytes(pickle.dumps({"some": "dict"}))

    def test_checkpoint_after_finish_is_rejected(self):
        session = open_session(**BASE_KNOBS)
        session.finish()
        with pytest.raises(RuntimeError, match="finished"):
            session.checkpoint()
        session.close()

    def test_tracker_state_required_when_tracking(self):
        session = open_session(**BASE_KNOBS)
        session.feed(cluster_stream(seed=3)[0])
        checkpoint = session.checkpoint()
        session.close()
        with pytest.raises(CheckpointError, match="convoy-tracker"):
            open_session(restore=checkpoint, track_convoys=True)
