"""Crash injection: kill a worker mid-stream, recover from checkpoint.

A subprocess drives a process-backend session, saves a checkpoint to
disk, then SIGKILLs one ``repro-worker-N`` process and keeps feeding —
the backend must surface the death as a RuntimeError rather than hang.
The parent then restores the on-disk checkpoint and drives the rest of
the stream; the continued events must match the uninterrupted oracle's
tail exactly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest

from repro import open_session
from repro.session import event_to_dict
from repro.state import Checkpoint

from tests.state.conftest import BASE_KNOBS, cluster_stream

pytestmark = pytest.mark.checkpoint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))

CRASH_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro import PatternConstraints, open_session

    sys.path.insert(0, "{tests_root}")
    from tests.state.conftest import BASE_KNOBS, cluster_stream

    def main():
        records = cluster_stream(seed={seed}, n_times=7, n_objects=6)
        session = open_session(
            backend="process", parallel_workers=2, **BASE_KNOBS
        )
        for record in records[:{cut}]:
            session.feed(record)
        session.checkpoint().save(r"{checkpoint_path}")
        print("CHECKPOINT_SAVED", flush=True)

        victim = session.pipeline._backend._processes[0]
        assert victim.name.startswith("repro-worker-"), victim.name
        victim.kill()
        victim.join()

        try:
            for record in records[{cut}:]:
                session.feed(record)
        except RuntimeError as error:
            assert "died unexpectedly" in str(error), error
            print("CRASH_SURFACED", flush=True)
        else:
            print("NO_CRASH", flush=True)

    if __name__ == "__main__":
        main()
    """
)


class TestCrashRecovery:
    def test_restore_after_worker_kill_matches_oracle(self, tmp_path):
        seed, cut = 13, 24
        checkpoint_path = tmp_path / "crash.ckpt"
        script = tmp_path / "crash_session.py"
        script.write_text(
            CRASH_SCRIPT.format(
                seed=seed,
                cut=cut,
                checkpoint_path=checkpoint_path,
                tests_root=REPO_ROOT,
            )
        )
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=300,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert "CHECKPOINT_SAVED" in result.stdout
        assert "CRASH_SURFACED" in result.stdout, result.stdout

        # Recovery: restore the saved checkpoint, continue, compare to
        # an uninterrupted oracle split at the same ingestion point.
        records = cluster_stream(seed=seed, n_times=7, n_objects=6)
        checkpoint = Checkpoint.load(checkpoint_path)
        assert checkpoint.records_ingested == cut

        restored = open_session(restore=checkpoint)
        continued = []
        for record in records[cut:]:
            continued.extend(restored.feed(record))
        continued.extend(restored.finish())
        restored.close()
        continued = [event_to_dict(event) for event in continued]

        oracle = open_session(**BASE_KNOBS)
        for record in records[:cut]:
            oracle.feed(record)
        tail = []
        for record in records[cut:]:
            tail.extend(oracle.feed(record))
        tail.extend(oracle.finish())
        oracle.close()
        tail = [event_to_dict(event) for event in tail]

        assert continued == tail
