"""Cluster metrics parity: the process backend reports like serial.

Before this PR the process backend reported ``average_cluster_size`` as
0.0 and ``last_cluster_snapshot`` as ``None`` — the live cluster
operator existed only inside a worker process.  The reply protocol's
``state`` command now fetches the worker-side aggregates, so every
metrics surface must agree with a serial run of the same stream, both
mid-stream and after ``finish()`` (when the workers are already gone
and the final values must have been retained).
"""

from __future__ import annotations

import pytest

from repro import open_session

from tests.state.conftest import BASE_KNOBS, cluster_stream

pytestmark = pytest.mark.checkpoint


class TestProcessMetricsParity:
    @pytest.fixture(scope="class")
    def runs(self):
        records = cluster_stream(seed=29, n_times=7, n_objects=6)
        probes = {}
        for backend in ("serial", "process"):
            session = open_session(
                backend=backend,
                parallel_workers=2 if backend == "process" else None,
                **BASE_KNOBS,
            )
            for record in records:
                session.feed(record)
            mid = dict(
                avg=session.pipeline.average_cluster_size(),
                formed=session.pipeline.clusters_formed,
                snapshot=session.pipeline.last_cluster_snapshot,
            )
            session.finish()
            final = dict(
                avg=session.pipeline.average_cluster_size(),
                formed=session.pipeline.clusters_formed,
                snapshot=session.pipeline.last_cluster_snapshot,
            )
            session.close()
            probes[backend] = (mid, final)
        return probes

    def test_average_cluster_size_matches(self, runs):
        serial, process = runs["serial"], runs["process"]
        assert process[0]["avg"] == serial[0]["avg"] > 0.0
        assert process[1]["avg"] == serial[1]["avg"] > 0.0

    def test_clusters_formed_matches(self, runs):
        serial, process = runs["serial"], runs["process"]
        assert process[0]["formed"] == serial[0]["formed"] > 0
        assert process[1]["formed"] == serial[1]["formed"]

    def test_last_cluster_snapshot_ships_through_protocol(self, runs):
        serial, process = runs["serial"], runs["process"]
        for stage in (0, 1):
            ours, theirs = process[stage]["snapshot"], serial[stage]["snapshot"]
            assert ours is not None
            assert ours.time == theirs.time
            assert ours.clusters == theirs.clusters
