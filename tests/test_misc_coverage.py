"""Coverage of small utilities not exercised elsewhere."""

import pytest

from repro.cluster.gdc import GDCClusterer
from repro.data.dataset import TrajectoryDataset, euclidean_diameter, _human_bytes
from repro.geometry.rect import Rect
from repro.index.grid import cell_bounds
from repro.model.records import StreamRecord
from repro.model.snapshot import Snapshot


class TestGDCStats:
    def test_work_counters_populated(self):
        clusterer = GDCClusterer(epsilon=2.0, min_pts=2)
        snapshot = Snapshot.from_points(
            1, [(1, 0.0, 0.0), (2, 1.0, 0.0), (3, 50.0, 50.0)]
        )
        clusterer.cluster(snapshot)
        stats = clusterer.last_stats
        assert stats.locations == 3
        assert stats.occupied_cells >= 2
        assert stats.candidate_checks >= 1

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            GDCClusterer(epsilon=0, min_pts=2)


class TestDatasetUtilities:
    def test_euclidean_diameter(self):
        records = [
            StreamRecord(1, 0.0, 0.0, 1),
            StreamRecord(2, 3.0, 4.0, 1),
        ]
        assert euclidean_diameter(records) == pytest.approx(5.0)
        assert euclidean_diameter([]) == 0.0

    def test_human_bytes(self):
        assert _human_bytes(512) == "512.0B"
        assert _human_bytes(2048) == "2.0KB"
        assert _human_bytes(3 * 1024 * 1024) == "3.0MB"

    def test_empty_dataset_distance(self):
        assert TrajectoryDataset("empty").max_distance() == 0.0


class TestGridCellBounds:
    def test_bounds_tile_the_plane(self):
        a = cell_bounds((0, 0), 2.0)
        b = cell_bounds((1, 0), 2.0)
        assert a.max_x == b.min_x
        assert a == Rect(0, 0, 2, 2)

    def test_negative_cells(self):
        assert cell_bounds((-1, -1), 3.0) == Rect(-3, -3, 0, 0)


class TestRectRemainder:
    def test_center_distance_l1(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(4, 6, 6, 8)
        assert a.center_distance(b) == abs(1 - 5) + abs(1 - 7)

    def test_margin_of_point(self):
        assert Rect.point(3, 3).margin == 0.0


class TestOperatorDefaults:
    def test_open_and_end_batch_defaults(self):
        from repro.streaming.dataflow import FnOperator

        operator = FnOperator(lambda x: [x])
        operator.open(0, 1)  # no-op default
        assert list(operator.end_batch(None)) == []
        assert list(operator.finish()) == []


class TestTimeSequenceRemainder:
    def test_is_consecutive(self):
        from repro.model.timeseq import TimeSequence

        assert TimeSequence([4, 5, 6]).is_consecutive()
        assert not TimeSequence([4, 6]).is_consecutive()
        assert TimeSequence([]).is_consecutive()

    def test_repr(self):
        from repro.model.timeseq import TimeSequence

        assert repr(TimeSequence([1, 2])) == "TimeSequence(1, 2)"
