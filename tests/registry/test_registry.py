"""Plugin-registry tests: registration, capabilities, discovery, e2e.

Covers the registry contract itself (typed specs, duplicate handling,
unknown-name errors), the declarative capability checks that replaced
``ICPEConfig``'s literal-set if-chains, entry-point discovery, and the
acceptance path: a third-party plugin registered in-test via a synthetic
``repro.plugins`` entry point is selectable end-to-end through
``ICPEConfig`` -> ``Session`` and produces the reference pattern set.
"""

from __future__ import annotations

import warnings

import pytest

from repro.registry import (
    BUILTIN_SPECS,
    PLUGIN_KINDS,
    DuplicatePluginError,
    PluginCapabilities,
    PluginCompatibilityError,
    PluginRegistry,
    PluginSpec,
    UnknownPluginError,
    check_selection,
    default_registry,
    load_entry_point_plugins,
    register_builtin_plugins,
    reset_default_registry,
)
from repro.streaming.runtime.serial import SerialBackend


def make_spec(kind="backend", name="x", **caps) -> PluginSpec:
    return PluginSpec(
        kind=kind,
        name=name,
        factory=lambda **kwargs: ("built", kind, name),
        capabilities=PluginCapabilities(**caps),
        summary="test spec",
    )


class TestRegistryBasics:
    def test_register_and_get(self):
        registry = PluginRegistry()
        spec = registry.register(make_spec())
        assert registry.get("backend", "x") is spec
        assert registry.has("backend", "x")
        assert not registry.has("backend", "y")

    def test_names_in_registration_order(self):
        registry = PluginRegistry()
        registry.register(make_spec(name="b"))
        registry.register(make_spec(name="a"))
        assert registry.names("backend") == ("b", "a")

    def test_unknown_name_lists_registered(self):
        registry = PluginRegistry()
        registry.register(make_spec(kind="clustering_kernel", name="python"))
        with pytest.raises(UnknownPluginError, match="unknown clustering kernel"):
            registry.get("clustering_kernel", "fortran")
        with pytest.raises(ValueError, match="'python'"):
            registry.get("clustering_kernel", "fortran")

    def test_duplicate_rejected_unless_replace(self):
        registry = PluginRegistry()
        registry.register(make_spec())
        with pytest.raises(DuplicatePluginError):
            registry.register(make_spec())
        replacement = make_spec()
        assert registry.register(replacement, replace=True) is replacement

    def test_specs_and_kinds(self):
        registry = PluginRegistry()
        registry.register(make_spec(kind="backend", name="a"))
        registry.register(make_spec(kind="enumerator", name="b"))
        assert registry.kinds() == ("backend", "enumerator")
        assert len(registry.specs()) == 2
        assert len(registry.specs("backend")) == 1

    def test_create_delegates_to_factory(self):
        registry = PluginRegistry()
        registry.register(make_spec(kind="enumerator", name="z"))
        assert registry.create("enumerator", "z") == ("built", "enumerator", "z")

    def test_empty_kind_or_name_rejected(self):
        with pytest.raises(Exception, match="non-empty"):
            PluginSpec(kind="", name="x", factory=lambda: None)


class TestCapabilities:
    def test_flags_roundtrip(self):
        caps = PluginCapabilities(requires_numpy=True)
        assert caps.flags()["requires_numpy"] is True
        assert caps.flags()["supports_ablation"] is True

    def test_summary_markers(self):
        assert PluginCapabilities().summary_markers() == "-"
        markers = PluginCapabilities(
            requires_numpy=True, requires_bitmap_enumeration=True
        ).summary_markers()
        assert "requires-numpy" in markers and "needs-bitmap" in markers

    def test_bitmap_pairing_enforced(self):
        kernel = make_spec(
            kind="enumeration_kernel", name="bm",
            requires_bitmap_enumeration=True,
        )
        plain = make_spec(kind="enumerator", name="plain")
        bitmap = make_spec(
            kind="enumerator", name="bits", provides_bitmap_enumeration=True
        )
        with pytest.raises(PluginCompatibilityError, match="no bitmap form"):
            check_selection(
                {"enumeration_kernel": kernel, "enumerator": plain}
            )
        check_selection({"enumeration_kernel": kernel, "enumerator": bitmap})

    def test_explicit_allow_list(self):
        kernel = PluginSpec(
            kind="enumeration_kernel",
            name="picky",
            factory=lambda **kwargs: None,
            capabilities=PluginCapabilities(
                compatible_enumerators=("vba",)
            ),
        )
        fba = make_spec(
            kind="enumerator", name="fba", provides_bitmap_enumeration=True
        )
        with pytest.raises(PluginCompatibilityError, match="supports"):
            check_selection({"enumeration_kernel": kernel, "enumerator": fba})

    def test_partial_selection_is_fine(self):
        check_selection({})
        check_selection({"enumerator": make_spec(kind="enumerator")})


class TestBuiltins:
    def test_every_axis_registered(self):
        registry = default_registry()
        for kind in PLUGIN_KINDS:
            assert registry.names(kind), kind

    def test_legacy_names_resolve(self):
        registry = default_registry()
        assert registry.names("backend") == ("serial", "parallel", "process")
        assert registry.names("clustering_kernel") == ("python", "numpy")
        assert registry.names("enumeration_kernel") == ("python", "numpy")
        assert registry.names("enumerator") == ("baseline", "fba", "vba")

    def test_builtin_specs_all_sourced_builtin(self):
        assert all(spec.source == "builtin" for spec in BUILTIN_SPECS)

    def test_serial_backend_constructs(self):
        backend = default_registry().create("backend", "serial")
        try:
            assert backend.name == "serial"
        finally:
            backend.close()

    def test_python_clustering_kernel_constructs(self):
        kernel = default_registry().create(
            "clustering_kernel",
            "python",
            epsilon=2.0,
            min_pts=2,
            cell_width=6.0,
            metric_name="l1",
            lemma1=True,
            lemma2=True,
            local_index="rtree",
            rtree_fanout=16,
        )
        assert kernel.cluster([(1, 0.0, 0.0), (2, 0.5, 0.0)]).clusters

    def test_enumerator_capabilities_match_bitmap_support(self):
        registry = default_registry()
        caps = {
            name: registry.get("enumerator", name).capabilities
            for name in registry.names("enumerator")
        }
        assert not caps["baseline"].provides_bitmap_enumeration
        assert caps["fba"].provides_bitmap_enumeration
        assert caps["vba"].provides_bitmap_enumeration

    def test_validate_selection_resolves_all_axes(self):
        selection = default_registry().validate_selection(
            backend="serial",
            clustering_kernel="python",
            enumeration_kernel="python",
            enumerator="fba",
            shed_policy="none",
            pattern_family="strict",
        )
        assert set(selection) == set(PLUGIN_KINDS)


class TestPatternFamilyAxis:
    def test_builtin_family_names(self):
        assert default_registry().names("pattern_family") == (
            "strict", "evolving", "predictive"
        )

    def test_capability_markers(self):
        registry = default_registry()
        evolving = registry.get("pattern_family", "evolving")
        predictive = registry.get("pattern_family", "predictive")
        assert "evolving-groups" in evolving.capabilities.summary_markers()
        assert "predicts-patterns" in predictive.capabilities.summary_markers()

    def test_forming_state_markers_on_enumerators(self):
        registry = default_registry()
        caps = {
            name: registry.get("enumerator", name).capabilities
            for name in registry.names("enumerator")
        }
        assert not caps["baseline"].provides_forming_state
        assert caps["fba"].provides_forming_state
        assert caps["vba"].provides_forming_state
        assert "forming-state" in caps["fba"].summary_markers()

    def test_predictive_requires_forming_state_enumerator(self):
        with pytest.raises(
            PluginCompatibilityError, match="forming-state enumerator"
        ):
            default_registry().validate_selection(
                enumerator="baseline", pattern_family="predictive"
            )

    def test_rejection_error_is_one_line(self):
        with pytest.raises(PluginCompatibilityError) as excinfo:
            default_registry().validate_selection(
                enumerator="baseline", pattern_family="predictive"
            )
        assert "\n" not in str(excinfo.value)

    def test_predictive_pairs_with_forming_state_enumerators(self):
        registry = default_registry()
        for enumerator in ("fba", "vba"):
            registry.validate_selection(
                enumerator=enumerator, pattern_family="predictive"
            )

    def test_evolving_pairs_with_any_enumerator(self):
        registry = default_registry()
        for enumerator in ("baseline", "fba", "vba"):
            registry.validate_selection(
                enumerator=enumerator, pattern_family="evolving"
            )

    def test_factories_construct_families(self):
        from repro.model.constraints import PatternConstraints
        from repro.patterns import (
            EvolvingGroupTracker,
            PredictiveFamily,
            StrictFamily,
        )

        registry = default_registry()
        constraints = PatternConstraints(m=2, k=3, l=2, g=2)
        strict = registry.create("pattern_family", "strict", constraints)
        evolving = registry.create(
            "pattern_family", "evolving", constraints, theta=0.7
        )
        predictive = registry.create(
            "pattern_family", "predictive", constraints, min_probability=0.4
        )
        assert isinstance(strict, StrictFamily)
        assert isinstance(evolving, EvolvingGroupTracker)
        assert isinstance(predictive, PredictiveFamily)

    def test_axis_joins_bench_sweeps(self):
        from repro.bench.harness import registered_strategy_names

        names = registered_strategy_names("pattern_family", reference="strict")
        assert names[0] == "strict"
        assert {"evolving", "predictive"} <= set(names)


class _EchoBackend(SerialBackend):
    """A 'third-party' backend: serial semantics under a new name."""

    name = "echo"


def _register_echo(registry: PluginRegistry) -> None:
    registry.register(
        PluginSpec(
            kind="backend",
            name="echo",
            factory=lambda max_workers=None: _EchoBackend(),
            summary="test-only serial clone",
            source="entry-point",
        )
    )


class _FakeEntryPoint:
    """Just enough of importlib.metadata.EntryPoint for discovery."""

    name = "echo-plugin"

    def load(self):
        return _register_echo


class _BrokenEntryPoint:
    name = "broken-plugin"

    def load(self):
        raise ImportError("synthetic failure")


@pytest.fixture
def echo_entry_point(monkeypatch):
    """Install a synthetic repro.plugins entry point for the test."""
    monkeypatch.setattr(
        "repro.registry.entrypoints._default_entries",
        lambda: [_FakeEntryPoint()],
    )
    reset_default_registry()
    yield
    reset_default_registry()


class TestEntryPoints:
    def test_loader_applies_callable(self):
        registry = PluginRegistry()
        assert load_entry_point_plugins(registry, [_FakeEntryPoint()]) == 1
        assert registry.has("backend", "echo")

    def test_loader_applies_bare_spec(self):
        registry = PluginRegistry()

        class SpecEntry:
            name = "spec-entry"

            def load(self):
                return make_spec(kind="backend", name="direct")

        load_entry_point_plugins(registry, [SpecEntry()])
        assert registry.has("backend", "direct")

    def test_broken_entry_point_warns_not_raises(self):
        registry = PluginRegistry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = load_entry_point_plugins(
                registry, [_BrokenEntryPoint(), _FakeEntryPoint()]
            )
        assert loaded == 1
        assert registry.has("backend", "echo")
        assert any("broken-plugin" in str(w.message) for w in caught)

    def test_default_registry_discovers(self, echo_entry_point):
        assert default_registry().has("backend", "echo")

    def test_cli_choices_include_plugin(self, echo_entry_point):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["detect", "--input", "x.csv", "--backend", "echo"]
        )
        assert args.backend == "echo"


def _tiny_records():
    import random

    from repro.model.records import StreamRecord

    rng = random.Random(5)
    records, last = [], {}
    for t in range(1, 13):
        for oid in range(6):
            x = 1.0 * t + (0.1 * oid if oid < 4 else 40.0 * oid)
            records.append(
                StreamRecord(
                    oid, x + rng.uniform(-0.05, 0.05), 0.0, t, last.get(oid)
                )
            )
            last[oid] = t
    return records


class TestThirdPartyEndToEnd:
    def test_entry_point_backend_selectable_end_to_end(
        self, echo_entry_point
    ):
        """The acceptance path: config names the plugin, the pipeline
        runs on it, and the pattern set matches the serial reference."""
        from repro import open_session
        from repro.core.config import ICPEConfig
        from repro.model.constraints import PatternConstraints

        constraints = PatternConstraints(m=3, k=4, l=2, g=2)
        signatures = {}
        for backend in ("serial", "echo"):
            config = ICPEConfig(
                epsilon=1.0,
                cell_width=4.0,
                min_pts=3,
                constraints=constraints,
                backend=backend,
            )
            with open_session(config) as session:
                session.feed_many(_tiny_records())
            assert session.pipeline.backend_name == backend
            signatures[backend] = {
                (p.objects, p.times.times) for p in session.patterns
            }
        assert signatures["serial"], "workload should produce patterns"
        assert signatures["echo"] == signatures["serial"]

    def test_runtime_registration_without_entry_point(self):
        """Programmatic registration on the default registry also works
        (and is undone by reset)."""
        try:
            _register_echo(default_registry())
            from repro.streaming.runtime import resolve_backend

            backend = resolve_backend("echo")
            try:
                assert backend.name == "echo"
            finally:
                backend.close()
        finally:
            reset_default_registry()
