"""Metrics aggregation and bounded-shuffle invariant tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.records import StreamRecord
from repro.streaming.metrics import (
    LatencyThroughputMeter,
    SnapshotTiming,
    percentile,
)
from repro.streaming.shuffle import bounded_shuffle


class TestMeter:
    def test_empty(self):
        meter = LatencyThroughputMeter()
        assert meter.average_latency_ms() == 0.0
        assert meter.throughput_tps() == 0.0

    def test_averages(self):
        meter = LatencyThroughputMeter()
        meter.record(SnapshotTiming(1, latency_seconds=0.010,
                                    bottleneck_seconds=0.005))
        meter.record(SnapshotTiming(2, latency_seconds=0.030,
                                    bottleneck_seconds=0.015))
        assert meter.average_latency_ms() == pytest.approx(20.0)
        assert meter.throughput_tps() == pytest.approx(2 / 0.02)

    def test_pattern_totals_and_summary(self):
        meter = LatencyThroughputMeter()
        meter.record(SnapshotTiming(1, 0.01, 0.01, locations=5,
                                    patterns_emitted=3))
        assert meter.total_patterns() == 3
        summary = meter.summary()
        assert summary["snapshots"] == 1.0
        assert summary["patterns"] == 3.0


class TestPercentiles:
    def test_percentile_function_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
        # Linear interpolation between closest ranks (NumPy default).
        assert percentile([10.0, 20.0], 75.0) == pytest.approx(17.5)

    def test_percentile_unsorted_input_and_single_value(self):
        assert percentile([5.0, 1.0, 3.0], 50.0) == 3.0
        assert percentile([42.0], 99.0) == 42.0

    def test_percentile_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_percentile_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)

    def test_meter_latency_percentiles(self):
        meter = LatencyThroughputMeter()
        for ms in range(1, 101):
            meter.record(SnapshotTiming(ms, latency_seconds=ms / 1000.0,
                                        bottleneck_seconds=0.0))
        assert meter.p50_latency_ms() == pytest.approx(50.5)
        assert meter.p95_latency_ms() == pytest.approx(95.05)
        assert meter.p99_latency_ms() == pytest.approx(99.01)
        assert meter.percentile_latency_ms(0.0) == pytest.approx(1.0)

    def test_meter_percentiles_empty(self):
        meter = LatencyThroughputMeter()
        assert meter.p50_latency_ms() == 0.0
        assert meter.p99_latency_ms() == 0.0

    def test_summary_includes_percentiles(self):
        meter = LatencyThroughputMeter()
        meter.record(SnapshotTiming(1, latency_seconds=0.010,
                                    bottleneck_seconds=0.005))
        summary = meter.summary()
        for key in ("p50_latency_ms", "p95_latency_ms", "p99_latency_ms"):
            assert summary[key] == pytest.approx(10.0)


class TestBoundedShuffle:
    def _records(self, n):
        return [StreamRecord(oid=0, x=0, y=0, time=t) for t in range(1, n + 1)]

    def test_permutation_preserved(self):
        records = self._records(50)
        out = list(bounded_shuffle(records, 3, random.Random(1)))
        assert sorted(r.time for r in out) == [r.time for r in records]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1000), st.integers(0, 5), st.integers(1, 60))
    def test_delay_bound_invariant(self, seed, max_delay, n):
        """A record at time tau is never delivered after one at
        > tau + max_delay."""
        records = self._records(n)
        out = list(bounded_shuffle(records, max_delay, random.Random(seed)))
        seen_max = 0
        pending = {r.time for r in records}
        for record in out:
            assert record.time + max_delay >= max(
                (t for t in pending if t <= record.time), default=record.time
            )
            # Stronger check: everything more than max_delay older must
            # already be delivered.
            for t in list(pending):
                if t < record.time - max_delay:
                    raise AssertionError(
                        f"record t={record.time} delivered while t={t} pending"
                    )
            pending.discard(record.time)
            seen_max = max(seen_max, record.time)

    def test_zero_delay_keeps_time_order(self):
        records = self._records(30)
        out = list(bounded_shuffle(records, 0, random.Random(2)))
        times = [r.time for r in out]
        assert times == sorted(times)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(bounded_shuffle([], -1, random.Random(0)))
        with pytest.raises(ValueError):
            list(bounded_shuffle([], 1, random.Random(0), hold_probability=1.0))
